"""Google+ moments: an eventually consistent shared-account API.

Paper usage (§V): "we used the API to post a new moment and to read the
most recent moments.  In this case, all agents shared the same account,
since there is no notion of a follower for moments."  Findings: all six
anomaly types occur; content divergence up to 85% of tests with
multi-second convergence; order divergence around 14% for pairs
involving Ireland and under 1% between Oregon and Tokyo; session
violations at moderate rates.  The paper infers that the Oregon and
Tokyo agents reach the *same datacenter* while Ireland reaches another.

Model: a two-datacenter :class:`~repro.replication.eventual.EventualGroup`
("us" serving Oregon and Tokyo, "eu" serving Ireland) with batched
anti-entropy, late-write repair, and load-balanced stale read backends.
Each datacenter fronts its own API endpoint; an agent talks to the
endpoint of its region's home datacenter.  API surface:
``POST /plusDomains/moments`` and ``GET /plusDomains/moments``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.net.network import Network
from repro.net.topology import IRELAND, OREGON, Topology
from repro.replication.eventual import EventualGroup, EventualParams
from repro.services.base import OnlineService, SessionRoutes
from repro.sim.event_loop import Simulator
from repro.sim.random_source import RandomSource
from repro.webapi.auth import Account
from repro.webapi.endpoint import ServiceEndpoint
from repro.webapi.http import ApiRequest
from repro.webapi.pagination import DEFAULT_PAGE_SIZE, paginate
from repro.webapi.ratelimit import RateLimit, SlidingWindowRateLimiter
from repro.webapi.router import Router

__all__ = ["GooglePlusParams", "GooglePlusService"]

MOMENTS_PATH = "/plusDomains/moments"

#: Region-name -> home datacenter host.  The paper's inference: Oregon
#: and Tokyo share a DC, Ireland uses another.
DEFAULT_HOMES = {
    "oregon": "gplus-dc-us",
    "tokyo": "gplus-dc-us",
    "virginia": "gplus-dc-us",
    "ireland": "gplus-dc-eu",
}


@dataclass(frozen=True)
class GooglePlusParams:
    """Service-level tunables for Google+.

    The two datacenters get different replication parameters because
    the paper's order-divergence numbers are asymmetric: pairs
    involving Ireland diverge in ~14% of tests, Oregon-Tokyo in under
    1% — implying the tail-insert path essentially only occurs on the
    Ireland-facing datacenter.
    """

    replication_us: EventualParams = field(
        default_factory=lambda: EventualParams(tail_insert_prob=0.004)
    )
    replication_eu: EventualParams = field(
        default_factory=lambda: EventualParams(tail_insert_prob=0.12)
    )
    write_processing_median: float = 0.10
    read_processing_median: float = 0.05
    #: The shared account sees traffic from all agents at once, so the
    #: limit must accommodate three 300 ms read loops plus writes.
    rate_limit: RateLimit = RateLimit(max_requests=30, window=1.0)


class GooglePlusService(OnlineService):
    """The Google+ moments model: shared account, two datacenters."""

    name = "googleplus"

    def __init__(self, sim: Simulator, topology: Topology,
                 network: Network, rng: RandomSource,
                 params: GooglePlusParams | None = None,
                 homes: dict[str, str] | None = None) -> None:
        super().__init__(sim, topology, network, rng)
        self._params = params or GooglePlusParams()
        self._homes = dict(homes or DEFAULT_HOMES)
        self._place("gplus-dc-us", OREGON)
        self._place("gplus-dc-eu", IRELAND)
        self._group = EventualGroup(
            sim, network, rng.child("gplus"),
            self._params.replication_us,
            ["gplus-dc-us", "gplus-dc-eu"],
            per_dc_params={
                "gplus-dc-us": self._params.replication_us,
                "gplus-dc-eu": self._params.replication_eu,
            },
        )
        # One shared account: "all agents shared the same account".
        self._shared_account = self._accounts.create_account(
            "shared-moments-user"
        )
        rate_limiter = SlidingWindowRateLimiter(
            self._params.rate_limit, now_fn=lambda: sim.now
        )
        self._endpoints: dict[str, ServiceEndpoint] = {}
        for dc_host, api_host in (
            ("gplus-dc-us", "gplus-api-us"),
            ("gplus-dc-eu", "gplus-api-eu"),
        ):
            self._place(api_host, self._topology.region_of(dc_host))
            router = Router()
            router.add(
                "POST", MOMENTS_PATH,
                self._make_post_handler(dc_host),
                processing_delay_median=(
                    self._params.write_processing_median
                ),
            )
            router.add(
                "GET", MOMENTS_PATH,
                self._make_list_handler(dc_host),
                processing_delay_median=(
                    self._params.read_processing_median
                ),
            )
            endpoint = ServiceEndpoint(
                sim, network, api_host,
                accounts=self._accounts,
                rate_limiter=rate_limiter,
                rng=rng.child(f"endpoint.{api_host}"),
                router=router,
            )
            self._endpoints[dc_host] = endpoint

    # -- Route handlers --------------------------------------------------

    def _make_post_handler(self, dc_host: str):
        def handler(request: ApiRequest, account: Account):
            message_id = request.require_param("message_id")
            replica = self._group.replica(dc_host)
            # All agents share one account, but fanout/replication
            # pipelines are per producing client, so the writer
            # identity includes the client id.
            writer = (f"{account.user_id}"
                      f"#{request.param('client_id', 'unknown')}")
            origin_ts = replica.accept_write(message_id, writer)
            return {"id": message_id, "published": origin_ts}
        return handler

    def _make_list_handler(self, dc_host: str):
        def handler(request: ApiRequest, account: Account):
            # Moments are listed most recent first, paginated.
            newest_first = list(reversed(
                self._group.replica(dc_host).read()))
            page = paginate(newest_first,
                            cursor=request.param("cursor"),
                            limit=request.param("limit",
                                                DEFAULT_PAGE_SIZE))
            return {"messages": list(page.items),
                    "next_cursor": page.next_cursor}
        return handler

    # -- Sessions -----------------------------------------------------------

    def home_datacenter(self, agent_host: str) -> str:
        """The datacenter host serving an agent, by the agent's region."""
        region = self._region_name_of(agent_host)
        return self._require(self._homes, region, "home datacenter")

    def session_account(self, agent: str) -> Account:
        # "All agents shared the same account" — there is no notion of
        # a follower for moments.
        return self._shared_account

    def session_routes(self, agent_host: str) -> SessionRoutes:
        dc_host = self.home_datacenter(agent_host)
        api_host = {"gplus-dc-us": "gplus-api-us",
                    "gplus-dc-eu": "gplus-api-eu"}[dc_host]
        return SessionRoutes(api_host=api_host,
                             post_path=MOMENTS_PATH,
                             fetch_path=MOMENTS_PATH)
