"""Service registry: build any of the four measured services by name.

:func:`build_service` is the single construction point used by the
campaign runner, the CLI, and the examples.  Service-specific parameter
objects can be passed through to override defaults (for ablations and
what-if experiments).
"""

from __future__ import annotations

from typing import Any

from repro.errors import ConfigurationError
from repro.net.network import Network
from repro.net.topology import Topology
from repro.services.base import OnlineService
from repro.services.blogger import BloggerService
from repro.services.facebook_feed import FacebookFeedService
from repro.services.facebook_group import FacebookGroupService
from repro.services.googleplus import GooglePlusService
from repro.services.quorum_kv import QuorumKvService
from repro.sim.event_loop import Simulator
from repro.sim.random_source import RandomSource

__all__ = ["SERVICE_NAMES", "EXTENSION_SERVICE_NAMES",
           "SERVICE_CLASSES", "build_service"]

SERVICE_CLASSES: dict[str, type[OnlineService]] = {
    BloggerService.name: BloggerService,
    GooglePlusService.name: GooglePlusService,
    FacebookFeedService.name: FacebookFeedService,
    FacebookGroupService.name: FacebookGroupService,
    QuorumKvService.name: QuorumKvService,
}

#: The paper's four services, in its presentation order.
SERVICE_NAMES = ("googleplus", "blogger", "facebook_feed",
                 "facebook_group")

#: Additional measurable services (the storage-system extension).
EXTENSION_SERVICE_NAMES = ("quorum_kv",)


def build_service(name: str, sim: Simulator, topology: Topology,
                  network: Network, rng: RandomSource,
                  params: Any | None = None,
                  scenario: Any | None = None) -> OnlineService:
    """Instantiate the named service into an existing world.

    ``scenario`` (a :class:`repro.scenario.schema.ScenarioSpec`)
    builds the declared service model instead; a name that is neither
    a built-in service nor accompanied by a spec is resolved through
    the scenario registry, so loaded scenarios plug in everywhere a
    service name is accepted.
    """
    if scenario is None and name not in SERVICE_CLASSES:
        from repro.scenario.registry import get_scenario

        try:
            scenario = get_scenario(name)
        except ConfigurationError:
            known = SERVICE_NAMES + EXTENSION_SERVICE_NAMES
            raise ConfigurationError(
                f"unknown service {name!r}; choose from {known} or "
                "a registered scenario name"
            ) from None
    if scenario is not None:
        from repro.scenario.registry import build_scenario_service

        return build_scenario_service(scenario, sim, topology,
                                      network, rng, params=params)
    service_class = SERVICE_CLASSES[name]
    if params is None:
        return service_class(sim, topology, network, rng)
    return service_class(sim, topology, network, rng, params=params)
