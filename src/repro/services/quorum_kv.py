"""A quorum-replicated storage service (the paper's future-work target).

The paper's conclusion proposes applying the methodology "to
large-scale storage systems"; this service makes that concrete: a
Dynamo-style key-value/event store with one replica per agent region
and configurable read/write quorum sizes, exposed through the same
black-box web API the other services use — so the unchanged §IV
methodology measures it.

The interesting knob is ``QuorumParams(read_quorum, write_quorum)``:

* ``R = W = 1`` — fastest, maximally weak: clients frequently read
  replicas that have not yet applied recent writes, producing
  read-your-writes, monotonic-reads, and content-divergence anomalies.
* ``R + W > N`` (e.g. ``R = W = 2`` with N = 3) — overlapping quorums:
  every read intersects every acknowledged write, eliminating the
  session anomalies at the cost of higher operation latency.

See ``benchmarks/test_quorum_knob.py`` for the resulting ablation
table.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.net.network import Network
from repro.net.topology import IRELAND, OREGON, TOKYO, Region, Topology
from repro.replication.quorum import QuorumParams, QuorumStore
from repro.services.base import OnlineService, SessionRoutes
from repro.sim.event_loop import Simulator
from repro.sim.future import Future
from repro.sim.random_source import RandomSource
from repro.webapi.auth import Account
from repro.webapi.endpoint import ServiceEndpoint
from repro.webapi.http import ApiRequest
from repro.webapi.pagination import DEFAULT_PAGE_SIZE, paginate
from repro.webapi.ratelimit import RateLimit, SlidingWindowRateLimiter
from repro.webapi.router import Router

__all__ = ["QuorumKvParams", "QuorumKvService"]

EVENTS_PATH = "/kv/events"

#: One replica in each agent region (the Dynamo-style placement).
REPLICA_REGIONS: tuple[Region, ...] = (OREGON, TOKYO, IRELAND)


@dataclass(frozen=True)
class QuorumKvParams:
    """Service-level tunables for the quorum store."""

    quorum: QuorumParams = field(default_factory=QuorumParams)
    write_processing_median: float = 0.03
    read_processing_median: float = 0.02
    rate_limit: RateLimit = RateLimit(max_requests=30, window=1.0)


class QuorumKvService(OnlineService):
    """The quorum KV model: per-region replicas and front-ends."""

    name = "quorum_kv"

    def __init__(self, sim: Simulator, topology: Topology,
                 network: Network, rng: RandomSource,
                 params: QuorumKvParams | None = None) -> None:
        super().__init__(sim, topology, network, rng)
        self._params = params or QuorumKvParams()
        replica_hosts = []
        for index, region in enumerate(REPLICA_REGIONS):
            host = f"kv-replica-{index}"
            self._place(host, region)
            replica_hosts.append(host)
        frontend_hosts = []
        self._frontend_by_region: dict[str, str] = {}
        for region in REPLICA_REGIONS:
            host = f"kv-frontend-{region.name}"
            self._place(host, region)
            frontend_hosts.append(host)
            self._frontend_by_region[region.name] = host
        self._store = QuorumStore(
            sim, network, self._params.quorum,
            replica_hosts=replica_hosts,
            frontend_hosts=frontend_hosts,
            rng=rng.child("quorum"),
        )
        rate_limiter = SlidingWindowRateLimiter(
            self._params.rate_limit, now_fn=lambda: sim.now
        )
        self._api_by_region: dict[str, str] = {}
        for region in REPLICA_REGIONS:
            api_host = f"kv-api-{region.name}"
            self._place(api_host, region)
            frontend = self._frontend_by_region[region.name]
            router = Router()
            router.add(
                "POST", EVENTS_PATH,
                self._make_post_handler(frontend),
                processing_delay_median=(
                    self._params.write_processing_median
                ),
            )
            router.add(
                "GET", EVENTS_PATH,
                self._make_list_handler(frontend),
                processing_delay_median=(
                    self._params.read_processing_median
                ),
            )
            ServiceEndpoint(
                sim, network, api_host,
                accounts=self._accounts,
                rate_limiter=rate_limiter,
                rng=rng.child(f"endpoint.{api_host}"),
                router=router,
            )
            self._api_by_region[region.name] = api_host

    # -- Route handlers --------------------------------------------------

    def _make_post_handler(self, frontend: str):
        def handler(request: ApiRequest, account: Account):
            message_id = request.require_param("message_id")
            ack = self._store.write(frontend, message_id,
                                    account.user_id)
            shaped: Future = Future(name=f"kv.post.{message_id}")
            ack.add_callback(
                lambda f: shaped.fail(f.exception) if f.failed
                else shaped.resolve(
                    {"id": message_id, "published": f.value}
                )
            )
            return shaped
        return handler

    def _make_list_handler(self, frontend: str):
        def handler(request: ApiRequest, account: Account):
            merged = self._store.read(frontend)
            shaped: Future = Future(name="kv.list")

            def on_done(future: Future) -> None:
                if future.failed:
                    shaped.fail(future.exception)
                    return
                newest_first = list(reversed(future.value))
                page = paginate(
                    newest_first,
                    cursor=request.param("cursor"),
                    limit=request.param("limit", DEFAULT_PAGE_SIZE),
                )
                shaped.resolve({"messages": list(page.items),
                                "next_cursor": page.next_cursor})

            merged.add_callback(on_done)
            return shaped
        return handler

    # -- Sessions -----------------------------------------------------------

    def session_routes(self, agent_host: str) -> SessionRoutes:
        region = self._region_name_of(agent_host)
        api_host = self._require(self._api_by_region, region,
                                 "quorum API host")
        return SessionRoutes(api_host=api_host,
                             post_path=EVENTS_PATH,
                             fetch_path=EVENTS_PATH)
