"""Discrete-event simulation kernel.

This subpackage provides the substrate everything else runs on: a
deterministic event loop with virtual time (:class:`Simulator`),
single-assignment result cells (:class:`Future` and combinators),
generator-based processes (:class:`Process`, :func:`spawn`), drifting
host clocks (:class:`DriftingClock`), and named deterministic random
streams (:class:`RandomSource`).

The kernel is intentionally free of any knowledge about networks or
services; those layers live in :mod:`repro.net` and
:mod:`repro.services`.
"""

from repro.sim.clock import DriftingClock, PerfectClock, make_host_clock
from repro.sim.event_loop import EventHandle, Simulator
from repro.sim.future import AllOf, AnyOf, Future, Quorum, gather
from repro.sim.process import Process, spawn
from repro.sim.random_source import RandomSource

__all__ = [
    "Simulator",
    "EventHandle",
    "Future",
    "AllOf",
    "AnyOf",
    "Quorum",
    "gather",
    "Process",
    "spawn",
    "DriftingClock",
    "PerfectClock",
    "make_host_clock",
    "RandomSource",
]
