"""Simulated host clocks with offset and drift.

The paper disables NTP on its measurement machines and estimates clock
deltas with a Cristian-style protocol (§IV, "Time synchronization").  To
reproduce that setting, every simulated host owns a local clock whose
reading differs from the simulator's ground-truth time by a fixed
*offset* plus a slowly accumulating *drift*:

    local(t) = t * (1 + drift_ppm * 1e-6) + offset

Commodity machines drift on the order of tens of ppm (a 50 ppm clock
gains 4.3 seconds per day), which is exactly why the paper recomputes
deltas before each test iteration.  Because the simulator knows the
ground truth, we can also *validate* the sync protocol: the error of an
estimated delta is directly measurable (see
``benchmarks/test_clocksync_accuracy.py``).
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.sim.event_loop import Simulator
from repro.sim.random_source import RandomSource

__all__ = ["DriftingClock", "PerfectClock", "make_host_clock"]


class DriftingClock:
    """A host clock: ground truth skewed by offset and linear drift.

    Parameters
    ----------
    sim:
        Simulator providing ground-truth time.
    offset:
        Constant offset in seconds (positive = this clock runs ahead).
    drift_ppm:
        Frequency error in parts per million; positive clocks run fast.
    """

    def __init__(self, sim: Simulator, offset: float = 0.0,
                 drift_ppm: float = 0.0) -> None:
        if abs(drift_ppm) >= 1e6:
            raise ConfigurationError(
                f"drift of {drift_ppm} ppm is not a clock, it is a ramp"
            )
        self._sim = sim
        self.offset = float(offset)
        self.drift_ppm = float(drift_ppm)

    @property
    def _rate(self) -> float:
        return 1.0 + self.drift_ppm * 1e-6

    def now(self) -> float:
        """The local clock reading at the current instant."""
        return self._sim.now * self._rate + self.offset

    def to_local(self, true_time: float) -> float:
        """Convert a ground-truth time to this clock's reading."""
        return true_time * self._rate + self.offset

    def to_true(self, local_time: float) -> float:
        """Convert a local reading back to ground-truth time."""
        return (local_time - self.offset) / self._rate

    def error_at(self, true_time: float) -> float:
        """Signed difference local - true at ``true_time``."""
        return self.to_local(true_time) - true_time

    def step(self, seconds: float) -> None:
        """Apply a step adjustment (what NTP would do; we avoid it)."""
        self.offset += seconds

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"DriftingClock(offset={self.offset:+.6f}s, "
                f"drift={self.drift_ppm:+.1f}ppm)")


class PerfectClock(DriftingClock):
    """A clock with zero offset and drift; reads ground truth directly."""

    def __init__(self, sim: Simulator) -> None:
        super().__init__(sim, offset=0.0, drift_ppm=0.0)


def make_host_clock(sim: Simulator, rng: RandomSource, host_name: str,
                    max_offset: float = 5.0,
                    max_drift_ppm: float = 50.0) -> DriftingClock:
    """Create a realistically mis-set clock for ``host_name``.

    Offsets are uniform in ±``max_offset`` seconds (machines whose NTP
    was just disabled are typically within a few seconds of true time);
    drift is uniform in ±``max_drift_ppm``, the commodity-oscillator
    range.  Both draws use per-host named streams, so adding a host does
    not change other hosts' clocks.
    """
    offset = rng.uniform(f"clock.offset.{host_name}", -max_offset, max_offset)
    drift = rng.uniform(f"clock.drift.{host_name}",
                        -max_drift_ppm, max_drift_ppm)
    return DriftingClock(sim, offset=offset, drift_ppm=drift)
