"""The discrete-event simulation kernel.

:class:`Simulator` owns a virtual clock and a priority queue of pending
events.  Everything else in the library — network message delivery,
replication lag, agent read loops, rate-limit windows — is expressed as
callbacks scheduled on this queue.  Time only advances when the kernel
pops an event, so a simulated 30-day measurement campaign executes in
however long the callbacks themselves take.

Events scheduled for the same virtual time fire in FIFO order of
scheduling (a monotonically increasing sequence number breaks ties),
which keeps runs deterministic for a fixed seed.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable

from repro.errors import DeadlockError, SimulationError

__all__ = ["Simulator", "EventHandle"]


class EventHandle:
    """A cancellation handle for a scheduled event.

    Cancelling is O(1): the entry stays in the heap but is skipped when
    popped.  Handles also report whether the event already fired.
    """

    __slots__ = ("time", "_cancelled", "_fired")

    def __init__(self, time: float) -> None:
        self.time = time
        self._cancelled = False
        self._fired = False

    def cancel(self) -> None:
        """Prevent the event from firing (no-op if it already fired)."""
        self._cancelled = True

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    @property
    def fired(self) -> bool:
        return self._fired

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = ("fired" if self._fired
                 else "cancelled" if self._cancelled else "pending")
        return f"<EventHandle t={self.time:.6f} {state}>"


class Simulator:
    """A deterministic discrete-event simulator with a virtual clock.

    Example
    -------
    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule_after(1.5, fired.append, "hello")
    >>> sim.run()
    >>> sim.now, fired
    (1.5, ['hello'])
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        self._heap: list[tuple[float, int, EventHandle,
                               Callable[..., None], tuple]] = []
        self._sequence = itertools.count()
        self._events_processed = 0
        self._running = False

    # -- Clock -----------------------------------------------------------

    @property
    def now(self) -> float:
        """Current virtual time in seconds (the simulation ground truth)."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Total number of events executed so far."""
        return self._events_processed

    @property
    def pending_events(self) -> int:
        """Number of queued events, including cancelled ones not yet popped."""
        return len(self._heap)

    # -- Scheduling --------------------------------------------------------

    def schedule_at(self, time: float, callback: Callable[..., None],
                    *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` at absolute virtual ``time``.

        Scheduling in the past is an error: discrete-event simulations
        that silently clamp past events hide causality bugs.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event at t={time:.6f}, "
                f"before current time t={self._now:.6f}"
            )
        handle = EventHandle(time)
        heapq.heappush(
            self._heap, (time, next(self._sequence), handle, callback, args)
        )
        return handle

    def schedule_after(self, delay: float, callback: Callable[..., None],
                       *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` after ``delay`` seconds."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        return self.schedule_at(self._now + delay, callback, *args)

    # -- Execution --------------------------------------------------------

    def step(self) -> bool:
        """Execute the next pending event; return False if none remain."""
        while self._heap:
            time, _seq, handle, callback, args = heapq.heappop(self._heap)
            if handle.cancelled:
                continue
            self._now = time
            handle._fired = True
            self._events_processed += 1
            callback(*args)
            return True
        return False

    def run(self, max_events: int | None = None) -> None:
        """Run until the event queue is empty (or ``max_events`` fire)."""
        self._guard_reentrancy()
        self._running = True
        try:
            remaining = max_events
            while self.step():
                if remaining is not None:
                    remaining -= 1
                    if remaining <= 0:
                        return
        finally:
            self._running = False

    def run_until(self, time: float, strict: bool = False) -> None:
        """Advance virtual time to ``time``, executing due events.

        With ``strict=True``, raises :class:`DeadlockError` if the queue
        drains before ``time`` — useful when the caller knows activity
        should persist (e.g. a read loop that must still be running).
        """
        self._guard_reentrancy()
        if time < self._now:
            raise SimulationError(
                f"cannot run backwards to t={time:.6f} "
                f"from t={self._now:.6f}"
            )
        self._running = True
        try:
            while True:
                next_time = self._peek_next_time()
                if next_time is None:
                    if strict:
                        raise DeadlockError(
                            f"event queue drained at t={self._now:.6f} "
                            f"before reaching t={time:.6f}"
                        )
                    break
                if next_time > time:
                    break
                self.step()
            self._now = max(self._now, time)
        finally:
            self._running = False

    def next_event_time(self) -> float | None:
        """Time of the earliest live pending event, or ``None`` if idle.

        The public peek used by epoch-barrier drivers (the sharded
        world engine) to skip empty epochs: the next barrier is placed
        just past the earliest event across every shard's simulator
        instead of grinding through quiet quanta one by one.
        """
        return self._peek_next_time()

    def _peek_next_time(self) -> float | None:
        """Time of the next live event, discarding cancelled heads."""
        while self._heap:
            time, _seq, handle, _callback, _args = self._heap[0]
            if handle.cancelled:
                heapq.heappop(self._heap)
                continue
            return time
        return None

    def _guard_reentrancy(self) -> None:
        if self._running:
            raise SimulationError(
                "re-entrant simulator execution: run()/run_until() called "
                "from inside an event callback"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Simulator t={self._now:.6f} pending={self.pending_events} "
                f"processed={self._events_processed}>")
