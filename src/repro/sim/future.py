"""Futures: single-assignment result cells for the simulation kernel.

A :class:`Future` is how simulated components hand results across time.
A process that issues a web-API request immediately receives a future;
the network resolves it when the (simulated) response arrives, at which
point every process waiting on it is rescheduled.

Futures here are deliberately much simpler than :mod:`asyncio`'s — there
is no cancellation token, no executor, and callbacks run synchronously
at resolution time (which is always inside the simulator's event loop,
so "synchronously" still means "at one well-defined virtual instant").
"""

from __future__ import annotations

from typing import Any, Callable, Iterable

from repro.errors import FutureError

__all__ = ["Future", "AllOf", "AnyOf", "Quorum", "gather"]


_PENDING = "pending"
_RESOLVED = "resolved"
_FAILED = "failed"


class Future:
    """A single-assignment container resolved at some virtual time.

    Parameters
    ----------
    name:
        Optional label shown in ``repr`` and deadlock diagnostics.
    """

    __slots__ = ("_state", "_value", "_exception", "_callbacks", "name")

    def __init__(self, name: str = "") -> None:
        self._state = _PENDING
        self._value: Any = None
        self._exception: BaseException | None = None
        self._callbacks: list[Callable[["Future"], None]] = []
        self.name = name

    # -- State inspection ----------------------------------------------

    @property
    def done(self) -> bool:
        """True once the future is resolved or failed."""
        return self._state != _PENDING

    @property
    def failed(self) -> bool:
        """True if the future completed with an exception."""
        return self._state == _FAILED

    @property
    def value(self) -> Any:
        """The result; raises if the future failed or is still pending."""
        if self._state == _PENDING:
            raise FutureError(f"future {self.name!r} is still pending")
        if self._state == _FAILED:
            assert self._exception is not None
            raise self._exception
        return self._value

    @property
    def exception(self) -> BaseException | None:
        """The failure exception, or None."""
        return self._exception

    # -- Completion ------------------------------------------------------

    def resolve(self, value: Any = None) -> None:
        """Complete the future successfully with ``value``."""
        if self._state != _PENDING:
            raise FutureError(f"future {self.name!r} resolved twice")
        self._state = _RESOLVED
        self._value = value
        self._fire_callbacks()

    def fail(self, exception: BaseException) -> None:
        """Complete the future with an exception."""
        if self._state != _PENDING:
            raise FutureError(f"future {self.name!r} resolved twice")
        self._state = _FAILED
        self._exception = exception
        self._fire_callbacks()

    def add_callback(self, callback: Callable[["Future"], None]) -> None:
        """Run ``callback(self)`` when done (immediately if already done)."""
        if self.done:
            callback(self)
        else:
            self._callbacks.append(callback)

    def _fire_callbacks(self) -> None:
        callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            callback(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        label = f" {self.name!r}" if self.name else ""
        return f"<Future{label} {self._state}>"


class AllOf(Future):
    """A future that resolves when *all* component futures are done.

    Resolves with the list of component values in input order.  If any
    component fails, this future fails with the first failure.
    """

    __slots__ = ("_pending_count", "_components")

    def __init__(self, futures: Iterable[Future],
                 name: str = "all-of") -> None:
        super().__init__(name=name)
        self._components = list(futures)
        self._pending_count = len(self._components)
        if self._pending_count == 0:
            self.resolve([])
            return
        for future in self._components:
            future.add_callback(self._on_component_done)

    def _on_component_done(self, future: Future) -> None:
        if self.done:
            return
        if future.failed:
            assert future.exception is not None
            self.fail(future.exception)
            return
        self._pending_count -= 1
        if self._pending_count == 0:
            self.resolve([f.value for f in self._components])


class AnyOf(Future):
    """A future that resolves when *any* component future resolves.

    Resolves with ``(index, value)`` of the first component done.  Fails
    only if every component fails (with the last failure).
    """

    __slots__ = ("_failure_count", "_components")

    def __init__(self, futures: Iterable[Future],
                 name: str = "any-of") -> None:
        super().__init__(name=name)
        self._components = list(futures)
        self._failure_count = 0
        if not self._components:
            raise FutureError("AnyOf requires at least one future")
        for index, future in enumerate(self._components):
            future.add_callback(
                lambda done, index=index: self._on_component_done(index, done)
            )

    def _on_component_done(self, index: int, future: Future) -> None:
        if self.done:
            return
        if future.failed:
            self._failure_count += 1
            if self._failure_count == len(self._components):
                assert future.exception is not None
                self.fail(future.exception)
            return
        self.resolve((index, future.value))


class Quorum(Future):
    """A future that resolves when *k* of the components resolve.

    Resolves with the list of the first ``k`` successful values, in
    completion order.  Fails only when so many components have failed
    that ``k`` successes are no longer possible.  The building block
    of quorum-replicated operations: ``Quorum(acks, k=w)`` is a write
    that returns after W replica acknowledgements.
    """

    __slots__ = ("_needed", "_values", "_failures", "_total")

    def __init__(self, futures: Iterable[Future], k: int,
                 name: str = "quorum") -> None:
        super().__init__(name=name)
        components = list(futures)
        if k < 1:
            raise FutureError("quorum size k must be >= 1")
        if k > len(components):
            raise FutureError(
                f"quorum of {k} impossible with "
                f"{len(components)} components"
            )
        self._needed = k
        self._total = len(components)
        self._values: list[Any] = []
        self._failures = 0
        for future in components:
            future.add_callback(self._on_component_done)

    def _on_component_done(self, future: Future) -> None:
        if self.done:
            return
        if future.failed:
            self._failures += 1
            if self._total - self._failures < self._needed:
                assert future.exception is not None
                self.fail(future.exception)
            return
        self._values.append(future.value)
        if len(self._values) == self._needed:
            self.resolve(list(self._values))


def gather(*futures: Future) -> AllOf:
    """Convenience wrapper: ``gather(f1, f2)`` == ``AllOf([f1, f2])``."""
    return AllOf(futures)
