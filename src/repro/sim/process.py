"""Generator-based processes on top of the discrete-event kernel.

A *process* is a Python generator that expresses a simulated activity
(an agent's read loop, a replica's anti-entropy cycle, the coordinator's
test schedule) as straight-line code with ``yield`` points:

* ``yield seconds`` (a non-negative number) — sleep for that long.
* ``yield future`` — suspend until the :class:`~repro.sim.future.Future`
  resolves; the ``yield`` expression evaluates to the future's value,
  or re-raises the future's exception inside the generator so processes
  can use ordinary ``try/except``.
* ``yield other_process`` — suspend until the other process finishes;
  evaluates to its return value.

A process's own return value (via ``return`` in the generator) resolves
its :attr:`Process.completion` future, so processes compose.

Example
-------
>>> from repro.sim import Simulator
>>> sim = Simulator()
>>> def worker():
...     yield 2.0
...     return "done"
>>> proc = Process(sim, worker(), name="worker")
>>> sim.run()
>>> proc.completion.value
'done'
"""

from __future__ import annotations

from typing import Any, Callable, Generator

from repro.errors import ProcessError, SimulationError
from repro.sim.event_loop import Simulator
from repro.sim.future import Future

__all__ = ["Process", "spawn", "sleep_forever"]

#: Type alias for the generator signature processes must follow.
ProcessGenerator = Generator[Any, Any, Any]


class Process:
    """Drives a generator coroutine over a :class:`Simulator`.

    Parameters
    ----------
    sim:
        The simulator supplying virtual time.
    generator:
        The activity to run; see module docstring for yield protocol.
    name:
        Label used in error messages and diagnostics.
    start_delay:
        Virtual seconds to wait before the first step of the generator.
    """

    def __init__(self, sim: Simulator, generator: ProcessGenerator,
                 name: str = "process", start_delay: float = 0.0) -> None:
        if not hasattr(generator, "send"):
            raise ProcessError(
                f"process {name!r} needs a generator, got "
                f"{type(generator).__name__} (did you forget to call "
                f"the generator function?)"
            )
        self._sim = sim
        self._generator = generator
        self.name = name
        #: Resolves with the generator's return value (or fails with the
        #: exception that escaped it).
        self.completion: Future = Future(name=f"{name}.completion")
        self._interrupted = False
        sim.schedule_after(start_delay, self._advance, None, None)

    # -- Public state ----------------------------------------------------

    @property
    def alive(self) -> bool:
        """True while the generator has not finished or failed."""
        return not self.completion.done

    def interrupt(self) -> None:
        """Stop the process at its next resumption point.

        The generator is closed (``GeneratorExit`` is raised at the
        current yield), and :attr:`completion` resolves to ``None``.
        Interrupting a finished process is a no-op.
        """
        if not self.alive:
            return
        self._interrupted = True
        self._generator.close()
        self.completion.resolve(None)

    # -- Driving the generator ---------------------------------------------

    def _advance(self, value: Any, exception: BaseException | None) -> None:
        """Resume the generator with ``value`` or throw ``exception``."""
        if self._interrupted or self.completion.done:
            return
        try:
            if exception is not None:
                yielded = self._generator.throw(exception)
            else:
                yielded = self._generator.send(value)
        except StopIteration as stop:
            self.completion.resolve(stop.value)
            return
        except BaseException as exc:  # noqa: BLE001 - reported via future
            failure = ProcessError(f"process {self.name!r} failed: {exc!r}")
            failure.__cause__ = exc
            self.completion.fail(failure)
            return
        self._dispatch(yielded)

    def _dispatch(self, yielded: Any) -> None:
        """Arrange for the generator to be resumed per the yield protocol."""
        if isinstance(yielded, (int, float)):
            if yielded < 0:
                self._advance(
                    None,
                    SimulationError(
                        f"process {self.name!r} yielded negative "
                        f"delay {yielded!r}"
                    ),
                )
                return
            self._sim.schedule_after(float(yielded), self._advance, None, None)
            return
        if isinstance(yielded, Process):
            yielded = yielded.completion
        if isinstance(yielded, Future):
            yielded.add_callback(self._on_future_done)
            return
        self._advance(
            None,
            SimulationError(
                f"process {self.name!r} yielded unsupported value "
                f"{yielded!r}; expected a delay, Future, or Process"
            ),
        )

    def _on_future_done(self, future: Future) -> None:
        if future.failed:
            self._sim.schedule_after(0.0, self._advance, None,
                                     future.exception)
        else:
            self._sim.schedule_after(0.0, self._advance, future.value, None)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "alive" if self.alive else "finished"
        return f"<Process {self.name!r} {state}>"


def spawn(sim: Simulator, generator_fn: Callable[..., ProcessGenerator],
          *args: Any, name: str | None = None,
          start_delay: float = 0.0, **kwargs: Any) -> Process:
    """Create and start a process from a generator function.

    ``spawn(sim, agent_loop, api, name="agent-1")`` reads better at call
    sites than constructing the generator by hand.
    """
    generator = generator_fn(*args, **kwargs)
    return Process(
        sim, generator,
        name=name or getattr(generator_fn, "__name__", "process"),
        start_delay=start_delay,
    )


def sleep_forever() -> ProcessGenerator:
    """A generator that never finishes; useful as a placeholder activity."""
    never = Future(name="never")
    yield never
