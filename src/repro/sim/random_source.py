"""Deterministic random-number streams for reproducible simulations.

Every stochastic component in the simulator (network jitter, replication
lag, ranking noise, clock drift, ...) draws from its own *named stream*
derived from a single root seed.  This has two properties we rely on
throughout the library:

* **Reproducibility** — a campaign is a pure function of
  ``(seed, config)``; re-running with the same seed yields bit-identical
  traces, figures, and benchmark rows.
* **Isolation** — adding a new consumer of randomness (say, an extra
  latency sample in the network) does not perturb the draws seen by
  unrelated components, because each component owns an independent
  stream keyed by its name.

Streams are plain :class:`random.Random` instances seeded from a stable
hash of ``(root_seed, name)``, so no global state is involved and
simulations can run concurrently within one interpreter.
"""

from __future__ import annotations

import hashlib
import math
import random
from typing import Iterator

__all__ = ["RandomSource", "derive_seed"]


def derive_seed(root_seed: int, name: str) -> int:
    """Derive a child seed from ``root_seed`` and a stream ``name``.

    Uses BLAKE2b rather than Python's ``hash`` so the derivation is
    stable across interpreter runs and ``PYTHONHASHSEED`` values.
    """
    digest = hashlib.blake2b(
        f"{root_seed}:{name}".encode("utf-8"), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big")


class RandomSource:
    """A tree of named, independently-seeded random streams.

    Example
    -------
    >>> rng = RandomSource(seed=42)
    >>> jitter = rng.stream("net.jitter")
    >>> lag = rng.stream("replication.lag")
    >>> a = jitter.random()
    >>> b = lag.random()

    Requesting the same name twice returns the same underlying stream
    object, so components may look their stream up lazily.
    """

    def __init__(self, seed: int = 0) -> None:
        self._seed = int(seed)
        self._streams: dict[str, random.Random] = {}

    @property
    def seed(self) -> int:
        """The root seed this source was created with."""
        return self._seed

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use."""
        stream = self._streams.get(name)
        if stream is None:
            stream = random.Random(derive_seed(self._seed, name))
            self._streams[name] = stream
        return stream

    def ephemeral(self, name: str) -> random.Random:
        """A fresh, *unmemoized* stream seeded for ``name``.

        Unlike :meth:`stream`, the returned generator is not cached, so
        call sites that derive a stream per (entity, epoch) pair — e.g.
        the ranked-feed interest noise — can take one-shot draws without
        growing the stream table without bound.  Identically named
        ephemeral and memoized streams produce identical draws.
        """
        return random.Random(derive_seed(self._seed, name))

    def child(self, name: str) -> "RandomSource":
        """Return a :class:`RandomSource` rooted under ``name``.

        Useful when a whole subsystem (e.g. one simulated service) wants
        its own namespace of streams.
        """
        return RandomSource(derive_seed(self._seed, name))

    def spawn_seeds(self, name: str, count: int) -> list[int]:
        """Return ``count`` independent seeds derived under ``name``."""
        if count < 0:
            raise ValueError("count must be non-negative")
        return [derive_seed(self._seed, f"{name}[{i}]") for i in range(count)]

    # -- Convenience distributions -------------------------------------
    #
    # These wrap a named stream with the distributions the simulator
    # actually needs, so call sites stay one-liners.

    def uniform(self, name: str, low: float, high: float) -> float:
        """One draw from U(low, high) on stream ``name``."""
        return self.stream(name).uniform(low, high)

    def exponential(self, name: str, mean: float) -> float:
        """One draw from Exp(mean) on stream ``name``."""
        if mean <= 0:
            raise ValueError("mean must be positive")
        return self.stream(name).expovariate(1.0 / mean)

    def lognormal(self, name: str, median: float, sigma: float) -> float:
        """One draw from a log-normal with the given *median* (not mean).

        Parameterizing by median makes latency configs intuitive: a
        median of 10 ms with sigma 0.3 gives a right-skewed distribution
        whose typical value is 10 ms, matching how RTT jitter behaves.
        """
        if median <= 0:
            raise ValueError("median must be positive")
        return self.stream(name).lognormvariate(math.log(median), sigma)

    def bernoulli(self, name: str, probability: float) -> bool:
        """One biased coin flip on stream ``name``."""
        if not 0.0 <= probability <= 1.0:
            raise ValueError("probability must be in [0, 1]")
        return self.stream(name).random() < probability

    def choice(self, name: str, options: list):
        """Pick one element of ``options`` uniformly on stream ``name``."""
        if not options:
            raise ValueError("options must be non-empty")
        return self.stream(name).choice(options)

    def iter_uniform(self, name: str, low: float,
                     high: float) -> Iterator[float]:
        """Infinite iterator of U(low, high) draws on stream ``name``."""
        stream = self.stream(name)
        while True:
            yield stream.uniform(low, high)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"RandomSource(seed={self._seed}, "
                f"streams={sorted(self._streams)})")
