"""repro.stream — online incremental anomaly detection.

The batch pipeline (:mod:`repro.core.anomalies`, :mod:`repro.core.windows`)
re-derives everything from a finished trace; this package detects the
same six anomalies — and the divergence windows — *as operations
happen*, with bounded memory and measured state, and proves the two
paths identical (:mod:`repro.stream.parity`).

Layout:

* :mod:`repro.stream.base` — canonical stream order, ``TestMeta``,
  ``StreamOp``, the ``StreamingChecker`` interface.
* :mod:`repro.stream.session` / :mod:`repro.stream.divergence` — the
  six checkers.
* :mod:`repro.stream.windows` — online divergence windows with live
  open/close events.
* :mod:`repro.stream.engine` — the fan-out hub and telemetry.
* :mod:`repro.stream.ingest` — replay ordering and the live
  watermark sequencer (``OperationObserver`` implementation).
* :mod:`repro.stream.parity` — the batch-equality harness.
"""

from repro.stream.base import StreamingChecker, StreamOp, TestMeta
from repro.stream.divergence import (
    StreamingContentDivergenceChecker,
    StreamingOrderDivergenceChecker,
)
from repro.stream.engine import (
    DEFAULT_HORIZON,
    Emission,
    StreamEngine,
    default_streaming_checkers,
)
from repro.stream.ingest import OpIngest, replay_trace, stream_order
from repro.stream.parity import (
    checker_mismatches,
    record_mismatches,
    verify_trace,
)
from repro.stream.session import (
    StreamingMonotonicReadsChecker,
    StreamingMonotonicWritesChecker,
    StreamingReadYourWritesChecker,
    StreamingWritesFollowReadsChecker,
)
from repro.stream.windows import StreamingWindowTracker, WindowEvent

__all__ = [
    "TestMeta",
    "StreamOp",
    "StreamingChecker",
    "StreamingReadYourWritesChecker",
    "StreamingMonotonicWritesChecker",
    "StreamingMonotonicReadsChecker",
    "StreamingWritesFollowReadsChecker",
    "StreamingContentDivergenceChecker",
    "StreamingOrderDivergenceChecker",
    "StreamingWindowTracker",
    "WindowEvent",
    "DEFAULT_HORIZON",
    "Emission",
    "StreamEngine",
    "default_streaming_checkers",
    "OpIngest",
    "replay_trace",
    "stream_order",
    "checker_mismatches",
    "record_mismatches",
    "verify_trace",
]
