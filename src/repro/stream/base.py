"""Common vocabulary for the online anomaly-detection engine.

The batch checkers (:mod:`repro.core.anomalies`) take a complete
:class:`~repro.core.trace.TestTrace`; the streaming checkers here take
the same operations *one at a time* and emit the same
:class:`~repro.core.anomalies.base.AnomalyObservation` objects, the
moment the violating read (or read pair) arrives.

Canonical stream order
----------------------
Every streaming algorithm in this package assumes operations arrive in
**canonical stream order**:

    key(op) = (corrected_response(op), 0 if write else 1, record_seq)

i.e. reference-frame response time, writes before reads at exact time
ties, remaining ties broken by recording order.  Two properties make
this the one order that reconciles "online" with "identical to batch":

* **Per-agent prefix property** — one agent's operations share one
  clock delta, so canonical order restricted to an agent equals its
  local response order: session-scoped state (high-water marks,
  seen-sets) can be updated incrementally and is always complete when
  the agent's next operation arrives.
* **Cross-agent availability** — every batch predicate compares an
  operation only against operations whose corrected response precedes
  its own corrected invocation (or response); under canonical order
  those have already arrived (the writes-first tie-break covers the
  inclusive boundary).  The single degenerate exception — a
  zero-duration read ending exactly at a zero-duration write's
  invocation instant — cannot occur in traces with positive operation
  latencies, which every simulator-produced trace has.

Replay feeds sort a finished trace into this order
(:func:`repro.stream.ingest.stream_order`); live feeds pass through a
watermark sequencer (:class:`repro.stream.ingest.OpIngest`) that
restores it with a bounded reorder buffer.

State accounting
----------------
Every checker reports :meth:`StreamingChecker.state_size` — the number
of retained state atoms (stored views, high-water entries, pending
observations).  The engine sums these into its telemetry so the
bounded-memory contract is *measured*, not asserted: benchmarks grow
the campaign 10x and check the peak plateaus under test eviction.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

from repro.core.anomalies.base import AnomalyObservation
from repro.core.trace import Operation, TestTrace, WriteOp

__all__ = ["TestMeta", "StreamOp", "StreamingChecker"]


@dataclass(frozen=True)
class TestMeta:
    """Per-test metadata the checkers need before the first operation.

    Everything here is known at test open time: the runner estimates
    clock deltas and fixes the WFR trigger map *before* agents start
    logging, so the streaming path never waits on trace completion for
    metadata.
    """

    __test__ = False  # not a pytest class, despite the name

    test_id: str
    service: str
    test_type: str
    agents: tuple[str, ...]
    clock_deltas: dict[str, float] = field(default_factory=dict)
    delta_uncertainty: dict[str, float] = field(default_factory=dict)
    wfr_triggers: dict[str, frozenset[str]] = field(
        default_factory=dict
    )

    @classmethod
    def from_trace(cls, trace: TestTrace) -> "TestMeta":
        return cls(
            test_id=trace.test_id,
            service=trace.service,
            test_type=trace.test_type,
            agents=trace.agents,
            clock_deltas=dict(trace.clock_deltas),
            delta_uncertainty=dict(trace.delta_uncertainty),
            wfr_triggers=dict(trace.wfr_triggers),
        )

    def corrected(self, agent: str, local_time: float) -> float:
        """Translate an agent-local instant into reference time."""
        return local_time - self.clock_deltas.get(agent, 0.0)

    def agent_index(self, agent: str) -> int:
        return self.agents.index(agent)

    def agent_pairs(self) -> list[tuple[str, str]]:
        """All unordered agent pairs, in the trace's stable order."""
        return [
            (first, second)
            for i, first in enumerate(self.agents)
            for second in self.agents[i + 1:]
        ]


@dataclass(frozen=True)
class StreamOp:
    """One operation positioned in the canonical stream.

    ``seq`` is the operation's recording index within its test (the
    batch stable-sort tie-breaker); ``read_seq`` numbers reads only, in
    canonical order — the index a read has in the batch
    ``trace.reads()`` list, used to put deferred observations back in
    batch emission order.
    """

    op: Operation
    time: float  # corrected (reference-frame) response time
    invoke: float  # corrected invocation time
    seq: int
    read_seq: int = -1

    @property
    def is_write(self) -> bool:
        return isinstance(self.op, WriteOp)

    @property
    def agent(self) -> str:
        return self.op.agent


class StreamingChecker(abc.ABC):
    """Interface every streaming anomaly checker implements.

    Lifecycle per test: ``open_test`` once, ``observe`` per operation
    in canonical stream order, ``close_test`` once.  ``observe``
    returns the observations the operation triggers *immediately* —
    the live telemetry feed.  ``close_test`` returns the test's
    **complete** observation list, in the batch checker's emission
    order (including any observations already surfaced live plus the
    stragglers whose evidence only completed later), and drops every
    byte of the test's state.

    Contract (enforced by the parity suite and the CI gate): for any
    trace fed in canonical stream order, ``close_test`` output equals
    the corresponding batch checker's ``check(trace)`` element for
    element.
    """

    #: Anomaly-kind constant produced by this checker.
    anomaly: str = ""

    @abc.abstractmethod
    def open_test(self, meta: TestMeta) -> None:
        """Allocate per-test state for ``meta.test_id``."""

    @abc.abstractmethod
    def observe(self, meta: TestMeta,
                sop: StreamOp) -> list[AnomalyObservation]:
        """Ingest one operation; return observations it fired."""

    @abc.abstractmethod
    def close_test(self, meta: TestMeta) -> list[AnomalyObservation]:
        """Return the test's full batch-ordered output; free state."""

    @abc.abstractmethod
    def state_size(self) -> int:
        """Number of retained state atoms, across all open tests."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} anomaly={self.anomaly!r}>"
