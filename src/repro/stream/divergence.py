"""Streaming divergence checkers (content and order), online.

The batch checkers compare every read of one agent against every read
of the other — O(reads^2) work and a full trace in memory.  The
streaming versions exploit that both predicates depend only on the
*views*, not on which read returned them: per agent (per pair side)
they keep one record per **distinct view**, with its multiplicity and
the position/time of its first occurrence.  A new distinct view is
compared against the other side's distinct views once; a repeated view
just bumps multiplicities and the running pair count.  Real traces
re-read a converged state most of the time, so distinct views — and
therefore state and work — stay far below read counts.

Batch-parity bookkeeping:

* ``count`` — the batch checker counts divergent *(read, read)*
  combinations, so a divergent distinct-view combo contributes the
  product of its multiplicities; incrementally, each new read adds the
  current multiplicity sum of the partner views it diverges from.
* ``example`` — the batch example comes from the first divergent pair
  in left-major nested-loop order, i.e. the minimum ``(left read
  index, right read index)`` over divergent combos.  A combo's minimal
  pair is the first occurrence of each view, fixed when the *later*
  first occurrence arrives — so the best example can be tracked with
  one lexicographic comparison per newly-divergent combo, and repeats
  can never displace it.
* ``time``/detecting read — the read of the example pair with the
  larger local response instant (the left one on ties), exactly the
  batch tie-break.

``observe`` never emits: a divergence observation summarizes a whole
pair for a whole test (at most one per pair), so it only exists at
``close_test``.  Live divergence *onset* telemetry comes from the
window tracker (:mod:`repro.stream.windows`) instead.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.anomalies.base import (
    CONTENT_DIVERGENCE,
    ORDER_DIVERGENCE,
    AnomalyObservation,
)
from repro.core.anomalies.order_divergence import first_inversion
from repro.core.trace import ReadOp
from repro.stream.base import StreamingChecker, StreamOp, TestMeta

__all__ = [
    "StreamingContentDivergenceChecker",
    "StreamingOrderDivergenceChecker",
]


@dataclass
class _ViewRecord:
    """One distinct observed view on one side of an agent pair."""

    view: tuple[str, ...]
    first_index: int  # index in this side's reads_by order
    first_response_local: float
    first_time: float  # corrected response of the first occurrence
    multiplicity: int = 1
    #: records of partner views this view diverges from.
    divergent_with: list["_ViewRecord"] = field(default_factory=list)


@dataclass
class _PairState:
    """Divergence state for one unordered agent pair in one test."""

    left: str
    right: str
    #: view -> record, insertion-ordered (= first-occurrence order).
    left_views: dict[tuple[str, ...], _ViewRecord] = field(
        default_factory=dict
    )
    right_views: dict[tuple[str, ...], _ViewRecord] = field(
        default_factory=dict
    )
    count: int = 0
    #: (left first_index, right first_index) of the example combo.
    best: tuple[int, int] | None = None
    best_left: _ViewRecord | None = None
    best_right: _ViewRecord | None = None


class _StreamingPairwiseChecker(StreamingChecker):
    """Shared machinery for both divergence checkers."""

    def __init__(self) -> None:
        #: test_id -> [(pair state, ...)] in agent_pairs order.
        self._pairs: dict[str, list[_PairState]] = {}
        #: test_id -> agent -> number of reads seen (reads_by index).
        self._read_counts: dict[str, dict[str, int]] = {}

    def open_test(self, meta: TestMeta) -> None:
        self._pairs[meta.test_id] = [
            _PairState(*sorted((first, second)))
            for first, second in meta.agent_pairs()
        ]
        self._read_counts[meta.test_id] = {
            agent: 0 for agent in meta.agents
        }

    def _diverged(self, left_view: tuple[str, ...],
                  right_view: tuple[str, ...]) -> bool:
        raise NotImplementedError

    def _example(self, left_view: tuple[str, ...],
                 right_view: tuple[str, ...]) -> dict:
        raise NotImplementedError

    def observe(self, meta: TestMeta,
                sop: StreamOp) -> list[AnomalyObservation]:
        op = sop.op
        if not isinstance(op, ReadOp):
            return []
        counts = self._read_counts[meta.test_id]
        index = counts[op.agent]
        counts[op.agent] = index + 1
        for state in self._pairs[meta.test_id]:
            if op.agent == state.left:
                self._ingest(state, index, op, sop, left_side=True)
            elif op.agent == state.right:
                self._ingest(state, index, op, sop, left_side=False)
        return []

    def _ingest(self, state: _PairState, index: int, op: ReadOp,
                sop: StreamOp, left_side: bool) -> None:
        own = state.left_views if left_side else state.right_views
        partner = state.right_views if left_side else state.left_views
        record = own.get(op.observed)
        if record is not None:
            record.multiplicity += 1
            state.count += sum(p.multiplicity
                               for p in record.divergent_with)
            return
        record = _ViewRecord(
            view=op.observed,
            first_index=index,
            first_response_local=op.response_local,
            first_time=sop.time,
        )
        own[op.observed] = record
        for other in partner.values():
            if left_side:
                diverged = self._diverged(record.view, other.view)
            else:
                diverged = self._diverged(other.view, record.view)
            if not diverged:
                continue
            record.divergent_with.append(other)
            other.divergent_with.append(record)
            state.count += other.multiplicity
            left_rec = record if left_side else other
            right_rec = other if left_side else record
            candidate = (left_rec.first_index, right_rec.first_index)
            if state.best is None or candidate < state.best:
                state.best = candidate
                state.best_left = left_rec
                state.best_right = right_rec

    def close_test(self, meta: TestMeta) -> list[AnomalyObservation]:
        self._read_counts.pop(meta.test_id, None)
        observations: list[AnomalyObservation] = []
        for state in self._pairs.pop(meta.test_id):
            if state.count == 0:
                continue
            left_rec = state.best_left
            right_rec = state.best_right
            assert left_rec is not None and right_rec is not None
            detecting = (
                left_rec
                if left_rec.first_response_local >=
                right_rec.first_response_local
                else right_rec
            )
            observations.append(AnomalyObservation(
                anomaly=self.anomaly,
                agent=state.left,
                time=detecting.first_time,
                pair=(state.left, state.right),
                details={
                    "divergent_read_pairs": state.count,
                    "example": self._example(left_rec.view,
                                             right_rec.view),
                },
            ))
        return observations

    def state_size(self) -> int:
        total = 0
        for states in self._pairs.values():
            for state in states:
                total += len(state.left_views)
                total += len(state.right_views)
                total += sum(len(r.divergent_with)
                             for r in state.left_views.values())
        total += sum(len(counts)
                     for counts in self._read_counts.values())
        return total


class StreamingContentDivergenceChecker(_StreamingPairwiseChecker):
    """Cross-missing writes between two agents' views, online."""

    anomaly = CONTENT_DIVERGENCE

    def _diverged(self, left_view: tuple[str, ...],
                  right_view: tuple[str, ...]) -> bool:
        left_set, right_set = set(left_view), set(right_view)
        return bool(left_set - right_set) and bool(
            right_set - left_set
        )

    def _example(self, left_view: tuple[str, ...],
                 right_view: tuple[str, ...]) -> dict:
        left_set, right_set = set(left_view), set(right_view)
        return {
            "left_only": tuple(sorted(left_set - right_set)),
            "right_only": tuple(sorted(right_set - left_set)),
            "left_observed": left_view,
            "right_observed": right_view,
        }


class StreamingOrderDivergenceChecker(_StreamingPairwiseChecker):
    """Inverted relative orders between two agents' views, online."""

    anomaly = ORDER_DIVERGENCE

    def _diverged(self, left_view: tuple[str, ...],
                  right_view: tuple[str, ...]) -> bool:
        return first_inversion(left_view, right_view) is not None

    def _example(self, left_view: tuple[str, ...],
                 right_view: tuple[str, ...]) -> dict:
        inversion = first_inversion(left_view, right_view)
        assert inversion is not None
        return {
            "inverted": inversion,
            "left_observed": left_view,
            "right_observed": right_view,
        }
