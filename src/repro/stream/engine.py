"""The online anomaly-detection engine.

:class:`StreamEngine` fans one canonical-order operation stream out to
the six streaming checkers plus the two divergence-window trackers,
and distills every closed test into the exact
:class:`~repro.methodology.runner.TestRecord` the batch
:func:`~repro.methodology.runner.analyze_trace` would have produced —
that equality is the subsystem's correctness anchor, enforced by
:mod:`repro.stream.parity` and the CI gate.

Memory model: per *open* test the engine holds O(agents x active-keys)
checker state plus O(1) counters; a closed test's state is dropped by
every checker and only its distilled record is retained, in a ring
bounded by the **eviction horizon** (``horizon`` closed records; older
ones fall off).  :meth:`StreamEngine.state_size` sums every layer so
telemetry — and the throughput benchmark's bounded-memory assertion —
measures the real footprint.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.core.anomalies.base import (
    ALL_ANOMALIES,
    AnomalyObservation,
)
from repro.core.anomalies.registry import TraceReport
from repro.core.trace import ReadOp, TestTrace
from repro.core.windows import WindowResult
from repro.methodology.runner import TestRecord
from repro.obs import ObsContext
from repro.stream.base import StreamingChecker, StreamOp, TestMeta
from repro.stream.divergence import (
    StreamingContentDivergenceChecker,
    StreamingOrderDivergenceChecker,
)
from repro.stream.session import (
    StreamingMonotonicReadsChecker,
    StreamingMonotonicWritesChecker,
    StreamingReadYourWritesChecker,
    StreamingWritesFollowReadsChecker,
)
from repro.stream.windows import (
    WindowEvent,
    streaming_content_windows,
    streaming_order_windows,
)

__all__ = ["default_streaming_checkers", "Emission", "StreamEngine"]

Pair = tuple[str, str]

#: Default eviction horizon: closed-test records retained by the engine.
DEFAULT_HORIZON = 64


def default_streaming_checkers() -> list[StreamingChecker]:
    """Fresh streaming checkers, in the paper's (registry) order."""
    return [
        StreamingReadYourWritesChecker(),
        StreamingMonotonicWritesChecker(),
        StreamingMonotonicReadsChecker(),
        StreamingWritesFollowReadsChecker(),
        StreamingContentDivergenceChecker(),
        StreamingOrderDivergenceChecker(),
    ]


@dataclass(frozen=True)
class Emission:
    """What one operation triggered, live."""

    observations: tuple[AnomalyObservation, ...] = ()
    window_events: tuple[WindowEvent, ...] = ()

    def __bool__(self) -> bool:
        return bool(self.observations or self.window_events)


@dataclass
class _TestCounters:
    """Per-open-test bookkeeping outside the checkers."""

    reads: dict[str, int]
    writes: dict[str, int]
    min_time: float | None = None
    max_time: float | None = None


class StreamEngine:
    """Fan-out hub: one op stream in, live emissions + records out.

    Lifecycle mirrors the checkers' — ``open_test`` / ``observe`` (in
    canonical stream order) / ``close_test`` — and multiple tests may
    be open at once (the fleet interleaves shards; a trace-event file
    may interleave tests).
    """

    def __init__(self, horizon: int | None = DEFAULT_HORIZON,
                 checkers: list[StreamingChecker] | None = None,
                 obs: ObsContext | None = None,
                 metrics: tuple = ()):
        #: Optional observability context.  Updated only at test
        #: closure, timestamped from the closed test's own stream
        #: times — so exports depend on the operation stream alone,
        #: never on host scheduling.
        self.obs = obs
        self.checkers = (checkers if checkers is not None
                         else default_streaming_checkers())
        #: Optional relation-layer metric evaluator: ``metrics`` is a
        #: tuple of resolved :class:`repro.relations.spec.MetricSpec`
        #: objects; results ride each closed test's record exactly as
        #: the batch path's do (imported lazily so the common
        #: metric-free path never touches the package).
        self.metric_evaluator = None
        if metrics:
            from repro.relations.streaming import (
                StreamingMetricEvaluator,
            )

            self.metric_evaluator = StreamingMetricEvaluator(metrics)
        self.content_windows = streaming_content_windows()
        self.order_windows = streaming_order_windows()
        self._counters: dict[str, _TestCounters] = {}
        #: Distilled records of closed tests, newest last; bounded by
        #: the eviction horizon (None = keep everything).
        self.results: deque[TestRecord] = deque(maxlen=horizon)
        self.tests_closed = 0
        self.operations_seen = 0
        #: Authoritative totals, updated as each test closes.
        self.anomaly_counts: dict[str, int] = {
            kind: 0 for kind in ALL_ANOMALIES
        }
        #: Provisional count of live-surfaced observations (open tests).
        self.live_observations = 0

    # -- lifecycle ----------------------------------------------------

    def open_test(self, meta: TestMeta) -> None:
        self._counters[meta.test_id] = _TestCounters(
            reads={agent: 0 for agent in meta.agents},
            writes={agent: 0 for agent in meta.agents},
        )
        for checker in self.checkers:
            checker.open_test(meta)
        if self.metric_evaluator is not None:
            self.metric_evaluator.open_test(meta)
        self.content_windows.open_test(meta)
        self.order_windows.open_test(meta)

    def observe(self, meta: TestMeta, sop: StreamOp) -> Emission:
        counters = self._counters[meta.test_id]
        agent = sop.agent
        if isinstance(sop.op, ReadOp):
            counters.reads[agent] += 1
        else:
            counters.writes[agent] += 1
        if counters.min_time is None or sop.time < counters.min_time:
            counters.min_time = sop.time
        if counters.max_time is None or sop.time > counters.max_time:
            counters.max_time = sop.time
        self.operations_seen += 1

        observations: list[AnomalyObservation] = []
        for checker in self.checkers:
            observations.extend(checker.observe(meta, sop))
        if self.metric_evaluator is not None:
            self.metric_evaluator.observe(meta, sop)
        events = list(self.content_windows.observe(meta, sop))
        events.extend(self.order_windows.observe(meta, sop))
        self.live_observations += len(observations)
        return Emission(tuple(observations), tuple(events))

    def close_test(self, meta: TestMeta,
                   trace: TestTrace | None = None) -> TestRecord:
        """Distill and retire one test.

        Pass the trace only to embed it in the record (the
        ``keep_traces`` path); the analysis itself never touches it.
        """
        counters = self._counters.pop(meta.test_id)
        observations: list[AnomalyObservation] = []
        for checker in self.checkers:
            closed = checker.close_test(meta)
            self.anomaly_counts[checker.anomaly] += len(closed)
            observations.extend(closed)
        report = TraceReport.from_observations(
            meta.test_id, meta.service, meta.test_type, meta.agents,
            observations,
        )
        metric_results: tuple = ()
        if self.metric_evaluator is not None:
            metric_results = self.metric_evaluator.close_test(meta)
        content, _ = self.content_windows.close_test(meta)
        order, _ = self.order_windows.close_test(meta)
        duration = 0.0
        if counters.min_time is not None:
            assert counters.max_time is not None
            duration = counters.max_time - counters.min_time
        record = TestRecord(
            test_id=meta.test_id,
            test_type=meta.test_type,
            report=report,
            content_windows=content,
            order_windows=order,
            reads_per_agent=dict(counters.reads),
            writes_per_agent=dict(counters.writes),
            duration=duration,
            trace=trace,
            metrics=metric_results,
        )
        self.results.append(record)
        self.tests_closed += 1
        self.live_observations = 0 if not self._counters else \
            self.live_observations
        if self.obs is not None:
            at = counters.max_time if counters.max_time is not None \
                else 0.0
            metrics = self.obs.metrics
            metrics.counter("stream.tests_closed_total",
                            service=meta.service).inc(at=at)
            ops = (sum(counters.reads.values())
                   + sum(counters.writes.values()))
            metrics.counter("stream.operations_total",
                            service=meta.service).inc(ops, at=at)
            metrics.gauge("stream.state_size").set(
                self.state_size(), at=at
            )
            metrics.gauge("stream.open_tests").set(
                self.open_tests, at=at
            )
            for result in metric_results:
                metrics.counter(
                    "relations.samples_total",
                    service=meta.service, metric=result.metric,
                ).inc(len(result.samples), at=at)
                metrics.counter(
                    "relations.value_total",
                    service=meta.service, metric=result.metric,
                ).inc(result.value, at=at)
        return record

    # -- telemetry ----------------------------------------------------

    @property
    def open_tests(self) -> int:
        return len(self._counters)

    def state_size(self) -> int:
        """Retained state atoms across checkers, trackers, results."""
        total = sum(c.state_size() for c in self.checkers)
        total += self.content_windows.state_size()
        total += self.order_windows.state_size()
        if self.metric_evaluator is not None:
            total += self.metric_evaluator.state_size()
        for counters in self._counters.values():
            total += len(counters.reads) + len(counters.writes)
        for record in self.results:
            total += 1 + sum(
                len(obs_list)
                for obs_list in record.report.observations.values()
            )
            total += sum(len(result.samples)
                         for result in record.metrics)
        return total

    def stats(self) -> dict[str, object]:
        """One snapshot for the live telemetry line."""
        return {
            "open_tests": self.open_tests,
            "tests_closed": self.tests_closed,
            "operations": self.operations_seen,
            "state_size": self.state_size(),
            "anomalies": dict(self.anomaly_counts),
        }
