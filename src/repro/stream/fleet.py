"""Streaming shard execution for the fleet.

``run_fleet(..., stream=True)`` swaps the batch shard runner for
:func:`run_stream_shard`: the campaign runs with an
:class:`~repro.stream.ingest.OpIngest` observer wired in and the
engine's online records substituted for the batch re-check.  The
shard's :class:`~repro.methodology.runner.CampaignResult` is
bit-identical either way (the parity contract), so fleet signatures,
artifact digests, and resume are unaffected — what changes is *when*
information is available:

* ``on_test`` fires after every test closes, giving the executor a
  per-test anomaly summary to forward as
  :class:`~repro.obs.events.ShardTestChecked` telemetry — in
  parallel mode workers pipe these to the host as interim messages
  while the shard is still running;
* with a ``trace_path``, every operation is appended to a trace-event
  JSONL file as it happens, so ``repro-consistency stream
  --from-trace`` (or ``--follow``) can re-analyze or watch the shard.
"""

from __future__ import annotations

from pathlib import Path
from typing import Callable

from repro.fleet.spec import ShardJob
from repro.io import TraceEventWriter
from repro.methodology.runner import (
    CampaignResult,
    TestRecord,
    run_campaign,
)
from repro.stream.base import TestMeta
from repro.stream.engine import StreamEngine
from repro.stream.ingest import OpIngest

__all__ = ["run_stream_shard", "execute_shard_stream"]

#: Per-test callback: (meta, record, engine) after each test closes.
TestCallback = Callable[[TestMeta, TestRecord, StreamEngine], None]


class _FanObserver:
    """Forward every observer callback to several observers, in order."""

    def __init__(self, *observers) -> None:
        self._observers = observers

    def test_opened(self, trace) -> None:
        for observer in self._observers:
            observer.test_opened(trace)

    def operation(self, trace, op) -> None:
        for observer in self._observers:
            observer.operation(trace, op)

    def test_closed(self, trace) -> None:
        for observer in self._observers:
            observer.test_closed(trace)


def run_stream_shard(job: ShardJob,
                     on_test: TestCallback | None = None,
                     trace_path: str | Path | None = None
                     ) -> CampaignResult:
    """Run one shard through the streaming engine.

    Closed-test records are consumed by the campaign immediately, so
    the engine keeps a minimal eviction horizon; its state is the live
    checkers' only.
    """
    metric_specs: tuple = ()
    if job.config.metrics:
        from repro.relations.registry import resolve_metrics

        metric_specs = resolve_metrics(job.config.metrics)
    engine = StreamEngine(horizon=1, metrics=metric_specs)
    ingest = OpIngest(engine)
    if on_test is not None:
        ingest.on_record = (
            lambda meta, record: on_test(meta, record, engine)
        )
    observer = ingest
    trace_file = None
    if trace_path is not None:
        trace_path = Path(trace_path)
        trace_path.parent.mkdir(parents=True, exist_ok=True)
        trace_file = trace_path.open("w", encoding="utf-8")
        observer = _FanObserver(TraceEventWriter(trace_file), ingest)
    try:
        return run_campaign(job.service, job.config,
                            observer=observer,
                            analyzer=ingest.analyzer)
    finally:
        if trace_file is not None:
            trace_file.close()


def execute_shard_stream(job: ShardJob) -> CampaignResult:
    """Plain streaming shard runner (module-level, picklable)."""
    return run_stream_shard(job)
