"""Feeding the engine: replay ordering and the live sequencer.

Two ways operations reach a :class:`~repro.stream.engine.StreamEngine`:

* **Replay** — a finished trace (or trace-event file) is sorted into
  canonical stream order by :func:`stream_order` and pushed through
  :func:`replay_trace`.  Deterministic, allocation-light, and the
  reference feed for the parity harness.
* **Live** — :class:`OpIngest` implements the campaign runner's
  :class:`~repro.methodology.runner.OperationObserver` protocol.
  Agents log operations in *true-time* order, which is not canonical
  order: corrected response times incorporate per-agent clock-delta
  estimates, so two operations close in true time may swap once
  corrected.  The sequencer restores canonical order with a watermark
  buffer — an operation is released only when every agent's latest
  corrected time has passed it, which is safe because one agent's
  corrected responses are non-decreasing (single monotonic clock, one
  delta per test).  The buffer holds at most the ops inside one
  clock-skew span, plus anything an agent that stopped logging leaves
  pinned until ``test_closed`` flushes the test.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator

from repro.core.trace import Operation, TestTrace, WriteOp
from repro.errors import AnalysisError
from repro.io import operation_from_dict, trace_from_meta_dict
from repro.methodology.runner import TestRecord
from repro.stream.base import StreamOp, TestMeta
from repro.stream.engine import Emission, StreamEngine

__all__ = ["stream_order", "replay_trace", "OpIngest", "feed_events",
           "tail_jsonl"]

#: Called with (meta, sop, emission) for every op that fired something.
EmissionCallback = Callable[[TestMeta, StreamOp, Emission], None]
#: Called with (meta, record) when a test closes.
RecordCallback = Callable[[TestMeta, TestRecord], None]


def _sort_key(meta: TestMeta, op: Operation,
              seq: int) -> tuple[float, int, int]:
    """Canonical stream order key (see :mod:`repro.stream.base`)."""
    time = meta.corrected(op.agent, op.response_local)
    return (time, 0 if isinstance(op, WriteOp) else 1, seq)


def stream_order(trace: TestTrace,
                 meta: TestMeta | None = None) -> list[StreamOp]:
    """A finished trace's operations as a canonical-order stream.

    ``seq`` is the recording index (the batch stable-sort tie-break);
    ``read_seq`` numbers the reads in canonical order, matching their
    index in the batch ``trace.reads()`` list.
    """
    meta = meta or TestMeta.from_trace(trace)
    ordered = sorted(
        enumerate(trace.operations),
        key=lambda pair: _sort_key(meta, pair[1], pair[0]),
    )
    stream: list[StreamOp] = []
    read_seq = 0
    for seq, op in ordered:
        is_write = isinstance(op, WriteOp)
        stream.append(StreamOp(
            op=op,
            time=meta.corrected(op.agent, op.response_local),
            invoke=meta.corrected(op.agent, op.invoke_local),
            seq=seq,
            read_seq=-1 if is_write else read_seq,
        ))
        if not is_write:
            read_seq += 1
    return stream


def replay_trace(trace: TestTrace, engine: StreamEngine,
                 keep_trace: bool = False) -> TestRecord:
    """Push one finished trace through the engine, return its record."""
    meta = TestMeta.from_trace(trace)
    engine.open_test(meta)
    for sop in stream_order(trace, meta):
        engine.observe(meta, sop)
    return engine.close_test(
        meta, trace=trace if keep_trace else None
    )


@dataclass
class _LiveTest:
    """Sequencer state for one in-flight test."""

    meta: TestMeta
    #: Min-heap of (time, write-rank, seq, op, corrected invoke).
    buffer: list[tuple[float, int, int, Operation, float]] = field(
        default_factory=list
    )
    #: agent -> corrected response of its latest logged op.
    frontier: dict[str, float] = field(default_factory=dict)
    next_seq: int = 0
    next_read_seq: int = 0


class OpIngest:
    """Live observer: true-time callbacks in, canonical stream out.

    Wire into a campaign with ``run_campaign(observer=OpIngest(...))``;
    to *replace* the batch analysis entirely, also pass
    :meth:`analyzer` so each finished trace's record comes from the
    engine instead of a second batch pass.
    """

    def __init__(self, engine: StreamEngine | None = None,
                 on_emission: EmissionCallback | None = None,
                 on_record: RecordCallback | None = None,
                 keep_traces: bool = False):
        self.engine = engine if engine is not None else StreamEngine()
        self.on_emission = on_emission
        self.on_record = on_record
        self.keep_traces = keep_traces
        self._tests: dict[str, _LiveTest] = {}
        #: test_id -> distilled record, for the analyzer fast path.
        self._records: dict[str, TestRecord] = {}

    # -- OperationObserver protocol -----------------------------------

    def test_opened(self, trace: TestTrace) -> None:
        meta = TestMeta.from_trace(trace)
        self._tests[trace.test_id] = _LiveTest(meta=meta)
        self.engine.open_test(meta)

    def operation(self, trace: TestTrace, op: Operation) -> None:
        live = self._tests[trace.test_id]
        meta = live.meta
        time = meta.corrected(op.agent, op.response_local)
        invoke = meta.corrected(op.agent, op.invoke_local)
        heapq.heappush(live.buffer, (
            time, 0 if isinstance(op, WriteOp) else 1,
            live.next_seq, op, invoke,
        ))
        live.next_seq += 1
        live.frontier[op.agent] = time
        self._release(live)

    def test_closed(self, trace: TestTrace) -> None:
        live = self._tests.pop(trace.test_id)
        self._drain(live, float("inf"))
        record = self.engine.close_test(
            live.meta, trace=trace if self.keep_traces else None
        )
        self._records[trace.test_id] = record
        if self.on_record is not None:
            self.on_record(live.meta, record)

    # -- analyzer fast path -------------------------------------------

    def analyzer(self, trace: TestTrace,
                 keep_trace: bool = False) -> TestRecord:
        """Drop-in for ``analyze_trace`` when this observer is wired.

        ``run_campaign`` calls the analyzer right after signalling
        ``test_closed``, so the record is already distilled; the batch
        re-check is skipped entirely.  (``keep_trace`` is honored via
        the constructor's ``keep_traces`` — the engine embedded the
        trace when the record was built.)
        """
        del keep_trace
        return self._records.pop(trace.test_id)

    # -- sequencing ---------------------------------------------------

    def _release(self, live: _LiveTest) -> None:
        """Emit every buffered op the watermark has safely passed.

        The watermark is the slowest agent's latest corrected time; an
        agent that has not logged yet pins it at -inf (everything
        waits — at test start that resolves with the first read
        burst).  Strictly-below comparison: an op *at* the watermark
        could still be preceded by a tied write from the slowest
        agent.
        """
        frontier = live.frontier
        if len(frontier) < len(live.meta.agents):
            return
        watermark = min(frontier.values())
        self._drain(live, watermark)

    def _drain(self, live: _LiveTest, watermark: float) -> None:
        meta = live.meta
        while live.buffer and live.buffer[0][0] < watermark:
            time, _, seq, op, invoke = heapq.heappop(live.buffer)
            read_seq = -1
            if not isinstance(op, WriteOp):
                read_seq = live.next_read_seq
                live.next_read_seq += 1
            sop = StreamOp(op=op, time=time, invoke=invoke, seq=seq,
                           read_seq=read_seq)
            emission = self.engine.observe(meta, sop)
            if emission and self.on_emission is not None:
                self.on_emission(meta, sop, emission)

    def state_size(self) -> int:
        """Buffered (not yet released) operations across open tests."""
        return sum(len(live.buffer) for live in self._tests.values())


def feed_events(events: Iterable[dict],
                ingest: OpIngest) -> Iterator[dict]:
    """Drive an :class:`OpIngest` from parsed trace events.

    ``events`` is what :func:`repro.io.iter_trace_events` yields — the
    standalone entry point for JSONL trace files (fleet shard archives,
    ``run --trace-out`` output, live ``--follow`` tails).  Each event is
    re-yielded after it has been applied, so a caller can interleave
    telemetry at any cadence.  Tests still open when the iterator is
    exhausted are left open: a follow-mode consumer may resume them.
    """
    shells: dict[str, TestTrace] = {}
    for event in events:
        kind = event.get("event")
        if kind == "test_open":
            shell = trace_from_meta_dict(event)
            shells[shell.test_id] = shell
            ingest.test_opened(shell)
        elif kind == "op":
            try:
                shell = shells[event["test_id"]]
            except KeyError:
                raise AnalysisError(
                    f"op event for unknown test "
                    f"{event.get('test_id')!r} (missing test_open?)"
                ) from None
            ingest.operation(shell, operation_from_dict(event))
        elif kind == "test_close":
            shell = shells.pop(event["test_id"], None)
            if shell is None:
                raise AnalysisError(
                    f"test_close for unknown test "
                    f"{event.get('test_id')!r}"
                )
            ingest.test_closed(shell)
        else:
            raise AnalysisError(
                f"unknown trace event kind {kind!r}"
            )
        yield event


def tail_jsonl(path, offset: int = 0) -> tuple[list[dict], int]:
    """Complete JSONL records appended to ``path`` since ``offset``.

    The follow-mode file primitive shared by ``stream --follow`` and
    the campaign service's event feeds: returns the parsed records and
    the byte offset to resume from.  A trailing line without its
    newline is a write still in flight — it is *not* returned, and the
    offset stays before it, so the next call re-reads it whole.  A
    missing file reads as empty (the producer may not have started).
    """
    import json
    from pathlib import Path

    try:
        data = Path(path).read_bytes()
    except FileNotFoundError:
        return [], offset
    chunk = data[offset:]
    end = chunk.rfind(b"\n")
    if end < 0:
        return [], offset
    complete = chunk[:end + 1]
    records = [json.loads(line) for line in complete.splitlines()
               if line.strip()]
    return records, offset + end + 1
