"""Differential batch-vs-streaming parity harness.

The streaming engine's correctness claim is not "approximately the
same anomalies" — it is *element-for-element equality* with the batch
pipeline, per checker, including observation order, example selection,
window intervals, and every scalar in the distilled record.  This
module states that claim as executable checks:

* :func:`checker_mismatches` — each of the six batch checkers against
  its streaming counterpart over one trace.
* :func:`record_mismatches` — the full batch ``analyze_trace`` record
  against the engine's replay record (report, windows, counters,
  duration).
* :func:`verify_trace` — both of the above for one trace; an empty
  list means exact parity.

The parity tests (:mod:`tests.test_stream_parity`) and the CI gate
(``tools/stream_parity_check.py``) are thin wrappers over these.
"""

from __future__ import annotations

from repro.core.anomalies.base import AnomalyChecker
from repro.core.anomalies.registry import default_checkers
from repro.core.trace import TestTrace
from repro.methodology.runner import TestRecord, analyze_trace
from repro.stream.base import StreamingChecker, TestMeta
from repro.stream.engine import (
    StreamEngine,
    default_streaming_checkers,
)
from repro.stream.ingest import replay_trace, stream_order

__all__ = [
    "checker_pairs",
    "checker_mismatches",
    "record_mismatches",
    "verify_trace",
]


def checker_pairs() -> list[tuple[AnomalyChecker, StreamingChecker]]:
    """(batch, streaming) checker instances paired by anomaly kind."""
    streaming = {c.anomaly: c for c in default_streaming_checkers()}
    return [(batch, streaming[batch.anomaly])
            for batch in default_checkers()]


def checker_mismatches(trace: TestTrace) -> list[str]:
    """Per-checker diffs between batch and streaming output."""
    mismatches: list[str] = []
    meta = TestMeta.from_trace(trace)
    stream = stream_order(trace, meta)
    for batch, online in checker_pairs():
        expected = batch.check(trace)
        online.open_test(meta)
        for sop in stream:
            online.observe(meta, sop)
        actual = online.close_test(meta)
        if online.state_size() != 0:
            mismatches.append(
                f"{batch.anomaly}: streaming checker retained "
                f"{online.state_size()} state atoms after close"
            )
        if expected == actual:
            continue
        mismatches.append(
            f"{batch.anomaly}: batch found {len(expected)} "
            f"observation(s), streaming found {len(actual)}"
            if len(expected) != len(actual) else
            f"{batch.anomaly}: observation lists differ in content "
            f"or order (first diff at index "
            f"{_first_diff(expected, actual)})"
        )
    return mismatches


def _first_diff(expected: list, actual: list) -> int:
    for index, (left, right) in enumerate(zip(expected, actual)):
        if left != right:
            return index
    return min(len(expected), len(actual))


def record_mismatches(expected: TestRecord,
                      actual: TestRecord) -> list[str]:
    """Field-level diffs between two distilled test records."""
    mismatches: list[str] = []
    for name in ("test_id", "test_type", "reads_per_agent",
                 "writes_per_agent", "duration", "metrics"):
        left, right = getattr(expected, name), getattr(actual, name)
        if left != right:
            mismatches.append(f"{name}: {left!r} != {right!r}")
    if expected.report != actual.report:
        for kind in expected.report.observations:
            left_obs = expected.report.observations.get(kind, [])
            right_obs = actual.report.observations.get(kind, [])
            if left_obs != right_obs:
                mismatches.append(
                    f"report[{kind}]: {len(left_obs)} batch vs "
                    f"{len(right_obs)} streaming observation(s)"
                )
    for name in ("content_windows", "order_windows"):
        left_map, right_map = getattr(expected, name), getattr(
            actual, name
        )
        if left_map == right_map and (
            list(left_map) == list(right_map)
        ):
            continue
        for pair in left_map:
            if left_map[pair] != right_map.get(pair):
                mismatches.append(
                    f"{name}[{pair}]: {left_map[pair]} != "
                    f"{right_map.get(pair)}"
                )
        if list(left_map) != list(right_map):
            mismatches.append(
                f"{name}: key insertion order differs "
                f"({list(left_map)} vs {list(right_map)})"
            )
    return mismatches


def verify_trace(trace: TestTrace, metrics: tuple = ()) -> list[str]:
    """All parity violations for one trace; empty list = parity.

    ``metrics`` (resolved :class:`repro.relations.spec.MetricSpec`
    objects) extends the proof to the relation layer: the engine's
    streaming metric results must equal the batch evaluator's, field
    for field, via the record comparison.
    """
    mismatches = checker_mismatches(trace)
    engine = StreamEngine(horizon=1, metrics=metrics)
    actual = replay_trace(trace, engine)
    expected = analyze_trace(trace, metrics=metrics)
    mismatches.extend(record_mismatches(expected, actual))
    if metrics:
        from repro.relations.parity import metric_mismatches

        mismatches.extend(metric_mismatches(trace, metrics))
    return mismatches
