"""Streaming session-guarantee checkers (RYW, MW, MR, WFR).

Each checker re-expresses its batch counterpart in
:mod:`repro.core.anomalies` as an incremental algorithm over the
canonical op stream (see :mod:`repro.stream.base`), holding per-session
summaries instead of the trace:

* **Read Your Writes** — per agent, the test's completed writes
  (``(invoke, response, id)`` triples); a read is checked against its
  own session's high-water writes the moment it arrives.
* **Monotonic Writes** — per writer session, completed writes with
  their reference-frame response times; every arriving read is checked
  against each session's prefix visible at its invocation.
* **Monotonic Reads** — per agent, the union of message ids returned
  by its reads so far (the classic version-vector-style seen-set).
* **Writes Follow Reads** — per write, its causal dependency set
  (computed the moment the write arrives, from the trigger map or the
  author's first-seen times); reads are checked immediately for writes
  already ingested, and *deferred* for observed writes whose own log
  entry is still in flight — the one case where evidence is
  information-theoretically incomplete at read time.

State is O(agents x active-keys) per open test and is dropped whole at
``close_test``.  Output parity: ``close_test`` returns the batch
checker's exact list (order included); the per-agent grouping the
batch RYW/MR loops produce is restored by sorting emissions on
``(agent index, arrival order)``, which is valid because canonical
order restricted to one agent equals its local session order.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.anomalies.base import (
    MONOTONIC_READS,
    MONOTONIC_WRITES,
    READ_YOUR_WRITES,
    WRITES_FOLLOW_READS,
    AnomalyObservation,
)
from repro.core.trace import ReadOp, WriteOp
from repro.stream.base import StreamingChecker, StreamOp, TestMeta

__all__ = [
    "StreamingReadYourWritesChecker",
    "StreamingMonotonicWritesChecker",
    "StreamingMonotonicReadsChecker",
    "StreamingWritesFollowReadsChecker",
]


@dataclass
class _WriteEntry:
    """One completed write in a session's high-water list."""

    invoke_local: float
    seq: int
    response_local: float
    time: float  # corrected response
    message_id: str


def _session_order(writes: list[_WriteEntry]) -> list[_WriteEntry]:
    """Writes in session (local invocation) order.

    Mirrors ``trace.writes_by``: a stable sort by invocation instant,
    ties resolved by recording order (``seq``).
    """
    return sorted(writes, key=lambda w: (w.invoke_local, w.seq))


class StreamingReadYourWritesChecker(StreamingChecker):
    """Reads missing the reader's own completed writes, online."""

    anomaly = READ_YOUR_WRITES

    def __init__(self) -> None:
        #: test_id -> agent -> completed writes.
        self._writes: dict[str, dict[str, list[_WriteEntry]]] = {}
        #: test_id -> [((agent_index, arrival), observation)].
        self._emitted: dict[str, list[tuple[tuple, object]]] = {}

    def open_test(self, meta: TestMeta) -> None:
        self._writes[meta.test_id] = {a: [] for a in meta.agents}
        self._emitted[meta.test_id] = []

    def observe(self, meta: TestMeta,
                sop: StreamOp) -> list[AnomalyObservation]:
        op = sop.op
        if isinstance(op, WriteOp):
            self._writes[meta.test_id][op.agent].append(_WriteEntry(
                op.invoke_local, sop.seq, op.response_local,
                sop.time, op.message_id,
            ))
            return []
        assert isinstance(op, ReadOp)
        session = _session_order(
            self._writes[meta.test_id][op.agent]
        )
        missing = tuple(
            w.message_id for w in session
            if w.response_local <= op.invoke_local
            and w.message_id not in op.observed
        )
        if not missing:
            return []
        obs = AnomalyObservation(
            anomaly=self.anomaly,
            agent=op.agent,
            time=sop.time,
            details={"missing": missing, "observed": op.observed},
        )
        emitted = self._emitted[meta.test_id]
        emitted.append(
            ((meta.agent_index(op.agent), len(emitted)), obs)
        )
        return [obs]

    def close_test(self, meta: TestMeta) -> list[AnomalyObservation]:
        self._writes.pop(meta.test_id, None)
        emitted = self._emitted.pop(meta.test_id, [])
        return [obs for _, obs in sorted(emitted,
                                         key=lambda e: e[0])]

    def state_size(self) -> int:
        return sum(
            len(entries)
            for per_agent in self._writes.values()
            for entries in per_agent.values()
        ) + sum(len(emitted) for emitted in self._emitted.values())


class StreamingMonotonicWritesChecker(StreamingChecker):
    """Per-session write-order violations in any read, online."""

    anomaly = MONOTONIC_WRITES

    def __init__(self) -> None:
        self._writes: dict[str, dict[str, list[_WriteEntry]]] = {}
        self._emitted: dict[str, list] = {}

    def open_test(self, meta: TestMeta) -> None:
        self._writes[meta.test_id] = {a: [] for a in meta.agents}
        self._emitted[meta.test_id] = []

    def observe(self, meta: TestMeta,
                sop: StreamOp) -> list[AnomalyObservation]:
        op = sop.op
        if isinstance(op, WriteOp):
            self._writes[meta.test_id][op.agent].append(_WriteEntry(
                op.invoke_local, sop.seq, op.response_local,
                sop.time, op.message_id,
            ))
            return []
        assert isinstance(op, ReadOp)
        fired: list[AnomalyObservation] = []
        for writer in meta.agents:
            session = _session_order([
                w for w in self._writes[meta.test_id][writer]
                if w.time <= sop.invoke
            ])
            if len(session) < 2:
                continue
            violation = _session_violation(
                [w.message_id for w in session], op.observed
            )
            if violation is None:
                continue
            missing, reordered = violation
            fired.append(AnomalyObservation(
                anomaly=self.anomaly,
                agent=op.agent,
                time=sop.time,
                details={
                    "writer": writer,
                    "missing": missing,
                    "reordered": reordered,
                    "observed": op.observed,
                },
            ))
        self._emitted[meta.test_id].extend(fired)
        return fired

    def close_test(self, meta: TestMeta) -> list[AnomalyObservation]:
        # Emission order is already batch order: reads arrive in the
        # batch ``trace.reads()`` order, writers iterate in agent
        # order within each read.
        self._writes.pop(meta.test_id, None)
        return self._emitted.pop(meta.test_id, [])

    def state_size(self) -> int:
        return sum(
            len(entries)
            for per_agent in self._writes.values()
            for entries in per_agent.values()
        ) + sum(len(emitted) for emitted in self._emitted.values())


def _session_violation(
    session_ids: list[str], observed: tuple[str, ...]
) -> tuple[tuple[str, ...], tuple[tuple[str, str], ...]] | None:
    """One writer session against one read's sequence.

    Exact mirror of the batch checker's ``_session_violation`` (same
    pair enumeration order, same de-duplication), expressed over
    message ids instead of :class:`WriteOp` objects.
    """
    positions = {mid: i for i, mid in enumerate(observed)}
    missing: list[str] = []
    reordered: list[tuple[str, str]] = []
    for i, earlier in enumerate(session_ids):
        for later in session_ids[i + 1:]:
            later_pos = positions.get(later)
            if later_pos is None:
                continue
            earlier_pos = positions.get(earlier)
            if earlier_pos is None:
                missing.append(earlier)
            elif later_pos < earlier_pos:
                reordered.append((earlier, later))
    if not missing and not reordered:
        return None
    return tuple(dict.fromkeys(missing)), tuple(reordered)


class StreamingMonotonicReadsChecker(StreamingChecker):
    """Messages vanishing between successive session reads, online."""

    anomaly = MONOTONIC_READS

    def __init__(self) -> None:
        #: test_id -> agent -> union of ids its reads returned so far.
        self._seen: dict[str, dict[str, set[str]]] = {}
        self._emitted: dict[str, list[tuple[tuple, object]]] = {}

    def open_test(self, meta: TestMeta) -> None:
        self._seen[meta.test_id] = {a: set() for a in meta.agents}
        self._emitted[meta.test_id] = []

    def observe(self, meta: TestMeta,
                sop: StreamOp) -> list[AnomalyObservation]:
        op = sop.op
        if not isinstance(op, ReadOp):
            return []
        seen = self._seen[meta.test_id][op.agent]
        missing = seen.difference(op.observed)
        fired: list[AnomalyObservation] = []
        if missing:
            obs = AnomalyObservation(
                anomaly=self.anomaly,
                agent=op.agent,
                time=sop.time,
                details={
                    "missing": tuple(sorted(missing)),
                    "observed": op.observed,
                },
            )
            emitted = self._emitted[meta.test_id]
            emitted.append(
                ((meta.agent_index(op.agent), len(emitted)), obs)
            )
            fired.append(obs)
        seen.update(op.observed)
        return fired

    def close_test(self, meta: TestMeta) -> list[AnomalyObservation]:
        self._seen.pop(meta.test_id, None)
        emitted = self._emitted.pop(meta.test_id, [])
        return [obs for _, obs in sorted(emitted,
                                         key=lambda e: e[0])]

    def state_size(self) -> int:
        return sum(
            len(ids)
            for per_agent in self._seen.values()
            for ids in per_agent.values()
        ) + sum(len(emitted) for emitted in self._emitted.values())


@dataclass
class _PendingWfr:
    """A read that observed a write whose log entry has not arrived."""

    read_seq: int
    position: int
    message_id: str
    visible: frozenset[str]
    observed: tuple[str, ...]
    agent: str
    time: float


@dataclass
class _WfrState:
    """Per-test WFR state."""

    #: message_id -> dependency set, fixed the moment the write arrives.
    deps: dict[str, frozenset[str]] = field(default_factory=dict)
    #: agent -> message_id -> earliest local response instant at which
    #: one of the agent's reads returned it (generic-mode derivation).
    first_seen: dict[str, dict[str, float]] = field(
        default_factory=dict
    )
    pending: list[_PendingWfr] = field(default_factory=list)
    #: [((read_seq, position), observation)] — merged at close.
    emitted: list[tuple[tuple[int, int], AnomalyObservation]] = field(
        default_factory=list
    )


class StreamingWritesFollowReadsChecker(StreamingChecker):
    """Reactions visible without the messages they followed, online."""

    anomaly = WRITES_FOLLOW_READS

    def __init__(self) -> None:
        self._state: dict[str, _WfrState] = {}

    def open_test(self, meta: TestMeta) -> None:
        self._state[meta.test_id] = _WfrState(
            first_seen={a: {} for a in meta.agents}
        )

    def _dependencies(self, meta: TestMeta, state: _WfrState,
                      write: WriteOp) -> frozenset[str]:
        """Mirror of ``trace.dependencies_of`` at write-arrival time.

        Valid because canonical order restricted to the author equals
        its session order: every read of the author that completed
        before this write's invocation has already arrived.
        """
        if meta.wfr_triggers:
            return meta.wfr_triggers.get(write.message_id, frozenset())
        seen = state.first_seen[write.agent]
        observed = {
            mid for mid, first in seen.items()
            if first <= write.invoke_local
        }
        observed.discard(write.message_id)
        return frozenset(observed)

    def observe(self, meta: TestMeta,
                sop: StreamOp) -> list[AnomalyObservation]:
        state = self._state[meta.test_id]
        op = sop.op
        fired: list[AnomalyObservation] = []
        if isinstance(op, WriteOp):
            deps = self._dependencies(meta, state, op)
            state.deps[op.message_id] = deps
            # Resolve reads that observed this write before its own
            # log entry arrived.
            still_pending: list[_PendingWfr] = []
            for entry in state.pending:
                if entry.message_id != op.message_id:
                    still_pending.append(entry)
                    continue
                missing = deps - entry.visible
                if missing:
                    obs = AnomalyObservation(
                        anomaly=self.anomaly,
                        agent=entry.agent,
                        time=entry.time,
                        details={
                            "write": entry.message_id,
                            "missing_dependencies":
                                tuple(sorted(missing)),
                            "observed": entry.observed,
                        },
                    )
                    state.emitted.append(
                        ((entry.read_seq, entry.position), obs)
                    )
                    fired.append(obs)
            state.pending = still_pending
            return fired
        assert isinstance(op, ReadOp)
        visible = frozenset(op.observed)
        for position, message_id in enumerate(op.observed):
            deps = state.deps.get(message_id)
            if deps is None:
                # The write itself is still in flight; its dependency
                # set is unknowable until it is logged.
                state.pending.append(_PendingWfr(
                    read_seq=sop.read_seq,
                    position=position,
                    message_id=message_id,
                    visible=visible,
                    observed=op.observed,
                    agent=op.agent,
                    time=sop.time,
                ))
                continue
            if not deps:
                continue
            missing = deps - visible
            if missing:
                obs = AnomalyObservation(
                    anomaly=self.anomaly,
                    agent=op.agent,
                    time=sop.time,
                    details={
                        "write": message_id,
                        "missing_dependencies":
                            tuple(sorted(missing)),
                        "observed": op.observed,
                    },
                )
                state.emitted.append(
                    ((sop.read_seq, position), obs)
                )
                fired.append(obs)
        first_seen = state.first_seen[op.agent]
        for message_id in op.observed:
            first_seen.setdefault(message_id, op.response_local)
        return fired

    def close_test(self, meta: TestMeta) -> list[AnomalyObservation]:
        # Unresolved pending entries mean the observed write was never
        # logged in this test (e.g. a write whose response was lost);
        # the batch checker has no dependency entry for such ids and
        # skips them — so do we.
        state = self._state.pop(meta.test_id)
        return [obs for _, obs in sorted(state.emitted,
                                         key=lambda e: e[0])]

    def state_size(self) -> int:
        total = 0
        for state in self._state.values():
            total += len(state.deps) + len(state.pending)
            total += len(state.emitted)
            total += sum(len(seen)
                         for seen in state.first_seen.values())
        return total
