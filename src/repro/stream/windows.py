"""Online divergence-window computation (§III.2 / §IV, live).

:func:`repro.core.windows.divergence_windows` replays a finished trace:
it merges both agents' view step functions, then evaluates the
divergence predicate at every change point.  This module re-expresses
that computation as interval **open/close events** over the live
stream: each read is a step of its agent's view function, and because
canonical stream order delivers reads in ascending corrected response
time, the change points arrive already sorted.

The one wrinkle is ties.  The batch code evaluates the predicate once
per *distinct* change point, after advancing both timelines past every
read at that instant.  The streaming tracker therefore commits lazily:
reads at the same corrected time only overwrite the pending views, and
the predicate runs when the first strictly-later read (or the end of
test) proves the instant complete.  Each commit that flips the
predicate emits a :class:`WindowEvent` — the live "pair X diverged at
t" / "pair X reconverged at t" telemetry feed — and the closed
intervals accumulate into exactly the batch
:class:`~repro.core.windows.WindowResult`, unconverged final interval
and all.

State per open test: one (view, pending time, window start) triple per
agent pair — O(pairs), independent of trace length.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.core.anomalies.content_divergence import (
    views_content_diverged,
)
from repro.core.anomalies.order_divergence import views_order_diverged
from repro.core.trace import ReadOp
from repro.core.windows import WindowResult
from repro.obs.events import WindowEvent
from repro.stream.base import StreamOp, TestMeta

__all__ = [
    #: Canonical home is :mod:`repro.obs.events`; re-exported here as
    #: a backward-compat alias.
    "WindowEvent",
    "StreamingWindowTracker",
    "streaming_content_windows",
    "streaming_order_windows",
]

ViewPredicate = Callable[[tuple[str, ...], tuple[str, ...]], bool]


@dataclass
class _PairWindows:
    """Window state for one agent pair in one test."""

    pair: tuple[str, str]
    views: dict[str, tuple[str, ...]]
    #: Latest corrected read time seen, not yet evaluated.
    pending: float | None = None
    window_start: float | None = None
    intervals: list[tuple[float, float]] = field(default_factory=list)

    def commit(self, predicate: ViewPredicate) -> WindowEvent | None:
        """Evaluate the predicate at the pending change point."""
        if self.pending is None:
            return None
        time = self.pending
        left, right = self.pair
        diverged = predicate(self.views[left], self.views[right])
        if diverged and self.window_start is None:
            self.window_start = time
            return WindowEvent(kind="", action="opened",
                               pair=self.pair, time=time)
        if not diverged and self.window_start is not None:
            start = self.window_start
            self.intervals.append((start, time))
            self.window_start = None
            return WindowEvent(kind="", action="closed",
                               pair=self.pair, time=time,
                               start=start)
        return None


class StreamingWindowTracker:
    """Track divergence windows for every agent pair of open tests.

    Same per-test lifecycle as a :class:`StreamingChecker`, but the
    product is different: ``observe`` returns live
    :class:`WindowEvent` transitions and ``close_test`` returns the
    per-pair :class:`WindowResult` dict in the exact shape (and
    insertion order) ``analyze_trace`` builds.
    """

    def __init__(self, kind: str, predicate: ViewPredicate) -> None:
        self.kind = kind
        self.predicate = predicate
        self._pairs: dict[str, list[_PairWindows]] = {}

    def open_test(self, meta: TestMeta) -> None:
        self._pairs[meta.test_id] = [
            _PairWindows(
                pair=tuple(sorted((first, second))),
                views={first: (), second: ()},
            )
            for first, second in meta.agent_pairs()
        ]

    def observe(self, meta: TestMeta,
                sop: StreamOp) -> list[WindowEvent]:
        op = sop.op
        if not isinstance(op, ReadOp):
            return []
        events: list[WindowEvent] = []
        for state in self._pairs[meta.test_id]:
            if op.agent not in state.views:
                continue
            if state.pending is not None and sop.time > state.pending:
                event = state.commit(self.predicate)
                if event is not None:
                    events.append(self._stamp(event))
            state.views[op.agent] = op.observed
            state.pending = sop.time
        return events

    def close_test(
        self, meta: TestMeta
    ) -> tuple[dict[tuple[str, str], WindowResult],
               list[WindowEvent]]:
        """Final windows per pair, plus any last transitions."""
        events: list[WindowEvent] = []
        windows: dict[tuple[str, str], WindowResult] = {}
        for state in self._pairs.pop(meta.test_id):
            event = state.commit(self.predicate)
            if event is not None:
                events.append(self._stamp(event))
            converged = state.window_start is None
            if state.window_start is not None:
                # Still divergent at the last observation — close the
                # interval there and flag the pair (batch semantics).
                assert state.pending is not None
                state.intervals.append(
                    (state.window_start, state.pending)
                )
            windows[state.pair] = WindowResult(
                pair=state.pair,
                intervals=tuple(state.intervals),
                converged=converged,
            )
        return windows, events

    def _stamp(self, event: WindowEvent) -> WindowEvent:
        return WindowEvent(kind=self.kind, action=event.action,
                           pair=event.pair, time=event.time,
                           start=event.start)

    def state_size(self) -> int:
        return sum(
            len(states) + sum(len(s.intervals) for s in states)
            for states in self._pairs.values()
        )


def streaming_content_windows() -> StreamingWindowTracker:
    return StreamingWindowTracker("content", views_content_diverged)


def streaming_order_windows() -> StreamingWindowTracker:
    return StreamingWindowTracker("order", views_order_diverged)
