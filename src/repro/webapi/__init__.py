"""Black-box web-API façade for the simulated services.

The measurement methodology is black-box: agents interact with services
only through API requests, exactly as the paper's agents used the
Blogger, Google+ and Facebook Graph APIs.  This subpackage provides the
request/response types (:mod:`repro.webapi.http`), bearer-token
accounts (:mod:`repro.webapi.auth`), server-side sliding-window rate
limiting (:mod:`repro.webapi.ratelimit`), the endpoint pipeline that
ties them together over the simulated network
(:mod:`repro.webapi.endpoint`), and the client agents call
(:mod:`repro.webapi.client`).
"""

from repro.webapi.auth import Account, AccountRegistry
from repro.webapi.client import ApiClient
from repro.webapi.endpoint import EndpointStats, ServiceEndpoint
from repro.webapi.http import ApiRequest, ApiResponse, error_response, ok
from repro.webapi.pagination import DEFAULT_PAGE_SIZE, Page, paginate
from repro.webapi.ratelimit import RateLimit, SlidingWindowRateLimiter
from repro.webapi.router import Resource, RouteMatch, Router, RouteSpec

__all__ = [
    "Router",
    "RouteSpec",
    "RouteMatch",
    "Resource",
    "Page",
    "paginate",
    "DEFAULT_PAGE_SIZE",
    "ApiRequest",
    "ApiResponse",
    "ok",
    "error_response",
    "Account",
    "AccountRegistry",
    "ApiClient",
    "ServiceEndpoint",
    "EndpointStats",
    "RateLimit",
    "SlidingWindowRateLimiter",
]
