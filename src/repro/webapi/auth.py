"""Test-user accounts and bearer tokens.

The paper used Facebook *test users* — "accounts that are invisible to
real user accounts" — and, for Google+, a single account shared by all
agents (§V).  :class:`AccountRegistry` models both styles: issue one
account per agent, or one shared account whose token every agent uses.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.errors import AuthenticationError

__all__ = ["Account", "AccountRegistry"]


@dataclass(frozen=True)
class Account:
    """A service account with a bearer token."""

    user_id: str
    token: str
    #: Test users are invisible to real accounts (Facebook's notion).
    is_test_user: bool = True


class AccountRegistry:
    """Issues accounts and validates tokens for one service."""

    def __init__(self, service_name: str) -> None:
        self._service_name = service_name
        self._by_token: dict[str, Account] = {}

    def create_account(self, user_id: str,
                       is_test_user: bool = True) -> Account:
        """Create (or return the existing) account for ``user_id``."""
        for account in self._by_token.values():
            if account.user_id == user_id:
                return account
        token = self._mint_token(user_id)
        account = Account(user_id=user_id, token=token,
                          is_test_user=is_test_user)
        self._by_token[token] = account
        return account

    def _mint_token(self, user_id: str) -> str:
        digest = hashlib.blake2b(
            f"{self._service_name}:{user_id}".encode("utf-8"),
            digest_size=12,
        ).hexdigest()
        return f"tok_{digest}"

    def authenticate(self, token: str | None) -> Account:
        """Resolve a bearer token, raising 401 on failure."""
        if token is None:
            raise AuthenticationError("missing bearer token")
        account = self._by_token.get(token)
        if account is None:
            raise AuthenticationError("invalid bearer token")
        return account

    def accounts(self) -> list[Account]:
        return sorted(self._by_token.values(),
                      key=lambda account: account.user_id)
