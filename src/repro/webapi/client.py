"""The API client agents use to talk to a service endpoint.

A thin wrapper over :meth:`repro.net.network.Network.rpc` that speaks
:class:`~repro.webapi.http.ApiRequest` / ``ApiResponse``, carries the
bearer token, and counts requests — the counts feed the campaign totals
the paper reports (total reads/writes per service, §V).

Accounting contract: ``requests_sent`` (and the
``api.requests_total`` counter) increments exactly once per **wire
request** — a 429-retried operation counts once per attempt, never
once per operation and never twice per attempt.  The agent's span
layer records the same attempts on its operation spans, so campaign
totals derived from counters and from spans must agree (asserted by
the retry-accounting regression test).
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.net.network import DEFAULT_RPC_TIMEOUT, Network
from repro.sim.future import Future
from repro.webapi.http import ApiRequest, ApiResponse

__all__ = ["ApiClient"]


class ApiClient:
    """A client bound to (agent host, service host, bearer token)."""

    def __init__(self, network: Network, client_host: str,
                 service_host: str, token: str,
                 timeout: float = DEFAULT_RPC_TIMEOUT,
                 service: str = "") -> None:
        self._network = network
        self.client_host = client_host
        self.service_host = service_host
        self.service = service
        self._token = token
        self._timeout = timeout
        self.requests_sent = 0
        self._obs = network.obs
        self._request_counters: dict[str, Any] = {}
        self._latency = None
        if self._obs is not None:
            labels = {"service": service or "unknown",
                      "host": service_host}
            self._labels = labels
            self._request_counters = {
                method: self._obs.metrics.counter(
                    "api.requests_total", method=method, **labels
                )
                for method in ("GET", "POST")
            }
            self._latency = self._obs.metrics.histogram(
                "api.request_seconds", **labels
            )

    def get(self, path: str,
            params: Mapping[str, Any] | None = None) -> Future:
        """Issue a GET; resolves to an :class:`ApiResponse`."""
        return self._request("GET", path, params)

    def post(self, path: str,
             params: Mapping[str, Any] | None = None) -> Future:
        """Issue a POST; resolves to an :class:`ApiResponse`."""
        return self._request("POST", path, params)

    def _request(self, method: str, path: str,
                 params: Mapping[str, Any] | None) -> Future:
        self.requests_sent += 1
        request = ApiRequest(
            method=method, path=path, params=dict(params or {}),
            token=self._token,
        )
        reply = self._network.rpc(
            self.client_host, self.service_host, request,
            timeout=self._timeout,
        )
        if self._obs is not None:
            self._count_request(method, reply)
        return reply

    def _count_request(self, method: str, reply: Future) -> None:
        counter = self._request_counters.get(method)
        if counter is None:
            counter = self._obs.metrics.counter(
                "api.requests_total", method=method, **self._labels
            )
            self._request_counters[method] = counter
        counter.inc()
        started = self._obs.now()

        def on_done(future: Future) -> None:
            finished = self._obs.now()
            self._latency.observe(finished - started, at=finished)
            if future.failed:
                status = "unreachable"
            else:
                response = future.value
                status = (str(response.status)
                          if isinstance(response, ApiResponse)
                          else "invalid")
            self._obs.metrics.counter(
                "api.responses_total", status=status, **self._labels
            ).inc(at=finished)

        reply.add_callback(on_done)
