"""The API client agents use to talk to a service endpoint.

A thin wrapper over :meth:`repro.net.network.Network.rpc` that speaks
:class:`~repro.webapi.http.ApiRequest` / ``ApiResponse``, carries the
bearer token, and counts requests — the counts feed the campaign totals
the paper reports (total reads/writes per service, §V).
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.net.network import DEFAULT_RPC_TIMEOUT, Network
from repro.sim.future import Future
from repro.webapi.http import ApiRequest

__all__ = ["ApiClient"]


class ApiClient:
    """A client bound to (agent host, service host, bearer token)."""

    def __init__(self, network: Network, client_host: str,
                 service_host: str, token: str,
                 timeout: float = DEFAULT_RPC_TIMEOUT) -> None:
        self._network = network
        self.client_host = client_host
        self.service_host = service_host
        self._token = token
        self._timeout = timeout
        self.requests_sent = 0

    def get(self, path: str,
            params: Mapping[str, Any] | None = None) -> Future:
        """Issue a GET; resolves to an :class:`ApiResponse`."""
        return self._request("GET", path, params)

    def post(self, path: str,
             params: Mapping[str, Any] | None = None) -> Future:
        """Issue a POST; resolves to an :class:`ApiResponse`."""
        return self._request("POST", path, params)

    def _request(self, method: str, path: str,
                 params: Mapping[str, Any] | None) -> Future:
        self.requests_sent += 1
        request = ApiRequest(
            method=method, path=path, params=dict(params or {}),
            token=self._token,
        )
        return self._network.rpc(
            self.client_host, self.service_host, request,
            timeout=self._timeout,
        )
