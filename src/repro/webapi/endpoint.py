"""Service endpoints: routing, auth, rate limiting, processing delay.

A :class:`ServiceEndpoint` is one API host of a service.  It attaches
itself to the simulated network as an RPC handler and, for every
incoming :class:`~repro.webapi.http.ApiRequest`:

1. authenticates the bearer token,
2. applies the per-token rate limit,
3. resolves the route on its :class:`~repro.webapi.router.Router` and
   dispatches the handler after a sampled *processing delay*
   (server-side work: persistence, replication waits, ranking), and
4. maps :class:`~repro.errors.ServiceError` to its HTTP representation
   instead of letting it crash the exchange.

Routes are declared on a :class:`~repro.webapi.router.Router` passed at
construction (the declarative surface every service and the campaign
service share).  The historical imperative ``endpoint.route(...)``
call survives as a :class:`DeprecationWarning` shim that registers on
the same router, so older service code keeps working — and keeps its
:class:`EndpointStats` accounting and golden signatures unchanged,
because parameter-free routes resolve through the exact same
``(method, path)`` dict lookup as before.

Route handlers receive ``(request, account)`` and return either a body
mapping (wrapped into 200) or a :class:`~repro.sim.future.Future` of
one, for operations that finish later (e.g. a strongly-consistent write
waiting for backup acks).  For parameterized routes the bound path
parameters are merged into the request's params (path wins on
collision), so handlers read them with ``request.param("hunt_id")``.
"""

from __future__ import annotations

import warnings
from dataclasses import replace
from typing import Any, Callable, Mapping

from repro.errors import InvalidRequestError, ServiceError
from repro.net.network import Network
from repro.sim.event_loop import Simulator
from repro.sim.future import Future
from repro.sim.random_source import RandomSource
from repro.webapi.auth import Account, AccountRegistry
from repro.webapi.http import ApiRequest, ApiResponse, error_response, ok
from repro.webapi.ratelimit import SlidingWindowRateLimiter
from repro.webapi.router import Router

__all__ = ["ServiceEndpoint", "EndpointStats"]

#: Route handlers return a body mapping or a Future resolving to one.
RouteHandler = Callable[[ApiRequest, Account], "Mapping[str, Any] | Future"]


class EndpointStats:
    """Served-traffic counters for one endpoint host.

    Real API operators watch exactly these: request volume per route
    and the status-class mix (2xx/4xx/5xx), with 429s broken out since
    rate limiting shaped the paper's entire test cadence.
    """

    def __init__(self) -> None:
        self.requests_total = 0
        #: (method, path) -> request count.
        self.requests_by_route: dict[tuple[str, str], int] = {}
        #: HTTP status -> response count.
        self.responses_by_status: dict[int, int] = {}

    @property
    def rate_limited(self) -> int:
        return self.responses_by_status.get(429, 0)

    def success_fraction(self) -> float:
        total = sum(self.responses_by_status.values())
        if total == 0:
            return 1.0
        ok = sum(count for status, count
                 in self.responses_by_status.items()
                 if 200 <= status < 300)
        return ok / total

    def _record_request(self, method: str, path: str) -> None:
        self.requests_total += 1
        key = (method, path)
        self.requests_by_route[key] = (
            self.requests_by_route.get(key, 0) + 1
        )

    def _record_response(self, status: int) -> None:
        self.responses_by_status[status] = (
            self.responses_by_status.get(status, 0) + 1
        )


class ServiceEndpoint:
    """One API host of a simulated service."""

    def __init__(self, sim: Simulator, network: Network, host: str,
                 accounts: AccountRegistry,
                 rate_limiter: SlidingWindowRateLimiter | None = None,
                 rng: RandomSource | None = None,
                 processing_delay_median: float = 0.05,
                 processing_delay_sigma: float = 0.3,
                 router: Router | None = None) -> None:
        self._sim = sim
        self._network = network
        self.host = host
        self._accounts = accounts
        self._rate_limiter = rate_limiter
        self._rng = rng
        self._processing_delay_median = processing_delay_median
        self._processing_delay_sigma = processing_delay_sigma
        self._router = router if router is not None else Router()
        #: Served-traffic counters (requests, status mix, 429s).
        self.stats = EndpointStats()
        network.attach(host, rpc_handler=self._handle_rpc)

    @property
    def router(self) -> Router:
        """The route table this endpoint dispatches on."""
        return self._router

    def route(self, method: str, path: str, handler: RouteHandler,
              processing_delay_median: float | None = None,
              processing_delay_sigma: float | None = None) -> None:
        """Deprecated: register a handler for ``METHOD path``.

        Imperative registration predates the declarative router;
        declare routes on a :class:`~repro.webapi.router.Router` and
        pass it to ``ServiceEndpoint(router=...)`` instead.  The shim
        registers on the same router, so behaviour (and stats
        accounting) is identical.
        """
        warnings.warn(
            "ServiceEndpoint.route() is deprecated; declare routes on "
            "a repro.webapi.Router and pass it to "
            "ServiceEndpoint(router=...)",
            DeprecationWarning, stacklevel=2,
        )
        self._router.add(
            method, path, handler,
            processing_delay_median=processing_delay_median,
            processing_delay_sigma=processing_delay_sigma,
        )

    # -- Request pipeline --------------------------------------------------

    def _handle_rpc(self, payload: Any, src: str) -> Any:
        if not isinstance(payload, ApiRequest):
            response = ApiResponse(
                status=400, body={"error": "expected an ApiRequest"}
            )
            self.stats._record_response(response.status)
            return response
        self.stats._record_request(payload.method, payload.path)
        try:
            result = self._process(payload)
        except ServiceError as exc:
            result = error_response(exc)
        return self._count_response(result)

    def _count_response(self, result: "ApiResponse | Future"):
        """Record the final status, whether immediate or deferred."""
        if isinstance(result, Future):
            result.add_callback(
                lambda f: self.stats._record_response(
                    f.value.status if not f.failed
                    and isinstance(f.value, ApiResponse) else 500
                )
            )
        elif isinstance(result, ApiResponse):
            self.stats._record_response(result.status)
        return result

    def _process(self, request: ApiRequest) -> "ApiResponse | Future":
        account = self._accounts.authenticate(request.token)
        if self._rate_limiter is not None:
            self._rate_limiter.check(account.token)
        match = self._router.resolve(request.method, request.path)
        if match is None:
            raise InvalidRequestError(
                f"no route for {request.method} {request.path}"
            )
        spec = match.route
        handler = spec.handler
        delay_median = (spec.processing_delay_median
                        if spec.processing_delay_median is not None
                        else self._processing_delay_median)
        delay_sigma = (spec.processing_delay_sigma
                       if spec.processing_delay_sigma is not None
                       else self._processing_delay_sigma)
        if match.path_params:
            # Path parameters join the query/body params (path wins),
            # so handlers read them uniformly via request.param().
            request = replace(request, params={
                **request.params, **match.path_params,
            })
        delay = self._sample_processing_delay(request.path, delay_median,
                                              delay_sigma)
        if delay <= 0.0:
            return self._invoke(handler, request, account)
        deferred: Future = Future(name=f"{request.method} {request.path}")
        self._sim.schedule_after(
            delay, self._run_deferred, deferred, handler, request, account
        )
        return deferred

    def _run_deferred(self, deferred: Future, handler: RouteHandler,
                      request: ApiRequest, account: Account) -> None:
        try:
            result = self._invoke(handler, request, account)
        except ServiceError as exc:
            deferred.resolve(error_response(exc))
            return
        if isinstance(result, Future):
            result.add_callback(
                lambda inner: deferred.resolve(
                    error_response(inner.exception)
                    if inner.failed and
                    isinstance(inner.exception, ServiceError)
                    else inner.value if not inner.failed
                    else ApiResponse(status=500,
                                     body={"error": str(inner.exception)})
                )
            )
        else:
            deferred.resolve(result)

    def _invoke(self, handler: RouteHandler, request: ApiRequest,
                account: Account) -> "ApiResponse | Future":
        result = handler(request, account)
        if isinstance(result, Future):
            wrapped: Future = Future(name="wrapped-handler")
            result.add_callback(
                lambda inner: wrapped.resolve(
                    error_response(inner.exception)
                    if inner.failed and
                    isinstance(inner.exception, ServiceError)
                    else ok(inner.value) if not inner.failed
                    else ApiResponse(status=500,
                                     body={"error": str(inner.exception)})
                )
            )
            return wrapped
        return ok(result)

    def _sample_processing_delay(self, path: str, median: float,
                                 sigma: float) -> float:
        if self._rng is None or median <= 0:
            return median
        return self._rng.lognormal(
            f"processing.{self.host}.{path}", median=median, sigma=sigma
        )
