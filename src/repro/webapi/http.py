"""Minimal HTTP-like request/response types for the service façades.

The paper probes services strictly through their public web APIs, so
our simulated services expose the same shape: requests with a method,
path, query/body parameters, and a bearer token; responses with a
status code and a JSON-like body.  Keeping this layer explicit (rather
than calling replica methods directly) preserves the black-box property
of the methodology — agents see only what a real API client would.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.errors import ServiceError

__all__ = ["ApiRequest", "ApiResponse", "ok", "error_response"]


@dataclass(frozen=True)
class ApiRequest:
    """One API call as it travels over the simulated network."""

    method: str
    path: str
    params: Mapping[str, Any] = field(default_factory=dict)
    token: str | None = None

    def __post_init__(self) -> None:
        if self.method not in ("GET", "POST", "DELETE"):
            raise ServiceError(f"unsupported method {self.method!r}")

    def param(self, name: str, default: Any = None) -> Any:
        return self.params.get(name, default)

    def require_param(self, name: str) -> Any:
        try:
            return self.params[name]
        except KeyError:
            raise _missing_param(name) from None


def _missing_param(name: str) -> ServiceError:
    from repro.errors import InvalidRequestError

    return InvalidRequestError(f"missing required parameter {name!r}")


@dataclass(frozen=True)
class ApiResponse:
    """A status code plus JSON-like body."""

    status: int
    body: Mapping[str, Any] = field(default_factory=dict)

    @property
    def is_success(self) -> bool:
        return 200 <= self.status < 300

    def raise_for_status(self) -> "ApiResponse":
        """Raise the matching :class:`ServiceError` on non-2xx."""
        if self.is_success:
            return self
        from repro.errors import (
            AuthenticationError,
            InvalidRequestError,
            NotFoundError,
            RateLimitExceededError,
        )

        message = str(self.body.get("error", f"HTTP {self.status}"))
        if self.status == 401:
            raise AuthenticationError(message)
        if self.status == 404:
            raise NotFoundError(message)
        if self.status == 429:
            raise RateLimitExceededError(
                message, retry_after=self.body.get("retry_after")
            )
        if self.status == 400:
            raise InvalidRequestError(message)
        raise ServiceError(message)


def ok(body: Mapping[str, Any] | None = None) -> ApiResponse:
    """A 200 response."""
    return ApiResponse(status=200, body=body or {})


def error_response(exc: ServiceError) -> ApiResponse:
    """Convert a :class:`ServiceError` into its HTTP representation."""
    body: dict[str, Any] = {"error": str(exc)}
    retry_after = getattr(exc, "retry_after", None)
    if retry_after is not None:
        body["retry_after"] = retry_after
    return ApiResponse(status=exc.status_code, body=body)
