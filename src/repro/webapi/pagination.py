"""Cursor pagination for list endpoints.

Real feed/blog APIs never return the full history: they return the
newest N items plus an opaque cursor for the next page.  The simulated
services do the same, which keeps response sizes realistic as a
campaign's history accumulates and lets tests exercise the multi-page
path explicitly.

Cursors are item-anchored ("everything after item X"), the robust
choice under concurrent inserts: a new item appearing at the head
never shifts the window an in-flight cursor points at.  A cursor whose
anchor has disappeared (e.g. pruned by retention) restarts from the
head, which mirrors how production APIs degrade.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.errors import InvalidRequestError

__all__ = ["Page", "paginate", "DEFAULT_PAGE_SIZE"]

#: Default page size for service list endpoints.
DEFAULT_PAGE_SIZE = 25


@dataclass(frozen=True)
class Page:
    """One page of results plus the cursor for the next page."""

    items: tuple[str, ...]
    #: Cursor to pass for the following page; None when exhausted.
    next_cursor: str | None

    @property
    def is_last(self) -> bool:
        return self.next_cursor is None


def paginate(items: Sequence[str], cursor: str | None = None,
             limit: int = DEFAULT_PAGE_SIZE) -> Page:
    """Slice one page out of ``items`` (already in response order).

    Parameters
    ----------
    items:
        The full result sequence, newest first.
    cursor:
        None for the first page, else a value previously returned in
        :attr:`Page.next_cursor` (the id of the last item served).
    limit:
        Maximum items per page; must be positive.
    """
    if limit < 1:
        raise InvalidRequestError(f"limit must be >= 1, got {limit}")
    start = 0
    if cursor is not None:
        try:
            start = items.index(cursor) + 1
        except ValueError:
            start = 0  # anchor gone (pruned): restart from the head
    window = tuple(items[start:start + limit])
    exhausted = start + limit >= len(items)
    next_cursor = None
    if window and not exhausted:
        next_cursor = window[-1]
    return Page(items=window, next_cursor=next_cursor)
