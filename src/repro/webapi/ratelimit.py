"""Server-side request rate limiting.

Every service the paper measured imposes API rate limits, and those
limits shaped the methodology: the 300 ms read period, Test 2's switch
to a 1 s period after the initial burst, and the forced cool-down
between successive tests all exist "due to rate limits" (§V).  The
simulated services therefore enforce limits server-side with a classic
sliding window per token, returning HTTP 429 with a ``retry_after``
hint when exceeded — and the agent configurations in
:mod:`repro.methodology.config` are chosen to stay just inside them,
exactly as the paper's were.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable

from repro.errors import ConfigurationError, RateLimitExceededError

__all__ = ["RateLimit", "SlidingWindowRateLimiter"]


@dataclass(frozen=True)
class RateLimit:
    """Allow at most ``max_requests`` per ``window`` seconds per token."""

    max_requests: int
    window: float

    def __post_init__(self) -> None:
        if self.max_requests < 1:
            raise ConfigurationError("max_requests must be >= 1")
        if self.window <= 0:
            raise ConfigurationError("window must be positive")


class SlidingWindowRateLimiter:
    """Tracks request timestamps per token and enforces a RateLimit."""

    def __init__(self, limit: RateLimit,
                 now_fn: Callable[[], float]) -> None:
        self._limit = limit
        self._now_fn = now_fn
        self._history: dict[str, deque[float]] = {}

    @property
    def limit(self) -> RateLimit:
        return self._limit

    def check(self, token: str) -> None:
        """Record one request; raise 429 if the token is over limit."""
        now = self._now_fn()
        history = self._history.setdefault(token, deque())
        cutoff = now - self._limit.window
        while history and history[0] <= cutoff:
            history.popleft()
        if len(history) >= self._limit.max_requests:
            retry_after = history[0] + self._limit.window - now
            raise RateLimitExceededError(
                f"rate limit of {self._limit.max_requests} requests per "
                f"{self._limit.window:g}s exceeded",
                retry_after=max(retry_after, 0.0),
            )
        history.append(now)

    def remaining(self, token: str) -> int:
        """Requests the token may still issue in the current window."""
        now = self._now_fn()
        history = self._history.get(token, deque())
        cutoff = now - self._limit.window
        live = sum(1 for t in history if t > cutoff)
        return max(self._limit.max_requests - live, 0)
