"""Declarative request routing shared by every API surface.

Historically each :class:`~repro.webapi.endpoint.ServiceEndpoint`
carried its own ad-hoc ``(method, path) -> handler`` dict, populated
imperatively with ``endpoint.route(...)`` calls.  That was fine for
five services with two static paths each, but the campaign service
(:mod:`repro.serve`) needs versioned paths, path parameters
(``/v1/hunts/{hunt_id}``), and resources that register several related
routes at once — and it must share the auth/rate-limit/pagination
pipeline with the simulated services rather than grow a second stack.

This module is the shared routing layer:

* :class:`RouteSpec` — one declarative route: method, path pattern,
  handler, and optional per-route processing-delay overrides (writes
  cost more server-side work than reads).
* :class:`Router` — an ordered, conflict-checked route table with
  exact-match and ``{param}`` segment patterns, an optional version
  prefix, sub-router mounting, and resource registration.
* :class:`RouteMatch` — a resolved route plus its extracted path
  parameters.

Resolution is deterministic: exact (parameter-free) patterns are a
dict lookup — byte-for-byte the historical dispatch, which is what
keeps the five services' golden signatures unchanged — and
parameterized patterns are tried most-literal-first, then in
registration order.  Registering two patterns that can never be told
apart raises :class:`~repro.errors.ConfigurationError` at construction
time, not at request time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Mapping, Protocol, runtime_checkable

from repro.errors import ConfigurationError

__all__ = [
    "RouteSpec",
    "RouteMatch",
    "Router",
    "Resource",
    "split_path",
]

#: A route handler: ``(request, account) -> body mapping | Future``.
#: Typed loosely here to avoid an import cycle with the endpoint
#: pipeline; :mod:`repro.webapi.endpoint` narrows it.
Handler = Callable[..., Any]


def split_path(path: str) -> tuple[str, ...]:
    """Split an API path into its non-empty segments."""
    return tuple(part for part in path.split("/") if part)


def _is_param(segment: str) -> bool:
    return segment.startswith("{") and segment.endswith("}")


@dataclass(frozen=True)
class RouteSpec:
    """One declarative route of an API surface.

    ``pattern`` is an absolute path whose ``{name}`` segments match any
    single concrete segment and bind it as a path parameter.  The
    optional processing-delay overrides mirror the historical
    ``endpoint.route(...)`` keywords: they replace the endpoint's
    defaults when this route is dispatched.
    """

    method: str
    pattern: str
    handler: Handler
    #: Optional stable name (defaults to ``METHOD pattern``).
    name: str = ""
    processing_delay_median: float | None = None
    processing_delay_sigma: float | None = None

    def __post_init__(self) -> None:
        if self.method not in ("GET", "POST", "DELETE"):
            raise ConfigurationError(
                f"unsupported route method {self.method!r}"
            )
        if not self.pattern.startswith("/"):
            raise ConfigurationError(
                f"route pattern must be absolute: {self.pattern!r}"
            )
        if not self.name:
            object.__setattr__(
                self, "name", f"{self.method} {self.pattern}"
            )

    @property
    def segments(self) -> tuple[str, ...]:
        return split_path(self.pattern)

    @property
    def has_params(self) -> bool:
        return any(_is_param(part) for part in self.segments)

    def param_names(self) -> tuple[str, ...]:
        return tuple(part[1:-1] for part in self.segments
                     if _is_param(part))

    def match(self, path_segments: tuple[str, ...]) -> dict | None:
        """Path parameters if ``path_segments`` matches, else None."""
        pattern = self.segments
        if len(pattern) != len(path_segments):
            return None
        params: dict[str, str] = {}
        for expected, actual in zip(pattern, path_segments):
            if _is_param(expected):
                params[expected[1:-1]] = actual
            elif expected != actual:
                return None
        return params

    def _shape(self) -> tuple:
        """Conflict key: two routes of one shape are indistinguishable."""
        return (self.method, tuple(
            "{}" if _is_param(part) else part for part in self.segments
        ))


@dataclass(frozen=True)
class RouteMatch:
    """A resolved route plus the path parameters it bound."""

    route: RouteSpec
    path_params: Mapping[str, str] = field(default_factory=dict)


@runtime_checkable
class Resource(Protocol):
    """Anything that contributes a group of routes to a router.

    A resource is the declarative unit of API registration: the hunt
    API registers one resource per noun (hunts, results, events,
    artifacts) instead of scattering ``add`` calls.
    """

    def routes(self) -> Iterable[RouteSpec]: ...


class Router:
    """An ordered, conflict-checked table of :class:`RouteSpec`.

    Parameters
    ----------
    prefix:
        Optional path prefix (e.g. ``"/v1"``) prepended to every
        registered pattern — the versioned-path mechanism.  Mounting a
        router into another via :meth:`include` composes prefixes.
    """

    def __init__(self, prefix: str = "") -> None:
        if prefix and not prefix.startswith("/"):
            raise ConfigurationError(
                f"router prefix must be absolute: {prefix!r}"
            )
        self.prefix = prefix.rstrip("/")
        #: (method, path) -> spec for parameter-free routes: the exact
        #: dict dispatch the endpoint pipeline always had.
        self._exact: dict[tuple[str, str], RouteSpec] = {}
        #: Parameterized routes, in registration order.
        self._dynamic: list[RouteSpec] = []
        self._shapes: set[tuple] = set()
        self._by_name: dict[str, RouteSpec] = {}

    # -- Registration ---------------------------------------------------

    def add(self, method: str, pattern: str, handler: Handler, *,
            name: str = "",
            processing_delay_median: float | None = None,
            processing_delay_sigma: float | None = None) -> RouteSpec:
        """Register one route; returns the (prefixed) spec."""
        return self.add_route(RouteSpec(
            method=method, pattern=pattern, handler=handler, name=name,
            processing_delay_median=processing_delay_median,
            processing_delay_sigma=processing_delay_sigma,
        ))

    def add_route(self, spec: RouteSpec) -> RouteSpec:
        """Register an already-built spec (prefix applied here)."""
        if self.prefix:
            spec = RouteSpec(
                method=spec.method,
                pattern=self.prefix + spec.pattern,
                handler=spec.handler,
                name=spec.name,
                processing_delay_median=spec.processing_delay_median,
                processing_delay_sigma=spec.processing_delay_sigma,
            )
        shape = spec._shape()
        if shape in self._shapes:
            raise ConfigurationError(
                f"route {spec.method} {spec.pattern!r} conflicts with "
                "an already registered route of the same shape"
            )
        if spec.name in self._by_name:
            raise ConfigurationError(
                f"duplicate route name {spec.name!r}"
            )
        self._shapes.add(shape)
        self._by_name[spec.name] = spec
        if spec.has_params:
            self._dynamic.append(spec)
            # Most-literal-first, then registration order (sort is
            # stable), so /hunts/all beats /hunts/{hunt_id} regardless
            # of registration order.
            self._dynamic.sort(
                key=lambda route: -sum(
                    1 for part in route.segments if not _is_param(part)
                ),
            )
        else:
            self._exact[(spec.method, spec.pattern)] = spec
        return spec

    def add_resource(self, resource: Resource) -> tuple[RouteSpec, ...]:
        """Register every route a resource declares."""
        return tuple(self.add_route(spec)
                     for spec in resource.routes())

    def include(self, other: "Router", prefix: str = "") -> None:
        """Mount every route of ``other`` under ``prefix`` (then our
        own prefix, applied by :meth:`add_route`)."""
        if prefix and not prefix.startswith("/"):
            raise ConfigurationError(
                f"mount prefix must be absolute: {prefix!r}"
            )
        mount = prefix.rstrip("/")
        for spec in other.routes():
            self.add_route(RouteSpec(
                method=spec.method,
                pattern=mount + spec.pattern,
                handler=spec.handler,
                name=spec.name,
                processing_delay_median=spec.processing_delay_median,
                processing_delay_sigma=spec.processing_delay_sigma,
            ))

    # -- Introspection --------------------------------------------------

    def routes(self) -> tuple[RouteSpec, ...]:
        """Every registered route, exact first, deterministic order."""
        return tuple(sorted(
            (*self._exact.values(), *self._dynamic),
            key=lambda spec: (spec.pattern, spec.method),
        ))

    def route_named(self, name: str) -> RouteSpec:
        try:
            return self._by_name[name]
        except KeyError:
            raise ConfigurationError(
                f"no route named {name!r}"
            ) from None

    def __len__(self) -> int:
        return len(self._exact) + len(self._dynamic)

    # -- Resolution -----------------------------------------------------

    def resolve(self, method: str, path: str) -> RouteMatch | None:
        """The matching route for a concrete request, or None.

        Exact patterns win outright (dict lookup, the historical
        dispatch); parameterized patterns are tried most-literal-first
        in registration order.
        """
        exact = self._exact.get((method, path))
        if exact is not None:
            return RouteMatch(route=exact)
        if not self._dynamic:
            return None
        segments = split_path(path)
        for spec in self._dynamic:
            if spec.method != method:
                continue
            params = spec.match(segments)
            if params is not None:
                return RouteMatch(route=spec, path_params=params)
        return None
