"""A partitioned simulated world for million-session campaigns.

The paper's subjects serve millions of concurrent sessions; this
package is how the reproduction reaches that scale inside one
scenario.  A world is split into N shards, each owning an
author-sharded slice of sessions and replicas, connected by a
deterministic cross-shard message bus whose lamport-style
``(time, origin, seq)`` total order makes serial and sharded
execution byte-identical — the contract CI enforces through
``tools/world_parity_check.py``.

Layering:

* :mod:`repro.world.spec` — the frozen description of a world
  (scale, placement, workload, propagation, partition nemeses);
* :mod:`repro.world.bus` — the total-ordered message bus; the *only*
  channel between replicas (lint rule DET007 rejects bypasses);
* :mod:`repro.world.buffers` — columnar ``__slots__`` per-cohort op
  buffers, materialized to trace objects only at flush;
* :mod:`repro.world.model` — replicas: feeds, cohort assembly,
  author-sharded rumor relay, state retirement;
* :mod:`repro.world.engine` — the epoch-barrier driver flushing
  retired cohorts through one bounded-memory stream engine.
"""

from repro.world.buffers import CohortBuffer
from repro.world.bus import BusMessage, WorldBus
from repro.world.engine import WorldEngine, WorldResult, run_world
from repro.world.model import WorldReplica
from repro.world.scenario import world_from_scenario
from repro.world.spec import WorldPartition, WorldSpec

__all__ = [
    "world_from_scenario",
    "WorldSpec",
    "WorldPartition",
    "WorldBus",
    "BusMessage",
    "CohortBuffer",
    "WorldReplica",
    "WorldEngine",
    "WorldResult",
    "run_world",
]
