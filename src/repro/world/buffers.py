"""Columnar per-cohort operation buffers.

At 10^5+ concurrent sessions the dominant allocation cost of a world
run would be per-operation trace objects held open for the lifetime of
every session.  Instead each cohort accumulates its operations into a
:class:`CohortBuffer` — parallel ``array``/list columns behind
``__slots__`` — and the frozen :class:`~repro.core.trace.WriteOp` /
:class:`~repro.core.trace.ReadOp` objects are materialized only at the
moment the cohort retires and its trace is flushed through the stream
engine.  The buffer for a 8-op cohort is a few hundred bytes; the op
objects exist only for the microseconds the flush takes.

Materialization sorts on a **value key** — ``(invoke, write-first,
agent, detail)`` — not on arrival order.  Arrival interleaving at the
home replica can depend on how bus deliveries and local events share a
shard simulator; the value key is a pure function of the operations
themselves, so the trace (and therefore every downstream digest) is
identical however the world was cut into shards.
"""

from __future__ import annotations

from array import array

from repro.core.trace import Operation, ReadOp, TestTrace, WriteOp

__all__ = ["CohortBuffer"]

_WRITE = 0
_READ = 1


class CohortBuffer:
    """Columnar accumulator for one cohort's operations."""

    __slots__ = ("cohort_id", "expected", "_kinds", "_agents",
                 "_details", "_invokes", "_responses")

    def __init__(self, cohort_id: int, expected: int) -> None:
        self.cohort_id = cohort_id
        #: Total operations the cohort will log before it can retire.
        self.expected = expected
        self._kinds = array("b")
        self._agents: list[str] = []
        #: message_id for writes; the observed id tuple for reads.
        self._details: list[str | tuple[str, ...]] = []
        self._invokes = array("d")
        self._responses = array("d")

    def __len__(self) -> int:
        return len(self._kinds)

    @property
    def complete(self) -> bool:
        return len(self._kinds) >= self.expected

    def add_write(self, agent: str, message_id: str, invoke: float,
                  response: float) -> None:
        self._kinds.append(_WRITE)
        self._agents.append(agent)
        self._details.append(message_id)
        self._invokes.append(invoke)
        self._responses.append(response)

    def add_read(self, agent: str, observed: tuple[str, ...],
                 invoke: float, response: float) -> None:
        self._kinds.append(_READ)
        self._agents.append(agent)
        self._details.append(observed)
        self._invokes.append(invoke)
        self._responses.append(response)

    # -- Materialization ----------------------------------------------

    def _order(self) -> list[int]:
        """Row order by the topology-independent value key."""

        def key(row: int):
            detail = self._details[row]
            return (self._invokes[row], self._kinds[row],
                    self._agents[row],
                    detail if isinstance(detail, str) else "|".join(detail))

        return sorted(range(len(self._kinds)), key=key)

    def materialize(self, test_id: str, service: str,
                    test_type: str = "test1") -> TestTrace:
        """Build the cohort's trace; op objects are born here."""
        operations: list[Operation] = []
        agents_seen: dict[str, None] = {}
        for row in self._order():
            agent = self._agents[row]
            agents_seen.setdefault(agent)
            invoke = self._invokes[row]
            response = self._responses[row]
            if self._kinds[row] == _WRITE:
                operations.append(WriteOp(
                    agent=agent,
                    message_id=self._details[row],
                    invoke_local=invoke,
                    response_local=response,
                    true_invoke=invoke,
                    true_response=response,
                ))
            else:
                operations.append(ReadOp(
                    agent=agent,
                    observed=tuple(self._details[row]),
                    invoke_local=invoke,
                    response_local=response,
                    true_invoke=invoke,
                    true_response=response,
                ))
        agents = tuple(sorted(agents_seen))
        trace = TestTrace(
            test_id=test_id,
            service=service,
            test_type=test_type,
            agents=agents,
            clock_deltas={agent: 0.0 for agent in agents},
            delta_uncertainty={agent: 0.0 for agent in agents},
        )
        trace.extend(operations)
        return trace
