"""The deterministic cross-shard message bus.

Every inter-replica interaction in a sharded world — rumor relays, read
records shipped to a cohort's home replica, retirement broadcasts —
crosses this bus, *including* traffic between replicas that happen to
share a shard.  That uniformity is the whole trick: delivery order is
fixed by a lamport-style total key

    (deliver_time, origin_replica, per-origin sequence)

whose components are all functions of logical replica indices and
simulated times, never of the physical shard cut.  At each epoch
barrier the engine drains due messages in that key order and schedules
them into the target shards' simulators, so a world run on one shard
and the same world run on N shards execute byte-identical histories.

Two invariants make the barrier sound:

* **Floor latency** — no message travels faster than one epoch
  (``deliver >= send + epoch``), so anything sent during epoch *k*
  lands strictly after the *k* -> *k+1* barrier and is sequenced there.
* **Deterministic deferral** — a partition nemesis never drops a
  message; it re-transmits it at heal time with its original latency,
  keeping delivery a pure function of (endpoints, send time, latency).
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.errors import SimulationError
from repro.world.spec import WorldPartition

__all__ = ["BusMessage", "WorldBus"]


class BusMessage:
    """One bus delivery, carrying its total-order key."""

    __slots__ = ("deliver_time", "origin", "seq", "target", "kind",
                 "payload")

    def __init__(self, deliver_time: float, origin: int, seq: int,
                 target: int, kind: str, payload: tuple) -> None:
        self.deliver_time = deliver_time
        self.origin = origin
        self.seq = seq
        self.target = target
        self.kind = kind
        self.payload = payload

    @property
    def key(self) -> tuple[float, int, int]:
        return (self.deliver_time, self.origin, self.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<BusMessage {self.kind} {self.origin}->{self.target} "
                f"@{self.deliver_time:.3f} seq={self.seq}>")


class WorldBus:
    """Pending cross-replica messages awaiting an epoch barrier."""

    __slots__ = ("_epoch", "_partitions", "_pending", "_next_seq",
                 "sent_total", "deferred_total")

    def __init__(self, epoch: float,
                 partitions: Sequence[WorldPartition] = ()) -> None:
        if epoch <= 0:
            raise SimulationError("bus epoch must be positive")
        self._epoch = epoch
        self._partitions = tuple(partitions)
        self._pending: list[BusMessage] = []
        #: Per-origin monotonic sequence numbers (the lamport tiebreak).
        self._next_seq: dict[int, int] = {}
        self.sent_total = 0
        self.deferred_total = 0

    def send(self, *, origin: int, target: int, send_time: float,
             latency: float, kind: str, payload: tuple = ()) -> None:
        """Enqueue a message; delivery honors the floor and partitions."""
        if origin == target:
            raise SimulationError(
                f"replica {origin} sent itself a bus message; local "
                "state is reached directly, not through the bus"
            )
        effective = max(latency, self._epoch)
        deliver = send_time + effective
        for partition in self._partitions:
            if partition.active_at(send_time) and \
                    partition.crosses(origin, target):
                # Blocked: retransmitted at heal with original latency.
                deliver = partition.end + effective
                self.deferred_total += 1
                break
        seq = self._next_seq.get(origin, 0)
        self._next_seq[origin] = seq + 1
        self._pending.append(
            BusMessage(deliver, origin, seq, target, kind, payload)
        )
        self.sent_total += 1

    # -- Barrier draining ---------------------------------------------

    @property
    def pending_count(self) -> int:
        return len(self._pending)

    def earliest(self) -> float | None:
        """Earliest pending delivery time, or None when drained."""
        if not self._pending:
            return None
        return min(message.deliver_time for message in self._pending)

    def drain_until(self, horizon: float) -> list[BusMessage]:
        """Messages due at or before ``horizon``, in total-key order."""
        due: list[BusMessage] = []
        keep: list[BusMessage] = []
        for message in self._pending:
            if message.deliver_time <= horizon:
                due.append(message)
            else:
                keep.append(message)
        self._pending = keep
        due.sort(key=lambda message: message.key)
        return due

    def stats(self) -> dict[str, Any]:
        return {
            "sent": self.sent_total,
            "deferred": self.deferred_total,
            "pending": len(self._pending),
        }
