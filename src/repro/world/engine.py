"""The epoch-barrier world engine.

One :class:`WorldEngine` drives a whole partitioned world: every shard
owns a private :class:`~repro.sim.Simulator`, and the engine alternates
between letting the shard simulators run one epoch and draining the
:class:`~repro.world.bus.WorldBus` at the barrier in its lamport total
order.  The soundness argument, in one paragraph:

    Epoochs are grid-aligned and the bus floor latency equals the
    epoch, so every message sent inside an epoch is deliverable only
    *after* the next barrier.  At each barrier the engine sequences all
    due messages by ``(deliver_time, origin_replica, origin_seq)`` —
    a key computed from logical replica identities and simulated times
    only — and schedules them into the target shards in that order.
    Within an epoch a replica touches nothing but its own state, so a
    shard's history is independent of which other replicas share its
    simulator.  Together: the world's observable history is a pure
    function of (spec-sans-topology, seed), which is exactly the
    byte-identity contract ``tools/world_parity_check.py`` enforces.

Retired cohorts flush at the barrier too, sorted by
``(close_time, cohort_id)``, each replayed through one shared
:class:`~repro.stream.engine.StreamEngine` (horizon 1).  The engine
therefore holds at most one open streaming test at any instant, no
matter how many hundred thousand sessions the world carries — the
stream engine's bounded-memory discipline is what makes the scale
reachable at all.  Results are distilled on the spot into a running
signature (the same record encoding as
:func:`repro.fleet.digest.records_digest`) and aggregate tallies;
whole records are never accumulated.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass, field

from repro.errors import SimulationError
from repro.fleet.digest import canonical_json
from repro.fleet.topology import plan_assignment
from repro.io import record_to_dict
from repro.sim import RandomSource, Simulator
from repro.stream.engine import StreamEngine
from repro.stream.ingest import replay_trace
from repro.world.bus import WorldBus
from repro.world.model import WorldReplica
from repro.world.spec import WorldSpec

__all__ = ["WorldResult", "WorldEngine", "run_world"]


@dataclass
class WorldResult:
    """Distilled outcome of one world run (records never retained)."""

    spec_digest: str
    seed: int
    sessions: int
    replicas: int
    shards: int
    #: Execution-lane plan: shard indexes per lane (placement echo).
    lanes: tuple[tuple[int, ...], ...]
    tests: int = 0
    ops: int = 0
    epochs: int = 0
    events_processed: int = 0
    bus_messages: int = 0
    bus_deferred: int = 0
    #: Anomaly-kind -> total observations across every cohort.
    anomalies: dict[str, int] = field(default_factory=dict)
    #: Running digest over record encodings in flush order — the
    #: byte-identity witness compared across shard counts.
    signature: str = ""
    #: Largest stream-engine state observed (bounded-memory witness).
    max_stream_state: int = 0
    #: Largest combined replica open state observed at a barrier.
    peak_open_state: int = 0

    def summary(self) -> dict:
        """JSON-safe summary (results/CLI/benchmark payloads)."""
        return {
            "spec_digest": self.spec_digest,
            "seed": self.seed,
            "sessions": self.sessions,
            "replicas": self.replicas,
            "shards": self.shards,
            "lanes": [list(lane) for lane in self.lanes],
            "tests": self.tests,
            "ops": self.ops,
            "epochs": self.epochs,
            "events_processed": self.events_processed,
            "bus_messages": self.bus_messages,
            "bus_deferred": self.bus_deferred,
            "anomalies": dict(self.anomalies),
            "signature": self.signature,
            "max_stream_state": self.max_stream_state,
            "peak_open_state": self.peak_open_state,
        }


class WorldEngine:
    """Run one :class:`WorldSpec` to completion under a seed."""

    def __init__(self, spec: WorldSpec, seed: int = 0,
                 stream_engine: StreamEngine | None = None) -> None:
        self.spec = spec
        self.seed = int(seed)
        self._rng = RandomSource(self.seed).child(f"world.{spec.name}")
        self._bus = WorldBus(spec.epoch, spec.partitions)
        self._sims = [Simulator() for _ in range(spec.shards)]
        self._replicas = []
        for index in range(spec.replicas):
            sim = self._sims[spec.replica_shard(index)]
            self._replicas.append(WorldReplica(
                index, spec, self._bus,
                self._rng.child(f"replica.{index}"),
                (lambda hosting=sim: hosting.now),
            ))
        self._engine = (stream_engine if stream_engine is not None
                        else StreamEngine(horizon=1))
        self._hasher = hashlib.sha256()
        weights = [0.0] * spec.shards
        for cohort in range(spec.cohort_count):
            weights[spec.replica_shard(spec.home_replica(cohort))] += \
                spec.cohort_sessions(cohort)
        self._lanes = plan_assignment(
            weights, spec.lanes if spec.lanes is not None
            else spec.shards)
        self.result = WorldResult(
            spec_digest=spec.digest(), seed=self.seed,
            sessions=spec.sessions, replicas=spec.replicas,
            shards=spec.shards, lanes=self._lanes,
        )
        self._ran = False

    # -- Session setup -------------------------------------------------

    def _session_times(self, cohort: int, member: int,
                       count: int) -> tuple[float, ...]:
        """Precomputed op invoke times for one session.

        Drawn from a per-session ephemeral stream at setup — setup
        iterates cohorts in one global order whatever the shard cut,
        so every instant in the world is fixed before anything runs.
        """
        spec = self.spec
        draws = self._rng.ephemeral(f"session.c{cohort}.s{member}")
        time = draws.uniform(0.0, spec.arrival_window)
        times = [time]
        for _ in range(count - 1):
            time += draws.expovariate(1.0 / spec.think_median)
            times.append(time)
        return tuple(times)

    def _setup(self) -> None:
        spec = self.spec
        for cohort in range(spec.cohort_count):
            members = spec.cohort_sessions(cohort)
            expected = (spec.writes_per_session
                        + (members - 1) * spec.reads_per_session)
            home = spec.home_replica(cohort)
            self._replicas[home].open_cohort(cohort, expected)
            for member in range(members):
                if member == 0:
                    replica_index = home
                    count = spec.writes_per_session
                else:
                    replica_index = spec.reader_replica(cohort, member)
                    count = spec.reads_per_session
                times = self._session_times(cohort, member, count)
                replica = self._replicas[replica_index]
                sim = self._sims[spec.replica_shard(replica_index)]
                sim.schedule_at(times[0], self._session_step,
                                replica, cohort, member, times, 0)

    def _session_step(self, replica: WorldReplica, cohort: int,
                      member: int, times: tuple[float, ...],
                      position: int) -> None:
        invoke = times[position]
        if member == 0:
            replica.local_write(cohort, f"s{member}",
                                f"m{position}", invoke)
        else:
            replica.local_read(cohort, f"s{member}", invoke)
        self.result.ops += 1
        if position + 1 < len(times):
            sim = self._sims[self.spec.replica_shard(replica.index)]
            sim.schedule_at(times[position + 1], self._session_step,
                            replica, cohort, member, times,
                            position + 1)

    # -- Barrier loop ---------------------------------------------------

    def run(self) -> WorldResult:
        if self._ran:
            raise SimulationError("a WorldEngine instance runs once")
        self._ran = True
        self._setup()
        epoch = self.spec.epoch
        while True:
            horizon = self._next_time()
            if horizon is None:
                break
            end = math.ceil(horizon / epoch) * epoch
            while end < horizon:  # float-grid guard
                end += epoch
            for message in self._bus.drain_until(end):
                replica = self._replicas[message.target]
                sim = self._sims[
                    self.spec.replica_shard(message.target)]
                sim.schedule_at(message.deliver_time,
                                replica.deliver, message)
            for lane in self._lanes:
                for shard_index in lane:
                    self._sims[shard_index].run_until(end)
            self._flush_cohorts()
            self.result.epochs += 1
        self._flush_cohorts()
        self._finish()
        return self.result

    def _next_time(self) -> float | None:
        """Earliest pending instant across shards and the bus."""
        times = [time for time in
                 (sim.next_event_time() for sim in self._sims)
                 if time is not None]
        earliest_bus = self._bus.earliest()
        if earliest_bus is not None:
            times.append(earliest_bus)
        return min(times) if times else None

    def _flush_cohorts(self) -> None:
        closed: list = []
        for replica in self._replicas:
            closed.extend(replica.drain_closed())
        if not closed:
            return
        closed.sort(key=lambda item: (item[0], item[1]))
        spec = self.spec
        for _close_time, cohort, buffer in closed:
            trace = buffer.materialize(
                test_id=f"{spec.name}/c{cohort}", service=spec.name)
            record = replay_trace(trace, self._engine)
            self._hasher.update(
                canonical_json(record_to_dict(record)).encode("utf-8"))
            self._hasher.update(b"\n")
            self.result.tests += 1
            for kind, count in record.report.summary().items():
                if count:
                    self.result.anomalies[kind] = \
                        self.result.anomalies.get(kind, 0) + count
            self.result.max_stream_state = max(
                self.result.max_stream_state,
                self._engine.state_size())
        self.result.peak_open_state = max(
            self.result.peak_open_state,
            sum(replica.state_size() for replica in self._replicas))

    def _finish(self) -> None:
        result = self.result
        if result.tests != self.spec.cohort_count:
            raise SimulationError(
                f"world drained with {result.tests} of "
                f"{self.spec.cohort_count} cohorts closed — a session "
                "stalled or a record was lost"
            )
        result.signature = self._hasher.hexdigest()
        result.events_processed = sum(
            sim.events_processed for sim in self._sims)
        result.bus_messages = self._bus.sent_total
        result.bus_deferred = self._bus.deferred_total
        result.anomalies = dict(sorted(result.anomalies.items()))


def run_world(spec: WorldSpec, seed: int = 0) -> WorldResult:
    """Convenience: run one world spec under ``seed``."""
    return WorldEngine(spec, seed).run()
