"""World replicas: the only holders of mutable world state.

A :class:`WorldReplica` owns three things and nothing else:

* **feeds** — per-cohort message-id sequences, the replica's view of
  each cohort's timeline.  Entries are kept sorted by
  ``(arrival_time, message_id)`` — a value key — so a read observes
  the same sequence whatever order same-time deliveries happened to
  interleave in the hosting shard's simulator;
* **cohorts** — the :class:`~repro.world.buffers.CohortBuffer` for
  every cohort *homed* here (the writer's replica assembles the
  trace); remote readers ship their op records across the bus;
* **retired** — cohorts whose trace already flushed; late rumors for
  them are dropped instead of resurrecting state, which is what keeps
  replica memory proportional to the *open* cohort population.

A replica never touches another replica, another shard, or another
simulator: every cross-replica effect is a
:meth:`~repro.world.bus.WorldBus.send`.  That discipline is machine-
checked by lint rule DET007 — reaching through a shard collection
bypasses the bus total order and breaks byte-identity.
"""

from __future__ import annotations

from bisect import insort
from typing import Callable

from repro.sim import RandomSource
from repro.world.buffers import CohortBuffer
from repro.world.bus import BusMessage, WorldBus
from repro.world.spec import WorldSpec

__all__ = ["WorldReplica"]


class WorldReplica:
    """One logical replica's slice of the world."""

    __slots__ = ("index", "spec", "bus", "rng", "feeds", "cohorts",
                 "retired", "closed", "_clock")

    def __init__(self, index: int, spec: WorldSpec, bus: WorldBus,
                 rng: RandomSource,
                 clock: Callable[[], float]) -> None:
        self.index = index
        self.spec = spec
        self.bus = bus
        self.rng = rng
        #: cohort key -> sorted [( (arrival, message_id), message_id )].
        self.feeds: dict[str, list[tuple[tuple[float, str], str]]] = {}
        #: cohort id -> buffer, for cohorts homed on this replica.
        self.cohorts: dict[int, CohortBuffer] = {}
        self.retired: set[str] = set()
        #: (close_time, cohort_id, buffer) drained at each barrier.
        self.closed: list[tuple[float, int, CohortBuffer]] = []
        self._clock = clock

    # -- Feed maintenance ---------------------------------------------

    def _feed_insert(self, key: str, arrival: float,
                     message_id: str) -> bool:
        """Insert into the sorted feed; False if already present."""
        if key in self.retired:
            return False
        feed = self.feeds.get(key)
        if feed is None:
            feed = []
            self.feeds[key] = feed
        entry = ((arrival, message_id), message_id)
        for _, present in feed:
            if present == message_id:
                return False
        insort(feed, entry)
        return True

    def observe_feed(self, key: str) -> tuple[str, ...]:
        """The message-id sequence a read of ``key`` returns now."""
        feed = self.feeds.get(key)
        if not feed:
            return ()
        return tuple(message_id for _, message_id in feed)

    # -- Rumor dissemination (author-sharded ring relay) ---------------

    def _relay(self, key: str, message_id: str, arrival: float) -> None:
        """Forward a first-seen rumor to this replica's ring successors.

        Fanout walks the replica ring (the author-sharded schedule from
        :mod:`repro.replication.sharding`); latency draws come from
        this replica's own stream so draw order — and therefore every
        value — is independent of how replicas share shard simulators.
        """
        spec = self.spec
        width = spec.replicas
        limit = min(spec.fanout, width - 1)
        for step in range(1, limit + 1):
            target = (self.index + step) % width
            latency = self.rng.lognormal(
                "hop", spec.hop_median, spec.hop_sigma
            )
            self.bus.send(
                origin=self.index, target=target, send_time=arrival,
                latency=latency, kind="rumor",
                payload=(key, message_id),
            )

    # -- Session operations (invoked by the engine's session events) ---

    def local_write(self, cohort: int, agent: str, message_id: str,
                    invoke: float) -> None:
        """Apply a homed writer's write and start disseminating it."""
        response = invoke + self.spec.service_time
        key = _cohort_key(cohort)
        if self._feed_insert(key, response, message_id):
            self._relay(key, message_id, response)
        self._record_write(cohort, agent, message_id, invoke, response)

    def local_read(self, cohort: int, agent: str,
                   invoke: float) -> None:
        """Serve a read from this replica's feed; ship the record home."""
        spec = self.spec
        response = invoke + spec.service_time
        key = _cohort_key(cohort)
        observed = self.observe_feed(key)
        home = spec.home_replica(cohort)
        if home == self.index:
            self._record_read(cohort, agent, observed, invoke, response)
            return
        latency = self.rng.lognormal(
            "ship", spec.hop_median, spec.hop_sigma
        )
        self.bus.send(
            origin=self.index, target=home, send_time=response,
            latency=latency, kind="record",
            payload=(cohort, agent, observed, invoke, response),
        )

    # -- Bus delivery -------------------------------------------------

    def deliver(self, message: BusMessage) -> None:
        """Bus delivery entry point (scheduled by the engine)."""
        kind = message.kind
        if kind == "rumor":
            key, message_id = message.payload
            if self._feed_insert(key, message.deliver_time, message_id):
                self._relay(key, message_id, message.deliver_time)
        elif kind == "record":
            cohort, agent, observed, invoke, response = message.payload
            self._record_read(cohort, agent, observed, invoke, response)
        elif kind == "retire":
            (key,) = message.payload
            self.feeds.pop(key, None)
            self.retired.add(key)
        else:  # pragma: no cover - protocol misuse guard
            raise ValueError(f"unknown bus message kind {kind!r}")

    # -- Cohort assembly (home replica only) ---------------------------

    def open_cohort(self, cohort: int, expected: int) -> None:
        self.cohorts[cohort] = CohortBuffer(cohort, expected)

    def _record_write(self, cohort: int, agent: str, message_id: str,
                      invoke: float, response: float) -> None:
        buffer = self.cohorts[cohort]
        buffer.add_write(agent, message_id, invoke, response)
        self._maybe_close(cohort, buffer)

    def _record_read(self, cohort: int, agent: str,
                     observed: tuple[str, ...], invoke: float,
                     response: float) -> None:
        buffer = self.cohorts[cohort]
        buffer.add_read(agent, observed, invoke, response)
        self._maybe_close(cohort, buffer)

    def _maybe_close(self, cohort: int, buffer: CohortBuffer) -> None:
        if not buffer.complete:
            return
        close_time = self._clock()
        del self.cohorts[cohort]
        key = _cohort_key(cohort)
        self.feeds.pop(key, None)
        self.retired.add(key)
        spec = self.spec
        for target in range(spec.replicas):
            if target == self.index:
                continue
            self.bus.send(
                origin=self.index, target=target,
                send_time=close_time, latency=spec.epoch,
                kind="retire", payload=(key,),
            )
        self.closed.append((close_time, cohort, buffer))

    def drain_closed(self) -> list[tuple[float, int, CohortBuffer]]:
        """Hand retired cohorts to the barrier flush; clears the list."""
        drained = self.closed
        self.closed = []
        return drained

    def state_size(self) -> int:
        """Open-state footprint: feed entries + buffered ops."""
        return (sum(len(feed) for feed in self.feeds.values())
                + sum(len(buffer)
                      for buffer in self.cohorts.values()))


def _cohort_key(cohort: int) -> str:
    return f"c{cohort}"
