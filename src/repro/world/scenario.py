"""Lowering a declarative scenario onto the world engine.

``topology.shards = N`` in a scenario file is the DSL's doorway into
the partitioned world: :func:`world_from_scenario` translates a
:class:`~repro.scenario.schema.ScenarioSpec` carrying a ``[topology]``
table into a :class:`~repro.world.spec.WorldSpec`, which
:func:`~repro.world.engine.run_world` executes.  Only the gossip
archetype lowers today — the world's propagation model *is* rumor
relay with author-sharded fanout, so other archetypes would silently
misrepresent their scenario.

The physical knobs (``shards``, ``lanes``) may be overridden at the
call site (CLI ``--shards``, the parity harness) without touching the
scenario's logical identity; overriding ``sessions`` rescales the
world for smoke runs.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.scenario.schema import ScenarioSpec
from repro.world.spec import WorldPartition, WorldSpec

__all__ = ["world_from_scenario"]


def world_from_scenario(
    scenario: ScenarioSpec,
    *,
    shards: int | None = None,
    lanes: int | None = None,
    sessions: int | None = None,
    partitions: tuple[WorldPartition, ...] = (),
) -> WorldSpec:
    """Build the :class:`WorldSpec` a scenario's ``[topology]`` asks for."""
    topology = scenario.topology
    if topology is None:
        raise ConfigurationError(
            f"scenario {scenario.name!r} has no [topology] table; "
            "add one (topology.shards = N) to run it as a sharded "
            "world"
        )
    if scenario.service.archetype != "gossip":
        raise ConfigurationError(
            f"scenario {scenario.name!r} uses archetype "
            f"{scenario.service.archetype!r}; the world engine lowers "
            "the gossip archetype only"
        )
    return WorldSpec(
        name=scenario.name,
        sessions=sessions if sessions is not None
        else topology.sessions,
        replicas=topology.replicas,
        shards=shards if shards is not None else topology.shards,
        lanes=lanes if lanes is not None else topology.lanes,
        cohort_size=topology.cohort_size,
        writes_per_session=topology.writes_per_session,
        reads_per_session=topology.reads_per_session,
        arrival_window=topology.arrival_window,
        think_median=topology.think_median,
        service_time=topology.service_time,
        hop_median=topology.hop_median,
        hop_sigma=topology.hop_sigma,
        fanout=topology.fanout,
        epoch=topology.epoch,
        partitions=partitions,
    )
