"""Declarative description of a partitioned simulated world.

A :class:`WorldSpec` fixes everything about a sharded-world run except
the seed: how many sessions the world carries, how many logical
replicas serve them, how the replicas are cut into physical shards,
the session workload shape, the rumor-propagation model, and any
partition nemeses.  The spec is a frozen value object so it can be
digested (:meth:`WorldSpec.digest`) and echoed into results — two runs
with equal spec + seed are byte-identical, whatever the shard count.

Placement vocabulary (all derived, never stored):

* a **session** ``s`` of cohort ``c`` is *homed* on a logical replica
  chosen by a stable BLAKE2b hash (:mod:`repro.replication.sharding`)
  — a function of the session identity and ``replicas`` only;
* a **cohort** of ``cohort_size`` sessions (one writer, the rest
  readers) is one measurement test; its trace is assembled on the
  writer's home replica;
* a **shard** owns a contiguous block of replicas
  (:meth:`replica_shard`); because every ordering decision keys on
  logical replica indices, the replica -> shard cut is invisible to
  results — the property ``tools/world_parity_check.py`` enforces.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.errors import SimulationError
from repro.fleet.digest import canonical_json, sha256_hex
from repro.replication.sharding import author_shard

__all__ = ["WorldPartition", "WorldSpec"]


@dataclass(frozen=True)
class WorldPartition:
    """A network partition nemesis spanning a set of replicas.

    While active (``start <= send_time < end``), any bus message
    crossing the cut — origin and target on opposite sides of
    ``side`` — is deferred: it is re-transmitted at heal time with its
    original latency.  Deferral is a pure function of the endpoints and
    times, so partitioned runs stay byte-identical across shard counts.
    """

    start: float
    end: float
    side: tuple[int, ...]

    def __post_init__(self) -> None:
        if self.end <= self.start or self.start < 0:
            raise SimulationError(
                f"partition window [{self.start}, {self.end}) is empty "
                "or negative"
            )
        if not self.side:
            raise SimulationError("partition side must be non-empty")
        ordered = tuple(sorted(set(int(i) for i in self.side)))
        if ordered != self.side:
            object.__setattr__(self, "side", ordered)

    def crosses(self, origin: int, target: int) -> bool:
        return (origin in self.side) != (target in self.side)

    def active_at(self, send_time: float) -> bool:
        return self.start <= send_time < self.end


@dataclass(frozen=True)
class WorldSpec:
    """One sharded world: scale, placement, workload, propagation."""

    name: str = "world"
    #: Total concurrent sessions carried by the world.
    sessions: int = 1000
    #: Logical replicas — placement keys on this, never on ``shards``.
    replicas: int = 6
    #: Physical shards the replicas are cut into (1 = serial world).
    shards: int = 1
    #: Execution lanes worker shards are packed onto (None = shards).
    lanes: int | None = None
    #: Sessions per measurement cohort (1 writer + readers).
    cohort_size: int = 4
    writes_per_session: int = 2
    reads_per_session: int = 2
    #: Session start times spread uniformly over this window (s).
    arrival_window: float = 50.0
    #: Median think time between a session's operations (s).
    think_median: float = 40.0
    #: Fixed local service time (response - invoke) for every op (s).
    service_time: float = 2.0
    #: Median one-hop rumor propagation latency (s), lognormal.
    hop_median: float = 30.0
    hop_sigma: float = 0.4
    #: Ring-relay fanout for author-sharded rumor dissemination.
    fanout: int = 2
    #: Barrier quantum: the bus floor latency and epoch length (s).
    epoch: float = 10.0
    partitions: tuple[WorldPartition, ...] = field(default=())

    def __post_init__(self) -> None:
        if self.sessions < 1:
            raise SimulationError("world needs at least one session")
        if self.replicas < 2:
            raise SimulationError("world needs at least two replicas")
        if not 1 <= self.shards <= self.replicas:
            raise SimulationError(
                f"shards must be in [1, replicas={self.replicas}], "
                f"got {self.shards}"
            )
        if self.lanes is not None and self.lanes < 1:
            raise SimulationError("lanes must be >= 1 when set")
        if self.cohort_size < 2:
            raise SimulationError(
                "cohorts need a writer and at least one reader"
            )
        if self.writes_per_session < 1 or self.reads_per_session < 1:
            raise SimulationError(
                "sessions need at least one write and one read"
            )
        if self.epoch <= 0:
            raise SimulationError("epoch must be positive")
        if min(self.arrival_window, self.think_median,
               self.service_time, self.hop_median) <= 0:
            raise SimulationError("world time constants must be positive")
        if self.fanout < 1:
            raise SimulationError("fanout must be >= 1")
        if isinstance(self.partitions, list):
            object.__setattr__(self, "partitions",
                               tuple(self.partitions))
        for partition in self.partitions:
            bad = [i for i in partition.side
                   if not 0 <= i < self.replicas]
            if bad:
                raise SimulationError(
                    f"partition side indexes {bad} outside "
                    f"[0, {self.replicas})"
                )

    # -- Derived placement (logical — never topology-dependent) --------

    @property
    def cohort_count(self) -> int:
        return -(-self.sessions // self.cohort_size)

    def cohort_sessions(self, cohort: int) -> int:
        """Number of sessions in ``cohort`` (the last may be short)."""
        start = cohort * self.cohort_size
        return min(self.cohort_size, self.sessions - start)

    def home_replica(self, cohort: int) -> int:
        """The writer's (and the cohort trace's) home replica."""
        return author_shard(f"{self.name}/c{cohort}", self.replicas)

    def reader_replica(self, cohort: int, member: int) -> int:
        """Home replica of reader ``member`` (1-based) of ``cohort``.

        Always distinct from the cohort home so cross-replica (and,
        depending on the cut, cross-shard) reads actually occur.
        """
        offset = author_shard(
            f"{self.name}/c{cohort}/s{member}", self.replicas - 1
        )
        return (self.home_replica(cohort) + 1 + offset) % self.replicas

    def replica_shard(self, replica: int) -> int:
        """The physical shard hosting ``replica`` (contiguous blocks)."""
        return replica * self.shards // self.replicas

    def with_topology(self, shards: int,
                      lanes: int | None = None) -> "WorldSpec":
        """The same logical world on a different physical cut."""
        return replace(self, shards=shards, lanes=lanes)

    def digest(self) -> str:
        """Content digest binding results to the spec that made them."""
        return sha256_hex(canonical_json(self))
