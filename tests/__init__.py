"""Test package for the consistency reproduction."""

__all__: list[str] = []
