"""Shared helpers for building hand-crafted traces in tests."""

from __future__ import annotations

from repro.core import ReadOp, TestTrace, WriteOp

__all__ = ["DEFAULT_AGENTS", "write", "read", "make_trace"]

DEFAULT_AGENTS = ("oregon", "tokyo", "ireland")


def write(agent: str, message_id: str, at: float,
          response: float | None = None) -> WriteOp:
    """A write invoked at ``at`` that completes 0.1s later by default."""
    return WriteOp(
        agent=agent,
        message_id=message_id,
        invoke_local=at,
        response_local=response if response is not None else at + 0.1,
    )


def read(agent: str, observed: tuple[str, ...] | list[str], at: float,
         response: float | None = None) -> ReadOp:
    """A read invoked at ``at`` that completes 0.1s later by default."""
    return ReadOp(
        agent=agent,
        observed=tuple(observed),
        invoke_local=at,
        response_local=response if response is not None else at + 0.1,
    )


def make_trace(operations, agents=DEFAULT_AGENTS, test_id="t-1",
               service="unit", test_type="test1", clock_deltas=None,
               wfr_triggers=None) -> TestTrace:
    """Bundle operations into a validated TestTrace."""
    trace = TestTrace(
        test_id=test_id,
        service=service,
        test_type=test_type,
        agents=tuple(agents),
        clock_deltas=clock_deltas or {},
        wfr_triggers=wfr_triggers or {},
    )
    trace.extend(operations)
    return trace
