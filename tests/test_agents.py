"""Tests for the measurement agent and coordinator."""

import pytest

from repro.core import TestTrace
from repro.methodology import MeasurementWorld
from repro.sim import spawn


def make_agent_world(service="blogger", seed=6):
    world = MeasurementWorld(service, seed=seed)
    agent = world.agent("oregon")
    trace = TestTrace(
        test_id="t", service=service, test_type="test1",
        agents=world.agent_names,
    )
    return world, agent, trace


def drive(world, generator_fn, *args, **kwargs):
    process = spawn(world.sim, generator_fn, *args, **kwargs)
    while not process.completion.done:
        world.sim.run_until(world.sim.now + 30.0)
    return process.completion.value


class TestTimedOperations:
    def test_post_logs_write_with_local_times(self):
        world, agent, trace = make_agent_world()
        agent.begin_test(trace, ["M1"])
        ok = drive(world, agent.timed_post, "M1")
        assert ok is True
        (write,) = trace.writes()
        assert write.agent == "oregon"
        assert write.message_id == "M1"
        assert write.response_local > write.invoke_local
        # Local clock is skewed; true times differ from local ones.
        assert write.true_invoke != write.invoke_local
        assert agent.total_writes == 1

    def test_fetch_logs_filtered_observation(self):
        world, agent, trace = make_agent_world()
        agent.begin_test(trace, ["M1"])
        drive(world, agent.timed_post, "M1")
        observed = drive(world, agent.timed_fetch)
        assert observed == ("M1",)
        assert agent.has_seen("M1")
        (read,) = trace.reads()
        assert read.observed == ("M1",)

    def test_fetch_filters_out_foreign_messages(self):
        world, agent, trace = make_agent_world()
        # The service also holds messages from outside this test.
        agent.begin_test(trace, ["M-other"])
        drive(world, agent.timed_post, "M-other")
        agent.end_test()
        trace2 = TestTrace(test_id="t2", service="blogger",
                           test_type="test1",
                           agents=world.agent_names)
        agent.begin_test(trace2, ["M-new"])
        observed = drive(world, agent.timed_fetch)
        assert observed == ()  # M-other filtered out

    def test_operations_outside_test_are_not_logged(self):
        world, agent, trace = make_agent_world()
        drive(world, agent.timed_post, "M1")
        assert len(trace) == 0
        assert agent.total_writes == 1  # counted, just not logged


class TestReadLoop:
    def test_loop_reads_at_period_until_stopped(self):
        world, agent, trace = make_agent_world()
        agent.begin_test(trace, ["M1"])
        loop = spawn(world.sim, agent.read_loop, 0.3)
        world.sim.run_until(world.sim.now + 3.0)
        agent.stop_reading()
        world.sim.run_until(world.sim.now + 2.0)
        reads = trace.reads_by("oregon")
        assert 6 <= len(reads) <= 11
        assert not loop.alive

    def test_loop_honors_max_reads(self):
        world, agent, trace = make_agent_world()
        agent.begin_test(trace, ["M1"])
        loop = spawn(world.sim, agent.read_loop, 0.3, max_reads=4)
        world.sim.run_until(world.sim.now + 10.0)
        assert loop.completion.value == 4
        assert len(trace.reads_by("oregon")) == 4

    def test_loop_slows_after_threshold(self):
        world, agent, trace = make_agent_world()
        agent.begin_test(trace, ["M1"])
        spawn(world.sim, agent.read_loop, 0.3, max_reads=8,
              slow_after=4, slow_period=1.0)
        world.sim.run_until(world.sim.now + 15.0)
        reads = trace.reads_by("oregon")
        assert len(reads) == 8
        fast_gap = reads[1].invoke_local - reads[0].invoke_local
        slow_gap = reads[6].invoke_local - reads[5].invoke_local
        assert fast_gap < 0.6
        assert slow_gap > 0.8

    def test_loop_stops_when_test_ends(self):
        world, agent, trace = make_agent_world()
        agent.begin_test(trace, ["M1"])
        loop = spawn(world.sim, agent.read_loop, 0.3)
        world.sim.run_until(world.sim.now + 1.0)
        agent.end_test()
        world.sim.run_until(world.sim.now + 2.0)
        assert not loop.alive


class TestWaitUntilSeen:
    def test_wait_resolves_after_observation(self):
        world, agent, trace = make_agent_world()
        agent.begin_test(trace, ["M1"])
        spawn(world.sim, agent.read_loop, 0.3)

        def poster():
            yield 1.0
            yield from agent.timed_post("M1")

        spawn(world.sim, poster)
        waited = drive(world, agent.wait_until_seen, "M1")
        assert waited is None
        assert agent.has_seen("M1")


class TestCoordinator:
    def test_sync_clocks_estimates_all_agents(self):
        world = MeasurementWorld("blogger", seed=6)
        estimates = drive(world, world.coordinator.sync_clocks)
        assert set(estimates) == {"oregon", "tokyo", "ireland"}
        for agent in world.agents:
            estimate = estimates[agent.name]
            true_delta = (agent.clock.now()
                          - world.coordinator.clock.now())
            assert abs(estimate.delta - true_delta) \
                <= 2 * estimate.uncertainty

    def test_delta_and_uncertainty_maps(self):
        world = MeasurementWorld("blogger", seed=6)
        drive(world, world.coordinator.sync_clocks)
        deltas = world.coordinator.delta_map()
        uncertainties = world.coordinator.uncertainty_map()
        assert set(deltas) == set(uncertainties) == {
            "oregon", "tokyo", "ireland",
        }
        # Tokyo has the largest coordinator RTT (218 ms), so the
        # largest uncertainty bound.
        assert uncertainties["tokyo"] == max(uncertainties.values())

    def test_reference_now_is_coordinator_clock(self):
        world = MeasurementWorld("blogger", seed=6)
        assert world.coordinator.reference_now() == pytest.approx(
            world.coordinator.clock.now()
        )
