"""Tests for the analysis pipeline (figure regeneration)."""

import pytest

from repro.analysis import (
    campaign_totals,
    correlation_table,
    distribution_table,
    full_report,
    location_correlation,
    occurrence_distribution,
    pair_divergence,
    pair_divergence_table,
    prevalence_rows,
    prevalence_table,
    assessing_test_type,
    window_cdf_table,
    window_cdfs,
)
from repro.core import (
    CONTENT_DIVERGENCE,
    MONOTONIC_WRITES,
    ORDER_DIVERGENCE,
    READ_YOUR_WRITES,
)
from repro.core.windows import WindowResult
from repro.methodology import CampaignConfig, run_campaign
from repro.methodology.runner import CampaignResult, TestRecord, analyze_trace

from tests.helpers import make_trace, read, write


def record_from_ops(ops, test_id="t", test_type="test1", **kwargs):
    trace = make_trace(ops, test_id=test_id, test_type=test_type,
                       **kwargs)
    record = analyze_trace(trace)
    return record


def make_result(records, service="unit"):
    result = CampaignResult(service=service,
                            config=CampaignConfig(num_tests=1))
    result.records.extend(records)
    return result


RYW_OPS = [
    write("oregon", "M1", 0.0),
    read("oregon", (), 1.0),
    read("oregon", ("M1",), 2.0),
]
CLEAN_OPS = [
    write("oregon", "M1", 0.0),
    read("oregon", ("M1",), 1.0),
]
DIVERGENT_OPS = [
    write("oregon", "M1", 0.0),
    write("tokyo", "M2", 0.0),
    read("oregon", ("M1",), 1.0),
    read("tokyo", ("M2",), 1.0),
    read("oregon", ("M1", "M2"), 4.0),
    read("tokyo", ("M1", "M2"), 4.0),
]


class TestPrevalence:
    def test_test_type_routing(self):
        assert assessing_test_type(READ_YOUR_WRITES) == "test1"
        assert assessing_test_type(CONTENT_DIVERGENCE) == "test2"

    def test_rows_count_anomalous_tests(self):
        records = [
            record_from_ops(RYW_OPS, test_id="a"),
            record_from_ops(CLEAN_OPS, test_id="b"),
        ]
        result = make_result(records)
        rows = {row.anomaly: row for row in prevalence_rows(result)}
        ryw = rows[READ_YOUR_WRITES]
        assert ryw.tests_with_anomaly == 1
        assert ryw.total_tests == 2
        assert ryw.percent == pytest.approx(50.0)

    def test_zero_tests_gives_zero_fraction(self):
        result = make_result([])
        rows = prevalence_rows(result)
        assert all(row.fraction == 0.0 for row in rows)

    def test_table_renders_all_services(self):
        result = make_result([record_from_ops(RYW_OPS)])
        table = prevalence_table({"svc-a": result, "svc-b": result})
        assert "svc-a" in table and "svc-b" in table
        assert "read_your_writes" in table


class TestDistributions:
    def test_counts_bucketed_per_agent(self):
        # One test with two RYW observations for oregon.
        ops = [
            write("oregon", "M1", 0.0),
            read("oregon", (), 1.0),
            read("oregon", (), 2.0),
            read("oregon", ("M1",), 3.0),
        ]
        result = make_result([record_from_ops(ops)])
        panel = occurrence_distribution(result, READ_YOUR_WRITES)
        assert panel.histograms["oregon"]["2"] == 1
        assert panel.tests_with_anomaly("oregon") == 1
        assert panel.tests_with_anomaly("tokyo") == 0

    def test_zero_observation_tests_not_counted(self):
        result = make_result([record_from_ops(CLEAN_OPS)])
        panel = occurrence_distribution(result, READ_YOUR_WRITES)
        assert panel.tests_with_anomaly("oregon") == 0

    def test_table_renders(self):
        result = make_result([record_from_ops(RYW_OPS)])
        panel = occurrence_distribution(result, READ_YOUR_WRITES)
        text = distribution_table(panel)
        assert "oregon" in text
        assert ">10" in text


class TestCorrelation:
    def test_exclusive_observation(self):
        result = make_result([record_from_ops(RYW_OPS)])
        breakdown = location_correlation(result, READ_YOUR_WRITES)
        assert breakdown.combos == {("oregon",): 1}
        assert breakdown.fraction_exclusive() == 1.0
        assert breakdown.fraction_global() == 0.0

    def test_global_observation(self):
        ops = [
            write("oregon", "M1", 0.0),
            write("oregon", "M2", 1.0),
            read("oregon", ("M2",), 2.0),
            read("tokyo", ("M2",), 2.0),
            read("ireland", ("M2",), 2.0),
        ]
        result = make_result([record_from_ops(ops)])
        breakdown = location_correlation(result, MONOTONIC_WRITES)
        assert breakdown.combos == {("ireland", "oregon", "tokyo"): 1}
        assert breakdown.fraction_global() == 1.0

    def test_no_anomaly_fractions_are_zero(self):
        result = make_result([record_from_ops(CLEAN_OPS)])
        breakdown = location_correlation(result, READ_YOUR_WRITES)
        assert breakdown.fraction_exclusive() == 0.0

    def test_table_renders(self):
        result = make_result([record_from_ops(RYW_OPS)])
        text = correlation_table(
            location_correlation(result, READ_YOUR_WRITES)
        )
        assert "oregon" in text


class TestPairDivergence:
    def test_counts_pairs(self):
        records = [
            record_from_ops(DIVERGENT_OPS, test_type="test2"),
            record_from_ops(CLEAN_OPS, test_type="test2"),
        ]
        result = make_result(records)
        prevalence = pair_divergence(result)
        assert prevalence.fraction(("oregon", "tokyo")) == 0.5
        assert prevalence.fraction(("ireland", "oregon")) == 0.0

    def test_rejects_session_anomaly(self):
        result = make_result([])
        with pytest.raises(ValueError):
            pair_divergence(result, anomaly=READ_YOUR_WRITES)

    def test_table_renders_all_pairs(self):
        result = make_result(
            [record_from_ops(DIVERGENT_OPS, test_type="test2")]
        )
        text = pair_divergence_table(
            pair_divergence(result), ("oregon", "tokyo", "ireland")
        )
        assert "oregon" in text and "ireland" in text


class TestWindowCdfs:
    def test_samples_use_largest_converged_window(self):
        record = record_from_ops(DIVERGENT_OPS, test_type="test2")
        result = make_result([record])
        cdf_set = window_cdfs(result, kind="content")
        samples = cdf_set.samples[("oregon", "tokyo")]
        assert len(samples) == 1
        assert samples[0] == pytest.approx(3.0)
        assert cdf_set.unconverged_fraction(("oregon", "tokyo")) == 0.0

    def test_unconverged_runs_are_excluded_but_counted(self):
        ops = [
            write("oregon", "M1", 0.0),
            write("tokyo", "M2", 0.0),
            read("oregon", ("M1",), 1.0),
            read("tokyo", ("M2",), 1.5),
        ]
        result = make_result([record_from_ops(ops, test_type="test2")])
        cdf_set = window_cdfs(result, kind="content")
        pair = ("oregon", "tokyo")
        assert pair not in cdf_set.samples
        assert cdf_set.unconverged[pair] == 1
        assert cdf_set.unconverged_fraction(pair) == 1.0

    def test_order_kind(self):
        result = make_result(
            [record_from_ops(DIVERGENT_OPS, test_type="test2")]
        )
        cdf_set = window_cdfs(result, kind="order")
        assert cdf_set.kind == "order"

    def test_invalid_kind_rejected(self):
        result = make_result([])
        with pytest.raises(ValueError):
            window_cdfs(result, kind="chaos")

    def test_table_renders(self):
        result = make_result(
            [record_from_ops(DIVERGENT_OPS, test_type="test2")]
        )
        text = window_cdf_table(window_cdfs(result, kind="content"))
        assert "oregon-tokyo" in text


class TestFullReport:
    def test_report_on_real_campaign(self):
        result = run_campaign("googleplus",
                              CampaignConfig(num_tests=6, seed=5))
        report = full_report({"googleplus": result})
        assert "Figure 3" in report
        assert "Figure 8" in report
        assert "Figure 10" in report
        assert "googleplus" in report

    def test_campaign_totals_line(self):
        result = run_campaign("blogger",
                              CampaignConfig(num_tests=2, seed=5))
        line = campaign_totals(result)
        assert "blogger" in line
        assert "4 tests" in line
