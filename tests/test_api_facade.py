"""Tests for repro.api: the typed facade mirrored 1:1 by HTTP.

The contract under test: every request object encodes to exactly the
params its HTTP route accepts, every response object decodes from
exactly the body the route returns, and the convenience functions work
against *any* transport — here both the in-process
:meth:`HuntServer.handle` and a deliberately minimal fake.
"""

import pytest

from repro.api import (
    HuntObsRequest,
    HuntResultsRequest,
    HuntStatusRequest,
    HuntStatusResponse,
    SubmitHuntRequest,
    SubmitHuntResponse,
    hunt_obs,
    hunt_results,
    hunt_status,
    hunt_status_body,
    submit_hunt,
)
from repro.errors import NotFoundError
from repro.serve import HuntServer, HuntSpec, HuntState

TINY = dict(num_tests=1, test_types=("test1",))


@pytest.fixture
def server(tmp_path):
    return HuntServer(tmp_path)


@pytest.fixture
def token(server):
    return server.issue_token()


class TestRequestObjects:
    def test_submit_request_lowers_to_the_exact_hunt_spec(self):
        request = SubmitHuntRequest(services=("blogger",), seeds=(7,),
                                    num_tests=3, test_types=("test1",))
        spec = request.to_hunt_spec()
        assert spec == HuntSpec(services=("blogger",), seeds=(7,),
                                num_tests=3, test_types=("test1",))
        # Wire params are the spec's JSON encoding, nothing extra.
        assert request.to_params() == spec.to_dict()

    def test_results_request_omits_absent_cursor(self):
        assert HuntResultsRequest(hunt_id="h0").to_params() == {
            "limit": 25
        }
        assert HuntResultsRequest(hunt_id="h0", cursor="k",
                                  limit=5).to_params() == {
            "limit": 5, "cursor": "k"
        }

    def test_status_body_matches_response_fields(self):
        state = HuntState(
            hunt_id="h0000",
            spec=HuntSpec(services=("blogger",), **TINY),
            status="queued", shards_total=1,
        )
        body = hunt_status_body(state)
        decoded = HuntStatusResponse.from_body(body)
        assert decoded.hunt_id == "h0000"
        assert decoded.status == "queued"
        assert decoded.shards_total == 1
        assert decoded.fleet_signature is None
        # The body carries exactly the response dataclass's fields.
        assert set(body) == set(
            HuntStatusResponse.__dataclass_fields__
        )


class TestAgainstInProcessServer:
    def test_submit_status_results_round_trip(self, server, token):
        submitted = submit_hunt(server.handle, SubmitHuntRequest(
            services=("blogger",), seeds=(1, 2), **TINY,
        ), token=token)
        assert isinstance(submitted, SubmitHuntResponse)
        assert submitted.status == "queued"
        assert submitted.shards_total == 2

        server.run_pending()
        status = hunt_status(
            server.handle, HuntStatusRequest(submitted.hunt_id),
            token=token,
        )
        assert status.status == "done"
        assert status.shards_done == 2
        assert status.fleet_signature is not None

        collected = []
        cursor = None
        while True:
            page = hunt_results(server.handle, HuntResultsRequest(
                hunt_id=submitted.hunt_id, cursor=cursor, limit=1,
            ), token=token)
            collected += [item["key"] for item in page.items]
            if page.is_last:
                break
            cursor = page.next_cursor
        assert len(collected) == len(set(collected)) == 2

    def test_obs_round_trip_merges_completed_shards(self, server,
                                                    token):
        submitted = submit_hunt(server.handle, SubmitHuntRequest(
            services=("blogger",), seeds=(1, 2), **TINY,
        ), token=token)
        # Before any shard completes the snapshot is the empty merge.
        empty = hunt_obs(server.handle,
                         HuntObsRequest(submitted.hunt_id),
                         token=token)
        assert empty.shards == () and empty.missing == ()
        assert empty.snapshot["metrics"] == []

        server.run_pending()
        merged = hunt_obs(server.handle,
                          HuntObsRequest(submitted.hunt_id),
                          token=token)
        assert merged.hunt_id == submitted.hunt_id
        assert len(merged.shards) == 2 and merged.missing == ()
        metric_names = {metric["name"]
                        for metric in merged.snapshot["metrics"]}
        assert "replication.writes_total" in metric_names

    def test_error_statuses_raise_typed_exceptions(self, server,
                                                   token):
        with pytest.raises(NotFoundError):
            hunt_status(server.handle, HuntStatusRequest("h9999"),
                        token=token)
        with pytest.raises(NotFoundError):
            hunt_obs(server.handle, HuntObsRequest("h9999"),
                     token=token)


class TestAgainstFakeTransport:
    def test_transport_sees_the_documented_wire_shape(self):
        calls = []

        def transport(method, path, params=None, token=None):
            calls.append((method, path, params, token))
            from repro.webapi.http import ApiResponse

            return ApiResponse(status=200, body={
                "hunt_id": "h0007", "status": "queued",
                "shards_total": 1,
            })

        response = submit_hunt(transport, SubmitHuntRequest(
            services=("blogger",), **TINY,
        ), token="tok")
        assert response.hunt_id == "h0007"
        method, path, params, token = calls[0]
        assert (method, path, token) == ("POST", "/v1/hunts", "tok")
        assert params == {"services": ["blogger"], "seeds": [0],
                          "num_tests": 1, "test_types": ["test1"],
                          "stream": False}
