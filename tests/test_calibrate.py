"""Tests for repro.calibrate: targets, spaces, searchers, store, CLI.

The load-bearing guarantees mirror the fleet suite's: a search is a
pure function of (space, searcher, seed) — same inputs give a
byte-identical trial store and the same winner whether candidates run
serially or on four workers — and a damaged store resumes to the
identical outcome instead of silently recomputing something else.
"""

import json

import pytest

from repro.calibrate import (
    CALIBRATED_ASSIGNMENTS,
    FIDELITY_BUDGETS,
    Axis,
    FidelityScore,
    FleetEvaluator,
    GridSearch,
    Objective,
    SearchSpace,
    ServiceTargets,
    SuccessiveHalving,
    TrialResult,
    TrialStore,
    calibrated_params,
    comparison_table,
    default_objective,
    default_space,
    fidelity_table,
    make_searcher,
    paper_targets,
    run_calibration,
    target_services,
    write_fidelity_json,
)
from repro.calibrate.store import TRIALS_KIND, TRIALS_SCHEMA_VERSION
from repro.cli import main as repro_main
from repro.errors import CalibrationError
from repro.io import write_digest_jsonl
from repro.methodology import CampaignConfig, run_campaign

#: Smallest useful real evaluation: one test type, two tests.
SMALL = CampaignConfig(num_tests=2, seed=0, test_types=("test1",))


class TestTargets:
    def test_every_target_service_has_an_objective(self):
        for service in target_services():
            objective = default_objective(service)
            assert objective.targets.service == service

    def test_unknown_service_is_an_error(self):
        with pytest.raises(CalibrationError, match="no paper targets"):
            paper_targets("myspace")

    def test_prevalence_fraction_is_validated(self):
        with pytest.raises(CalibrationError, match="fraction"):
            ServiceTargets(service="x", prevalence={"ryw": 1.5})

    def test_pair_keys_must_be_sorted(self):
        with pytest.raises(CalibrationError, match="not sorted"):
            ServiceTargets(
                service="x",
                pair_content={("oregon", "ireland"): 0.5},
            )

    def test_googleplus_numbers_match_the_paper(self):
        targets = paper_targets("googleplus")
        assert targets.prevalence["content_divergence"] == 0.85
        assert targets.reads_test1 == 48
        assert targets.pair_content[("ireland", "oregon")] == 0.85
        assert targets.pair_content[("oregon", "tokyo")] == 0.15


class TestSpace:
    def test_candidate_zero_is_the_baseline(self):
        space = default_space("googleplus")
        defaults = space.assignment(0)
        base = space.params({})
        for path, value in defaults.items():
            outer, _, inner = path.partition(".")
            node = getattr(base, outer)
            assert getattr(node, inner) == value

    def test_mixed_radix_decode_first_axis_most_significant(self):
        space = SearchSpace(service="blogger", axes=(
            Axis("write_processing_median", (0.17, 0.12)),
            Axis("read_processing_median", (0.04, 0.06, 0.08)),
        ))
        assert space.size == 6
        assert list(space.assignment(0).values()) == [0.17, 0.04]
        assert list(space.assignment(2).values()) == [0.17, 0.08]
        assert list(space.assignment(3).values()) == [0.12, 0.04]
        assert list(space.assignment(5).values()) == [0.12, 0.08]

    def test_assignment_materializes_nested_params(self):
        space = default_space("googleplus")
        params = space.params(
            {"replication_eu.sync_interval": 0.05}
        )
        assert params.replication_eu.sync_interval == 0.05
        # Untouched knobs keep their defaults.
        assert params.replication_us.sync_interval == 0.4

    def test_unknown_path_is_an_error(self):
        with pytest.raises(CalibrationError):
            SearchSpace(service="blogger", axes=(
                Axis("no_such_knob", (1, 2)),
            ))

    def test_index_out_of_range_is_an_error(self):
        space = default_space("blogger")
        with pytest.raises(CalibrationError):
            space.assignment(space.size)

    def test_unknown_service_has_no_default_space(self):
        with pytest.raises(CalibrationError, match="no default"):
            default_space("myspace")


class TestObjective:
    @pytest.fixture(scope="class")
    def blogger_result(self):
        return run_campaign("blogger", CampaignConfig(
            num_tests=2, seed=0,
        ))

    def test_term_order_is_fixed(self, blogger_result):
        score = default_objective("blogger").evaluate(blogger_result)
        names = [term.name for term in score.terms]
        assert names == [
            "prevalence.read_your_writes",
            "prevalence.monotonic_writes",
            "prevalence.monotonic_reads",
            "prevalence.writes_follow_reads",
            "prevalence.content_divergence",
            "prevalence.order_divergence",
            "reads.test1",
        ]

    def test_total_is_the_weighted_sum(self, blogger_result):
        score = default_objective("blogger").evaluate(blogger_result)
        expected = sum(t.weight * t.loss for t in score.terms)
        assert score.total == pytest.approx(expected)

    def test_score_roundtrips_through_json(self, blogger_result):
        score = default_objective("blogger").evaluate(blogger_result)
        rebuilt = FidelityScore.from_jsonable(
            json.loads(json.dumps(score.to_jsonable()))
        )
        assert rebuilt == score

    def test_service_mismatch_is_an_error(self, blogger_result):
        objective = default_objective("googleplus")
        with pytest.raises(CalibrationError, match="cannot score"):
            objective.evaluate(blogger_result)

    def test_empty_targets_are_rejected(self):
        with pytest.raises(CalibrationError, match="empty"):
            Objective(targets=ServiceTargets(service="x"))

    def test_missing_term_lookup_is_an_error(self, blogger_result):
        score = default_objective("blogger").evaluate(blogger_result)
        with pytest.raises(CalibrationError, match="no term"):
            score.term("prevalence.nope")


def scripted_evaluator(losses):
    """Evaluator returning scripted losses: losses[rung][candidate]."""
    def evaluate(rung, num_tests, candidates):
        return [
            TrialResult(
                trial_id=f"r{rung}/c{index:04d}", candidate=index,
                rung=rung, num_tests=num_tests, assignment=assignment,
                score=FidelityScore(service="blogger", terms=(),
                                    total=losses[rung][index]),
            )
            for index, assignment in candidates
        ]
    return evaluate


class TestSearchers:
    @pytest.fixture()
    def space(self):
        return default_space("blogger")  # 2x2 = 4 candidates

    def test_grid_ties_break_toward_lower_candidate(self, space):
        outcome = GridSearch(space, num_tests=2).run(
            scripted_evaluator({0: {0: 1.0, 1: 0.5, 2: 0.5, 3: 0.9}})
        )
        assert outcome.winner.candidate == 1
        assert len(outcome.trials) == space.size

    def test_halving_shields_the_baseline(self, space):
        # Candidate 0 is worst everywhere, yet rides along into every
        # rung; the search ends in a head-to-head it then loses.
        losses = {
            0: {0: 9.0, 1: 1.0, 2: 2.0, 3: 3.0},
            1: {0: 9.0, 1: 1.0, 2: 0.5},
        }
        searcher = SuccessiveHalving(space, base_tests=2, eta=2)
        outcome = searcher.run(scripted_evaluator(losses))
        assert outcome.winner.candidate == 2
        by_rung = {}
        for trial in outcome.trials:
            by_rung.setdefault(trial.rung, []).append(trial.candidate)
        assert all(0 in candidates
                   for candidates in by_rung.values())
        # Rung 1's survivor set ({0, 1, 2}) no longer shrinks, so it
        # is the final head-to-head; budgets multiply by eta per rung.
        assert sorted({t.num_tests for t in outcome.trials}) == [2, 4]
        # The baseline's highest-budget trial sits in the final rung,
        # so winner-vs-default comparisons are apples to apples.
        assert outcome.baseline_trial().num_tests == \
            outcome.winner.num_tests

    def test_halving_confirms_a_winning_baseline(self, space):
        losses = {
            0: {0: 0.1, 1: 1.0, 2: 2.0, 3: 3.0},
            1: {0: 0.1, 1: 1.0},
            2: {0: 0.1},
        }
        outcome = SuccessiveHalving(space, base_tests=2, eta=2).run(
            scripted_evaluator(losses)
        )
        assert outcome.winner.candidate == 0

    def test_make_searcher_rejects_unknown_kind(self, space):
        with pytest.raises(CalibrationError, match="unknown searcher"):
            make_searcher("annealing", space, num_tests=2)

    def test_constructor_validation(self, space):
        with pytest.raises(CalibrationError):
            SuccessiveHalving(space, base_tests=0)
        with pytest.raises(CalibrationError):
            SuccessiveHalving(space, eta=1)
        with pytest.raises(CalibrationError):
            GridSearch(space, num_tests=0)


class TestTrialStore:
    PAYLOAD = [{"trial_id": "r0/c0000", "candidate": 0}]

    def test_initialize_creates_layout(self, tmp_path):
        store = TrialStore(tmp_path / "store")
        store.initialize("k1")
        assert store.manifest_path.is_file()
        assert store.trials_dir.is_dir()
        assert store.search_key == "k1"
        assert store.completed_batches() == []

    def test_batch_roundtrip_through_fresh_handle(self, tmp_path):
        store = TrialStore(tmp_path)
        store.initialize("k1")
        store.write_batch("r0", 0, 2, self.PAYLOAD)
        reopened = TrialStore(tmp_path)
        assert reopened.batch_state("r0") == "complete"
        assert reopened.completed_batches() == ["r0"]
        assert reopened.load_batch("r0") == self.PAYLOAD

    def test_initialize_rejects_foreign_search(self, tmp_path):
        TrialStore(tmp_path).initialize("k1")
        with pytest.raises(CalibrationError, match="belongs to"):
            TrialStore(tmp_path).initialize("k2")

    def test_tampered_batch_is_corrupt(self, tmp_path):
        store = TrialStore(tmp_path)
        store.initialize("k1")
        store.write_batch("r0", 0, 2, self.PAYLOAD)
        path = store.batch_path("r0")
        path.write_bytes(path.read_bytes().replace(b"c0000", b"c9999"))
        assert store.batch_state("r0") == "corrupt"
        assert store.completed_batches() == []
        with pytest.raises(CalibrationError, match="corrupt"):
            store.load_batch("r0")

    def test_rewritten_but_uncommitted_batch_is_corrupt(self, tmp_path):
        # A batch file regenerated without a manifest commit (e.g. a
        # kill between the two steps) must not count as complete, even
        # though its own embedded digest is internally valid.
        store = TrialStore(tmp_path)
        store.initialize("k1")
        store.write_batch("r0", 0, 2, self.PAYLOAD)
        write_digest_jsonl(store.batch_path("r0"),
                           [{"trial_id": "r0/c0001", "candidate": 1}],
                           kind=TRIALS_KIND,
                           schema_version=TRIALS_SCHEMA_VERSION)
        assert store.batch_state("r0") == "corrupt"

    def test_deleted_batch_is_missing(self, tmp_path):
        store = TrialStore(tmp_path)
        store.initialize("k1")
        store.write_batch("r0", 0, 2, self.PAYLOAD)
        store.batch_path("r0").unlink()
        assert store.batch_state("r0") == "missing"

    def test_unknown_version_is_an_error(self, tmp_path):
        (tmp_path / "manifest.json").write_text(json.dumps(
            {"store_version": 99, "search_key": "k", "batches": {}}
        ))
        with pytest.raises(CalibrationError, match="version"):
            TrialStore(tmp_path).manifest

    def test_unreadable_manifest_is_an_error(self, tmp_path):
        (tmp_path / "manifest.json").write_text("{not json")
        with pytest.raises(CalibrationError, match="unreadable"):
            TrialStore(tmp_path).manifest


def run_blogger_grid(store_dir, jobs=1, on_message=None):
    return run_calibration(
        "blogger", searcher="grid", num_tests=2, jobs=jobs,
        base_config=SMALL, store_dir=store_dir,
        on_message=on_message,
    )


class TestSearchDeterminism:
    def test_serial_and_parallel_stores_are_byte_identical(
            self, tmp_path):
        serial = run_blogger_grid(tmp_path / "serial", jobs=1)
        parallel = run_blogger_grid(tmp_path / "parallel", jobs=4)
        assert serial.winner == parallel.winner
        assert serial.trials == parallel.trials
        serial_bytes = (tmp_path / "serial" / "trials"
                        / "r0.jsonl").read_bytes()
        parallel_bytes = (tmp_path / "parallel" / "trials"
                          / "r0.jsonl").read_bytes()
        assert serial_bytes == parallel_bytes

    def test_rerun_resumes_from_the_store(self, tmp_path):
        first = run_blogger_grid(tmp_path)
        messages = []
        second = run_blogger_grid(tmp_path, on_message=messages.append)
        assert second.winner == first.winner
        assert second.trials == first.trials
        assert any("[resumed from store]" in m for m in messages)

    def test_resume_after_damage_restores_identical_bytes(
            self, tmp_path):
        first = run_blogger_grid(tmp_path)
        batch = tmp_path / "trials" / "r0.jsonl"
        pristine = batch.read_bytes()
        # Kill mid-write: truncate the batch file.  The rung's fleet
        # store is still digest-valid, so the re-run rebuilds the
        # batch from completed shards instead of re-simulating.
        batch.write_bytes(pristine[:-7])
        assert TrialStore(tmp_path).batch_state("r0") == "corrupt"
        second = run_blogger_grid(tmp_path)
        assert second.winner == first.winner
        assert second.trials == first.trials
        assert batch.read_bytes() == pristine

    def test_store_is_bound_to_the_exact_search(self, tmp_path):
        run_blogger_grid(tmp_path)
        with pytest.raises(CalibrationError, match="belongs to"):
            run_calibration("blogger", searcher="grid", num_tests=3,
                            base_config=SMALL, store_dir=tmp_path)

    def test_cached_batch_must_match_the_request(self, tmp_path):
        run_blogger_grid(tmp_path)
        space = default_space("blogger")
        evaluator = FleetEvaluator(
            space=space, objective=default_objective("blogger"),
            base_config=SMALL, store=TrialStore(tmp_path),
        )
        with pytest.raises(CalibrationError, match="does not match"):
            evaluator(0, 2, [(1, space.assignment(1))])

    def test_evaluator_rejects_conflicting_config(self):
        space = default_space("blogger")
        with pytest.raises(CalibrationError, match="service_params"):
            FleetEvaluator(
                space=space,
                objective=default_objective("blogger"),
                base_config=CampaignConfig(
                    service_params=space.params({}),
                ),
            )


class TestWinnersAndReport:
    def test_calibrated_params_apply_the_assignment(self):
        params = calibrated_params("googleplus")
        assignment = CALIBRATED_ASSIGNMENTS["googleplus"]
        assert params.replication_eu.sync_interval == \
            assignment["replication_eu.sync_interval"]
        assert params.replication_us.sync_delay_median == \
            assignment["replication_us.sync_delay_median"]

    def test_every_service_has_winner_and_budget(self):
        assert set(CALIBRATED_ASSIGNMENTS) == set(target_services())
        assert set(FIDELITY_BUDGETS) == set(target_services())

    def test_unknown_service_has_no_profile(self):
        with pytest.raises(CalibrationError, match="no calibrated"):
            calibrated_params("myspace")

    def test_tables_and_json_roundtrip(self, tmp_path):
        result = run_campaign("blogger", SMALL)
        score = default_objective("blogger").evaluate(result)
        table = fidelity_table(score)
        assert "reads.test1" in table
        assert f"{score.total:.4f}" in table
        comparison = comparison_table(score, score)
        assert "default" in comparison and "calibrated" in comparison
        path = write_fidelity_json(tmp_path / "fidelity.json",
                                   {"blogger": score},
                                   extra={"seed": 0})
        document = json.loads(path.read_text())
        assert document["extra"] == {"seed": 0}
        rebuilt = FidelityScore.from_jsonable(
            document["scores"]["blogger"]
        )
        assert rebuilt == score


class TestCli:
    def test_calibrate_subcommand_end_to_end(self, tmp_path, capsys):
        store_dir = tmp_path / "trials"
        fidelity = tmp_path / "fidelity.json"
        code = repro_main([
            "calibrate", "--service", "blogger",
            "--searcher", "grid", "--tests", "2",
            "--store-out", str(store_dir),
            "--calibrate-out", str(fidelity),
            "--quiet",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "Calibration winner for blogger" in out
        assert (store_dir / "trials" / "r0.jsonl").is_file()
        document = json.loads(fidelity.read_text())
        assert document["extra"]["service"] == "blogger"
        assert "blogger.calibrated" in document["scores"]
