"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_requires_service_or_scenario(self):
        # --service became optional when --scenario arrived, so the
        # exactly-one check happens in the handler, not argparse.
        assert main(["run"]) == 2
        assert main(["run", "--service", "blogger", "--scenario",
                     "examples/scenarios/blogger.toml"]) == 2

    def test_run_rejects_unknown_service(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--service", "myspace"])

    def test_defaults(self):
        args = build_parser().parse_args(["run", "--service", "blogger"])
        assert args.tests == 50
        assert args.seed == 0
        assert args.gap == 15.0


class TestCommands:
    def test_run_prints_summary(self, capsys):
        code = main(["run", "--service", "blogger", "--tests", "2",
                     "--seed", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "service: blogger" in out
        assert "read_your_writes" in out
        assert "tests:   4" in out

    def test_figures_single_service(self, capsys):
        code = main(["figures", "--services", "blogger", "--tests", "2",
                     "--seed", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Figure 3" in out
        assert "Figure 9" in out

    def test_figures_rejects_unknown_service(self, capsys):
        code = main(["figures", "--services", "blogger,myspace",
                     "--tests", "2"])
        assert code == 2
        assert "unknown services" in capsys.readouterr().err

    def test_figures_accepts_extension_service(self, capsys):
        # The run subcommand accepts extension services; figures must
        # not reject them.
        code = main(["figures", "--services", "quorum_kv",
                     "--tests", "2", "--seed", "1"])
        assert code == 0
        assert "quorum_kv" in capsys.readouterr().out

    def test_figures_parallel_matches_serial(self, capsys):
        code = main(["figures", "--services", "blogger,googleplus",
                     "--tests", "2", "--seed", "1"])
        assert code == 0
        serial_out = capsys.readouterr().out
        code = main(["figures", "--services", "blogger,googleplus",
                     "--tests", "2", "--seed", "1", "--jobs", "2"])
        assert code == 0
        assert capsys.readouterr().out == serial_out

    def test_fleet_runs_and_resumes(self, capsys, tmp_path):
        argv = ["fleet", "--services", "blogger", "--seeds", "1,2",
                "--tests", "2", "--jobs", "2",
                "--out", str(tmp_path / "store")]
        code = main(argv)
        assert code == 0
        out = capsys.readouterr().out
        assert "fleet: 2 shards on 2 worker(s)" in out
        assert "Fleet summary" in out
        assert "read_your_writes" in out
        signature = [line for line in out.splitlines()
                     if "signature" in line]
        code = main(argv)
        assert code == 0
        resumed = capsys.readouterr().out
        assert "2 resumed from store" in resumed
        assert "skipped: complete in store" in resumed
        assert "(0 executed, 2 skipped, 0 retries)" in resumed
        assert [line for line in resumed.splitlines()
                if "signature" in line] == signature

    def test_fleet_derives_seeds(self, capsys):
        code = main(["fleet", "--services", "blogger",
                     "--replicates", "2", "--tests", "2", "--quiet"])
        assert code == 0
        out = capsys.readouterr().out
        assert "fleet:" not in out  # telemetry suppressed
        assert "anomaly prevalence over 2 seed(s)" in out

    def test_fleet_rejects_unknown_service(self, capsys):
        code = main(["fleet", "--services", "myspace", "--tests", "2"])
        assert code == 2
        assert "unknown services" in capsys.readouterr().err

    def test_run_with_output_then_report(self, capsys, tmp_path):
        saved = tmp_path / "blogger.json"
        code = main(["run", "--service", "blogger", "--tests", "2",
                     "--seed", "1", "--output", str(saved)])
        assert code == 0
        assert saved.exists()
        capsys.readouterr()
        code = main(["report", str(saved)])
        assert code == 0
        out = capsys.readouterr().out
        assert "Figure 3" in out
        assert "blogger" in out

    def test_clocksync_reports_bounded_errors(self, capsys):
        code = main(["clocksync", "--seed", "4", "--samples", "6"])
        assert code == 0
        out = capsys.readouterr().out
        lines = [line for line in out.splitlines()
                 if line.strip().startswith(("oregon", "tokyo",
                                             "ireland"))]
        assert len(lines) == 3
        for line in lines:
            parts = line.split()
            error, bound = float(parts[3]), float(parts[4])
            assert error <= bound
