"""Tests for the Cristian-style clock-delta estimation protocol."""

import pytest

from repro.clocksync import (
    DeltaEstimate,
    estimate_clock_delta,
    make_time_query_handler,
)
from repro.errors import ConfigurationError
from repro.net import (
    OREGON,
    VIRGINIA,
    JitterParams,
    LatencyModel,
    Network,
    paper_topology,
)
from repro.sim import DriftingClock, RandomSource, Simulator, spawn


def make_sync_world(agent_offset=2.5, agent_drift=0.0, sigma=0.1,
                    seed=1):
    sim = Simulator()
    topo = paper_topology()
    topo.place_host("coordinator", VIRGINIA)
    topo.place_host("agent", OREGON)
    rng = RandomSource(seed=seed)
    net = Network(sim, LatencyModel(topo, rng.child("net"),
                                    JitterParams(sigma=sigma)))
    coordinator_clock = DriftingClock(sim, offset=-1.0, drift_ppm=5.0)
    agent_clock = DriftingClock(sim, offset=agent_offset,
                                drift_ppm=agent_drift)
    net.attach("coordinator")
    net.attach("agent", rpc_handler=make_time_query_handler(agent_clock))
    return sim, net, coordinator_clock, agent_clock


def run_estimation(sim, net, coordinator_clock, samples=8):
    process = spawn(
        sim, estimate_clock_delta, net, "coordinator",
        coordinator_clock, "agent", samples=samples,
    )
    sim.run()
    return process.completion.value


class TestEstimation:
    def test_estimate_recovers_true_delta(self):
        sim, net, coord_clock, agent_clock = make_sync_world()
        estimate = run_estimation(sim, net, coord_clock)
        true_delta = agent_clock.now() - coord_clock.now()
        assert abs(estimate.delta - true_delta) < estimate.uncertainty

    def test_uncertainty_is_half_mean_rtt(self):
        sim, net, coord_clock, _ = make_sync_world(sigma=0.0)
        estimate = run_estimation(sim, net, coord_clock)
        # Paper RTT Virginia-Oregon is 136ms; zero jitter makes the
        # measured RTT exact (in coordinator-clock units).
        assert estimate.uncertainty == pytest.approx(0.068, rel=0.01)
        assert estimate.mean_rtt == pytest.approx(0.136, rel=0.01)

    def test_correct_maps_local_to_reference(self):
        estimate = DeltaEstimate(agent_host="a", delta=2.0,
                                 uncertainty=0.1, mean_rtt=0.2,
                                 samples=4)
        assert estimate.correct(12.0) == pytest.approx(10.0)

    def test_sample_count_respected(self):
        sim, net, coord_clock, _ = make_sync_world()
        estimate = run_estimation(sim, net, coord_clock, samples=3)
        assert estimate.samples == 3

    def test_zero_samples_rejected(self):
        sim, net, coord_clock, _ = make_sync_world()
        with pytest.raises(ConfigurationError):
            list(estimate_clock_delta(net, "coordinator", coord_clock,
                                      "agent", samples=0))

    def test_error_grows_with_jitter_but_stays_bounded(self):
        errors = []
        for sigma in (0.0, 0.3):
            sim, net, coord_clock, agent_clock = make_sync_world(
                sigma=sigma, seed=5
            )
            estimate = run_estimation(sim, net, coord_clock, samples=10)
            true_delta = agent_clock.now() - coord_clock.now()
            error = abs(estimate.delta - true_delta)
            errors.append(error)
            assert error < estimate.uncertainty * 2
        assert errors[0] <= errors[1]

    def test_drifting_agent_clock_is_tracked(self):
        sim, net, coord_clock, agent_clock = make_sync_world(
            agent_drift=40.0
        )
        sim.run_until(3600.0)  # let drift accumulate ~0.14s
        estimate = run_estimation(sim, net, coord_clock)
        true_delta = agent_clock.now() - coord_clock.now()
        assert abs(estimate.delta - true_delta) < 0.05


class TestTimeQueryHandler:
    def test_returns_local_time(self):
        sim = Simulator()
        clock = DriftingClock(sim, offset=7.0)
        handler = make_time_query_handler(clock)
        sim.run_until(3.0)
        reply = handler({"kind": "time_query"}, "coordinator")
        assert reply["local_time"] == pytest.approx(10.0)

    def test_rejects_unknown_payload(self):
        sim = Simulator()
        handler = make_time_query_handler(DriftingClock(sim))
        with pytest.raises(ValueError):
            handler({"kind": "teapot"}, "x")
