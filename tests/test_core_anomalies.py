"""Unit tests for the six anomaly checkers, including the paper's own
worked examples from §IV ("The output of running this test...")."""

import pytest

from repro.core.anomalies import (
    CONTENT_DIVERGENCE,
    MONOTONIC_READS,
    MONOTONIC_WRITES,
    ORDER_DIVERGENCE,
    READ_YOUR_WRITES,
    WRITES_FOLLOW_READS,
    ContentDivergenceChecker,
    MonotonicReadsChecker,
    MonotonicWritesChecker,
    OrderDivergenceChecker,
    ReadYourWritesChecker,
    WritesFollowReadsChecker,
    check_all,
    first_inversion,
    views_content_diverged,
    views_order_diverged,
)

from tests.helpers import make_trace, read, write


class TestReadYourWrites:
    def test_read_missing_own_write_is_anomalous(self):
        # Paper §IV: "Agent 1 writes M1 ... and in a subsequent read
        # operation M1 is missing."
        trace = make_trace([
            write("oregon", "M1", 0.0),
            read("oregon", (), 1.0),
        ])
        (obs,) = ReadYourWritesChecker().check(trace)
        assert obs.anomaly == READ_YOUR_WRITES
        assert obs.agent == "oregon"
        assert obs.details["missing"] == ("M1",)

    def test_read_seeing_own_writes_is_clean(self):
        trace = make_trace([
            write("oregon", "M1", 0.0),
            write("oregon", "M2", 1.0),
            read("oregon", ("M1", "M2"), 2.0),
        ])
        assert ReadYourWritesChecker().check(trace) == []

    def test_only_completed_writes_count(self):
        # Read invoked before the write's response: not anomalous.
        trace = make_trace([
            write("oregon", "M1", 0.0, response=2.0),
            read("oregon", (), 1.0),
        ])
        assert ReadYourWritesChecker().check(trace) == []

    def test_other_agents_reads_are_irrelevant(self):
        trace = make_trace([
            write("oregon", "M1", 0.0),
            read("tokyo", (), 5.0),
        ])
        assert ReadYourWritesChecker().check(trace) == []

    def test_one_observation_per_bad_read(self):
        trace = make_trace([
            write("oregon", "M1", 0.0),
            read("oregon", (), 1.0),
            read("oregon", (), 2.0),
            read("oregon", ("M1",), 3.0),
        ])
        assert len(ReadYourWritesChecker().check(trace)) == 2

    def test_order_in_read_does_not_matter_for_ryw(self):
        trace = make_trace([
            write("oregon", "M1", 0.0),
            write("oregon", "M2", 1.0),
            read("oregon", ("M2", "M1"), 2.0),
        ])
        assert ReadYourWritesChecker().check(trace) == []


class TestMonotonicWrites:
    def test_missing_earlier_write_is_anomalous(self):
        # Paper §IV: "Agent 1 writes M1 and M2, and afterwards that
        # agent ... observes only the effects of M2".
        trace = make_trace([
            write("oregon", "M1", 0.0),
            write("oregon", "M2", 1.0),
            read("oregon", ("M2",), 2.0),
        ])
        (obs,) = MonotonicWritesChecker().check(trace)
        assert obs.anomaly == MONOTONIC_WRITES
        assert obs.details["missing"] == ("M1",)
        assert obs.details["writer"] == "oregon"

    def test_reversed_order_is_anomalous(self):
        # "... or observes the effect of both writes in a different
        # order."
        trace = make_trace([
            write("oregon", "M1", 0.0),
            write("oregon", "M2", 1.0),
            read("oregon", ("M2", "M1"), 2.0),
        ])
        (obs,) = MonotonicWritesChecker().check(trace)
        assert obs.details["reordered"] == (("M1", "M2"),)

    def test_any_agent_can_observe_the_violation(self):
        trace = make_trace([
            write("oregon", "M1", 0.0),
            write("oregon", "M2", 1.0),
            read("tokyo", ("M2", "M1"), 2.0),
        ])
        (obs,) = MonotonicWritesChecker().check(trace)
        assert obs.agent == "tokyo"
        assert obs.details["writer"] == "oregon"

    def test_prefix_visibility_is_clean(self):
        # Seeing only the earlier write is fine: the later one imposes
        # no constraint until it is visible.
        trace = make_trace([
            write("oregon", "M1", 0.0),
            write("oregon", "M2", 1.0),
            read("oregon", ("M1",), 2.0),
        ])
        assert MonotonicWritesChecker().check(trace) == []

    def test_interleaved_foreign_writes_are_ignored(self):
        trace = make_trace([
            write("oregon", "M1", 0.0),
            write("tokyo", "M2", 0.5),
            write("oregon", "M3", 1.0),
            read("ireland", ("M2", "M1", "M3"), 2.0),
        ])
        assert MonotonicWritesChecker().check(trace) == []

    def test_writes_after_read_invocation_are_ignored(self):
        # A read invoked before the second write completed cannot
        # violate the order of that pair.
        trace = make_trace([
            write("oregon", "M1", 0.0),
            read("oregon", (), 1.0),
            write("oregon", "M2", 2.0),
        ])
        assert MonotonicWritesChecker().check(trace) == []

    def test_one_observation_per_read_and_writer(self):
        trace = make_trace([
            write("oregon", "M1", 0.0),
            write("oregon", "M2", 1.0),
            write("tokyo", "M3", 0.0),
            write("tokyo", "M4", 1.0),
            read("ireland", ("M2", "M4"), 2.0),  # misses M1 and M3
        ])
        observations = MonotonicWritesChecker().check(trace)
        assert len(observations) == 2
        assert {obs.details["writer"] for obs in observations} == {
            "oregon", "tokyo",
        }


class TestMonotonicReads:
    def test_vanishing_message_is_anomalous(self):
        # Paper §IV: "any agent observes the effect of a message M and
        # in a subsequent read ... M is no longer observed."
        trace = make_trace([
            write("tokyo", "M1", 0.0),
            read("oregon", ("M1",), 1.0),
            read("oregon", (), 2.0),
        ])
        (obs,) = MonotonicReadsChecker().check(trace)
        assert obs.anomaly == MONOTONIC_READS
        assert obs.details["missing"] == ("M1",)

    def test_growing_views_are_clean(self):
        trace = make_trace([
            write("tokyo", "M1", 0.0),
            write("tokyo", "M2", 1.0),
            read("oregon", (), 0.5),
            read("oregon", ("M1",), 1.5),
            read("oregon", ("M1", "M2"), 2.5),
        ])
        assert MonotonicReadsChecker().check(trace) == []

    def test_never_seen_message_is_not_a_violation(self):
        # MR differs from MW: the missing write must have been observed
        # first (the paper calls this "the subtle difference").
        trace = make_trace([
            write("tokyo", "M1", 0.0),
            read("oregon", (), 1.0),
            read("oregon", (), 2.0),
        ])
        assert MonotonicReadsChecker().check(trace) == []

    def test_reappearing_message_counts_once_per_gap(self):
        trace = make_trace([
            write("tokyo", "M1", 0.0),
            read("oregon", ("M1",), 1.0),
            read("oregon", (), 2.0),       # violation
            read("oregon", ("M1",), 3.0),  # back again: clean
            read("oregon", (), 4.0),       # violation again
        ])
        assert len(MonotonicReadsChecker().check(trace)) == 2

    def test_sessions_are_independent(self):
        trace = make_trace([
            write("tokyo", "M1", 0.0),
            read("oregon", ("M1",), 1.0),
            read("tokyo", (), 2.0),  # tokyo never saw M1: clean
        ])
        assert MonotonicReadsChecker().check(trace) == []


class TestWritesFollowReads:
    def test_paper_trigger_example(self):
        # Paper §IV: a violation occurs when any agent "observes M3
        # without observing M2".
        trace = make_trace(
            [
                write("oregon", "M2", 0.0),
                read("tokyo", ("M2",), 1.0),
                write("tokyo", "M3", 2.0),
                read("ireland", ("M3",), 3.0),  # M3 without M2
            ],
            wfr_triggers={"M3": frozenset({"M2"})},
        )
        (obs,) = WritesFollowReadsChecker().check(trace)
        assert obs.anomaly == WRITES_FOLLOW_READS
        assert obs.agent == "ireland"
        assert obs.details["write"] == "M3"
        assert obs.details["missing_dependencies"] == ("M2",)

    def test_dependency_present_is_clean(self):
        trace = make_trace(
            [
                write("oregon", "M2", 0.0),
                read("tokyo", ("M2",), 1.0),
                write("tokyo", "M3", 2.0),
                read("ireland", ("M2", "M3"), 3.0),
            ],
            wfr_triggers={"M3": frozenset({"M2"})},
        )
        assert WritesFollowReadsChecker().check(trace) == []

    def test_invisible_dependent_write_is_clean(self):
        # Not seeing M3 at all imposes no constraint.
        trace = make_trace(
            [
                write("oregon", "M2", 0.0),
                read("tokyo", ("M2",), 1.0),
                write("tokyo", "M3", 2.0),
                read("ireland", (), 3.0),
            ],
            wfr_triggers={"M3": frozenset({"M2"})},
        )
        assert WritesFollowReadsChecker().check(trace) == []

    def test_generic_mode_derives_dependencies(self):
        # No trigger map: M3's dependencies come from tokyo's prior read.
        trace = make_trace([
            write("oregon", "M2", 0.0),
            read("tokyo", ("M2",), 1.0),
            write("tokyo", "M3", 2.0),
            read("ireland", ("M3",), 3.0),
        ])
        (obs,) = WritesFollowReadsChecker().check(trace)
        assert obs.details["missing_dependencies"] == ("M2",)

    def test_own_reader_can_also_violate(self):
        # Even the author's own later read may expose the anomaly.
        trace = make_trace(
            [
                write("oregon", "M2", 0.0),
                read("tokyo", ("M2",), 1.0),
                write("tokyo", "M3", 2.0),
                read("tokyo", ("M3",), 3.0),
            ],
            wfr_triggers={"M3": frozenset({"M2"})},
        )
        (obs,) = WritesFollowReadsChecker().check(trace)
        assert obs.agent == "tokyo"

    def test_no_dependent_writes_short_circuits(self):
        trace = make_trace([
            write("oregon", "M1", 0.0),
            read("tokyo", ("M1",), 1.0),
        ])
        assert WritesFollowReadsChecker().check(trace) == []


class TestContentDivergence:
    def test_cross_missing_writes_are_divergent(self):
        # Paper §IV: "an Agent observes a sequence ... containing only
        # M1 and another Agent sees only M2."
        trace = make_trace([
            write("oregon", "M1", 0.0),
            write("tokyo", "M2", 0.0),
            read("oregon", ("M1",), 1.0),
            read("tokyo", ("M2",), 1.0),
        ])
        (obs,) = ContentDivergenceChecker().check(trace)
        assert obs.anomaly == CONTENT_DIVERGENCE
        assert obs.pair == ("oregon", "tokyo")
        assert obs.details["example"]["left_only"] == ("M1",)
        assert obs.details["example"]["right_only"] == ("M2",)

    def test_subset_views_are_not_divergent(self):
        # One-directional staleness is not content divergence.
        trace = make_trace([
            write("oregon", "M1", 0.0),
            write("tokyo", "M2", 0.5),
            read("oregon", ("M1", "M2"), 1.0),
            read("tokyo", ("M1",), 1.0),
        ])
        assert ContentDivergenceChecker().check(trace) == []

    def test_one_observation_per_pair_with_count(self):
        trace = make_trace([
            write("oregon", "M1", 0.0),
            write("tokyo", "M2", 0.0),
            read("oregon", ("M1",), 1.0),
            read("oregon", ("M1",), 2.0),
            read("tokyo", ("M2",), 1.0),
            read("tokyo", ("M2",), 2.0),
        ])
        (obs,) = ContentDivergenceChecker().check(trace)
        assert obs.details["divergent_read_pairs"] == 4

    def test_all_pairs_are_checked(self):
        trace = make_trace([
            write("oregon", "M1", 0.0),
            write("tokyo", "M2", 0.0),
            write("ireland", "M3", 0.0),
            read("oregon", ("M1",), 1.0),
            read("tokyo", ("M2",), 1.0),
            read("ireland", ("M3",), 1.0),
        ])
        observations = ContentDivergenceChecker().check(trace)
        assert {obs.pair for obs in observations} == {
            ("oregon", "tokyo"),
            ("ireland", "oregon"),
            ("ireland", "tokyo"),
        }

    def test_paper_zero_window_case_still_detects_divergence(self):
        # The §IV example: views never coexist, yet the anomaly holds.
        trace = make_trace([
            write("oregon", "M1", 0.0),
            write("tokyo", "M2", 0.0),
            read("oregon", ("M1",), 1.0),            # t1
            read("oregon", ("M1", "M2"), 2.0),        # t2
            read("tokyo", ("M2",), 3.0),              # t3
            read("tokyo", ("M1", "M2"), 4.0),         # t4
        ])
        observations = ContentDivergenceChecker().check(trace)
        assert len(observations) == 1

    def test_predicate_helper(self):
        assert views_content_diverged(("M1",), ("M2",))
        assert not views_content_diverged(("M1",), ("M1", "M2"))
        assert not views_content_diverged((), ("M1",))


class TestOrderDivergence:
    def test_inverted_pair_is_divergent(self):
        # Paper §IV: "an Agent sees the sequence (M2,M1) and another
        # Agent sees the sequence (M1,M2)."
        trace = make_trace([
            write("oregon", "M1", 0.0),
            write("tokyo", "M2", 0.0),
            read("oregon", ("M2", "M1"), 1.0),
            read("tokyo", ("M1", "M2"), 1.0),
        ])
        (obs,) = OrderDivergenceChecker().check(trace)
        assert obs.anomaly == ORDER_DIVERGENCE
        assert obs.pair == ("oregon", "tokyo")
        assert set(obs.details["example"]["inverted"]) == {"M1", "M2"}

    def test_same_order_with_gaps_is_clean(self):
        trace = make_trace([
            write("oregon", "M1", 0.0),
            write("tokyo", "M2", 0.2),
            write("ireland", "M3", 0.4),
            read("oregon", ("M1", "M3"), 1.0),
            read("tokyo", ("M1", "M2", "M3"), 1.0),
        ])
        assert OrderDivergenceChecker().check(trace) == []

    def test_disjoint_views_are_clean(self):
        trace = make_trace([
            write("oregon", "M1", 0.0),
            write("tokyo", "M2", 0.0),
            read("oregon", ("M1",), 1.0),
            read("tokyo", ("M2",), 1.0),
        ])
        assert OrderDivergenceChecker().check(trace) == []

    def test_single_common_message_is_clean(self):
        trace = make_trace([
            write("oregon", "M1", 0.0),
            write("tokyo", "M2", 0.0),
            write("ireland", "M3", 0.0),
            read("oregon", ("M1", "M2"), 1.0),
            read("tokyo", ("M2", "M3"), 1.0),
        ])
        assert OrderDivergenceChecker().check(trace) == []

    def test_first_inversion_helper(self):
        assert first_inversion(("A", "B"), ("B", "A")) == ("A", "B")
        assert first_inversion(("A", "B"), ("A", "B")) is None
        assert first_inversion(("A", "X", "B"), ("B", "A")) == ("A", "B")
        assert first_inversion((), ()) is None

    def test_views_order_diverged_helper(self):
        assert views_order_diverged(("A", "B", "C"), ("C", "A"))
        assert not views_order_diverged(("A", "B", "C"), ("A", "C"))


class TestCheckAll:
    def test_clean_strongly_consistent_trace_has_no_anomalies(self):
        # Views grow along a single total order: every checker is quiet.
        trace = make_trace([
            write("oregon", "M1", 0.0),
            read("oregon", ("M1",), 0.5),
            write("tokyo", "M2", 1.0),
            read("tokyo", ("M1", "M2"), 1.5),
            read("oregon", ("M1", "M2"), 2.0),
            read("ireland", ("M1", "M2"), 2.0),
        ])
        report = check_all(trace)
        assert all(count == 0 for count in report.summary().values())

    def test_report_accessors(self):
        trace = make_trace([
            write("oregon", "M1", 0.0),
            read("oregon", (), 1.0),        # RYW violation
            write("tokyo", "M2", 0.0),
            read("tokyo", ("M2",), 1.0),
            read("oregon", ("M1",), 2.0),
        ])
        report = check_all(trace)
        assert report.has(READ_YOUR_WRITES)
        assert report.count(READ_YOUR_WRITES) == 1
        assert report.count_by_agent(READ_YOUR_WRITES)["oregon"] == 1
        assert report.agents_observing(READ_YOUR_WRITES) == {"oregon"}
        assert report.has(CONTENT_DIVERGENCE)
        assert report.diverged_pairs(CONTENT_DIVERGENCE) == {
            ("oregon", "tokyo"),
        }

    def test_diverged_pairs_rejects_session_anomaly(self):
        trace = make_trace([])
        report = check_all(trace)
        with pytest.raises(ValueError):
            report.diverged_pairs(READ_YOUR_WRITES)
