"""Unit + property tests for CDFs and occurrence buckets."""

import pytest
from hypothesis import given, strategies as st

from repro.core.metrics import (
    DEFAULT_BUCKETS,
    EmpiricalCDF,
    OccurrenceBuckets,
    percentile,
    summarize,
)
from repro.errors import AnalysisError


class TestEmpiricalCDF:
    def test_basic_evaluation(self):
        cdf = EmpiricalCDF.from_samples([1.0, 2.0, 3.0, 4.0])
        assert cdf(0.5) == 0.0
        assert cdf(1.0) == 0.25
        assert cdf(2.5) == 0.5
        assert cdf(4.0) == 1.0
        assert cdf(100.0) == 1.0

    def test_duplicate_samples(self):
        cdf = EmpiricalCDF.from_samples([1.0, 1.0, 2.0])
        assert cdf(1.0) == pytest.approx(2 / 3)

    def test_empty_samples_rejected(self):
        with pytest.raises(AnalysisError):
            EmpiricalCDF.from_samples([])

    def test_quantile(self):
        cdf = EmpiricalCDF.from_samples([10.0, 20.0, 30.0, 40.0])
        assert cdf.quantile(0.25) == 10.0
        assert cdf.quantile(0.5) == 20.0
        assert cdf.quantile(1.0) == 40.0
        assert cdf.median == 20.0

    def test_quantile_bounds(self):
        cdf = EmpiricalCDF.from_samples([1.0])
        with pytest.raises(AnalysisError):
            cdf.quantile(0.0)
        with pytest.raises(AnalysisError):
            cdf.quantile(1.5)

    def test_series_is_plot_ready(self):
        cdf = EmpiricalCDF.from_samples([1.0, 1.0, 3.0])
        assert cdf.series() == [(1.0, pytest.approx(2 / 3)),
                                (3.0, pytest.approx(1.0))]

    @given(st.lists(st.floats(0, 1e6), min_size=1, max_size=50))
    def test_cdf_is_monotone_property(self, samples):
        cdf = EmpiricalCDF.from_samples(samples)
        points = [cdf(x) for x, _ in cdf.series()]
        assert points == sorted(points)
        assert cdf.series()[-1][1] == pytest.approx(1.0)

    @given(st.lists(st.floats(0, 100), min_size=1, max_size=50),
           st.floats(0.01, 1.0))
    def test_quantile_inverts_cdf_property(self, samples, q):
        cdf = EmpiricalCDF.from_samples(samples)
        assert cdf(cdf.quantile(q)) >= q - 1e-9


class TestOccurrenceBuckets:
    def test_default_labels_match_paper_figures(self):
        assert DEFAULT_BUCKETS.labels == ("1", "2", "3-10", ">10")

    def test_bucket_of(self):
        assert DEFAULT_BUCKETS.bucket_of(1) == "1"
        assert DEFAULT_BUCKETS.bucket_of(2) == "2"
        assert DEFAULT_BUCKETS.bucket_of(3) == "3-10"
        assert DEFAULT_BUCKETS.bucket_of(10) == "3-10"
        assert DEFAULT_BUCKETS.bucket_of(11) == ">10"
        assert DEFAULT_BUCKETS.bucket_of(10_000) == ">10"

    def test_zero_count_rejected(self):
        with pytest.raises(AnalysisError):
            DEFAULT_BUCKETS.bucket_of(0)

    def test_histogram(self):
        histogram = DEFAULT_BUCKETS.histogram([1, 1, 2, 5, 11])
        assert histogram == {"1": 2, "2": 1, "3-10": 1, ">10": 1}

    def test_validation(self):
        with pytest.raises(AnalysisError):
            OccurrenceBuckets(bounds=())
        with pytest.raises(AnalysisError):
            OccurrenceBuckets(bounds=(2, 2))
        with pytest.raises(AnalysisError):
            OccurrenceBuckets(bounds=(0,))

    @given(st.integers(1, 10_000))
    def test_every_count_lands_in_exactly_one_bucket(self, count):
        label = DEFAULT_BUCKETS.bucket_of(count)
        assert label in DEFAULT_BUCKETS.labels


class TestSummaries:
    def test_percentile_helper(self):
        assert percentile([5.0, 1.0, 3.0], 0.5) == 3.0

    def test_summarize(self):
        stats = summarize([1.0, 2.0, 3.0, 4.0])
        assert stats["count"] == 4.0
        assert stats["mean"] == pytest.approx(2.5)
        assert stats["median"] == 2.0
        assert stats["min"] == 1.0
        assert stats["max"] == 4.0

    def test_summarize_empty_rejected(self):
        with pytest.raises(AnalysisError):
            summarize([])
