"""Unit tests for the operation-trace model."""

import pytest

from repro.core import ReadOp, TestTrace, WriteOp
from repro.errors import AnalysisError

from tests.helpers import make_trace, read, write


class TestOperations:
    def test_write_rejects_response_before_invoke(self):
        with pytest.raises(AnalysisError):
            WriteOp(agent="a", message_id="M1",
                    invoke_local=5.0, response_local=4.0)

    def test_read_rejects_response_before_invoke(self):
        with pytest.raises(AnalysisError):
            ReadOp(agent="a", observed=(), invoke_local=5.0,
                   response_local=4.0)

    def test_read_rejects_duplicate_ids(self):
        with pytest.raises(AnalysisError):
            ReadOp(agent="a", observed=("M1", "M1"),
                   invoke_local=0.0, response_local=1.0)

    def test_read_saw_and_position(self):
        op = read("oregon", ("M1", "M2"), 0.0)
        assert op.saw("M2")
        assert not op.saw("M9")
        assert op.position("M2") == 1

    def test_is_write_discriminator(self):
        assert write("oregon", "M1", 0.0).is_write
        assert not read("oregon", (), 0.0).is_write


class TestTraceViews:
    def make_simple_trace(self):
        return make_trace([
            write("oregon", "M1", 1.0),
            write("tokyo", "M2", 2.0),
            read("oregon", ("M1",), 1.5),
            read("oregon", ("M1", "M2"), 3.0),
            read("tokyo", ("M2",), 2.5),
        ])

    def test_record_rejects_unknown_agent(self):
        trace = make_trace([])
        with pytest.raises(AnalysisError, match="unknown agent"):
            trace.record(write("mars", "M1", 0.0))

    def test_writes_sorted_by_corrected_invoke(self):
        trace = self.make_simple_trace()
        assert [w.message_id for w in trace.writes()] == ["M1", "M2"]

    def test_reads_by_agent_in_session_order(self):
        trace = self.make_simple_trace()
        reads = trace.reads_by("oregon")
        assert [r.observed for r in reads] == [("M1",), ("M1", "M2")]

    def test_writes_by_agent(self):
        trace = self.make_simple_trace()
        assert [w.message_id for w in trace.writes_by("tokyo")] == ["M2"]
        assert trace.writes_by("ireland") == []

    def test_session_interleaves_reads_and_writes(self):
        trace = self.make_simple_trace()
        kinds = [op.is_write for op in trace.session("oregon")]
        assert kinds == [True, False, False]

    def test_message_ids_and_author(self):
        trace = self.make_simple_trace()
        assert trace.message_ids() == {"M1", "M2"}
        assert trace.author_of("M2") == "tokyo"
        with pytest.raises(AnalysisError):
            trace.author_of("M99")

    def test_agent_pairs_stable_order(self):
        trace = self.make_simple_trace()
        assert list(trace.agent_pairs()) == [
            ("oregon", "tokyo"),
            ("oregon", "ireland"),
            ("tokyo", "ireland"),
        ]

    def test_len_counts_operations(self):
        assert len(self.make_simple_trace()) == 5


class TestClockCorrection:
    def test_corrected_subtracts_delta(self):
        trace = make_trace(
            [read("oregon", (), 10.0)],
            clock_deltas={"oregon": 2.0},
        )
        op = trace.reads()[0]
        # local = reference + delta  =>  reference = local - delta
        assert trace.corrected_invoke(op) == pytest.approx(8.0)
        assert trace.corrected_response(op) == pytest.approx(8.1)

    def test_missing_delta_defaults_to_zero(self):
        trace = make_trace([read("oregon", (), 10.0)])
        assert trace.corrected("oregon", 10.0) == 10.0

    def test_cross_agent_ordering_uses_deltas(self):
        # tokyo's clock runs 100s ahead; corrected order must flip.
        trace = make_trace(
            [
                write("oregon", "M1", 50.0),
                write("tokyo", "M2", 101.0),
            ],
            clock_deltas={"tokyo": 100.0},
        )
        assert [w.message_id for w in trace.writes()] == ["M2", "M1"]


class TestDependencies:
    def test_trigger_map_wins(self):
        trace = make_trace(
            [
                write("oregon", "M1", 0.0),
                read("tokyo", ("M1",), 1.0),
                write("tokyo", "M2", 2.0),
            ],
            wfr_triggers={"M2": frozenset({"M1"})},
        )
        (m2,) = trace.writes_by("tokyo")
        assert trace.dependencies_of(m2) == frozenset({"M1"})

    def test_trigger_map_empty_for_unlisted_write(self):
        trace = make_trace(
            [write("oregon", "M1", 0.0)],
            wfr_triggers={"M9": frozenset({"M1"})},
        )
        (m1,) = trace.writes_by("oregon")
        assert trace.dependencies_of(m1) == frozenset()

    def test_generic_mode_uses_prior_reads(self):
        trace = make_trace([
            write("oregon", "M1", 0.0),
            read("tokyo", ("M1",), 1.0),          # completes at 1.1
            write("tokyo", "M2", 2.0),            # after the read
            read("tokyo", ("M1", "M2"), 3.0),     # after the write
            write("tokyo", "M3", 4.0),
        ])
        m2, m3 = trace.writes_by("tokyo")
        assert trace.dependencies_of(m2) == frozenset({"M1"})
        # M3 depends on M1 and M2 (observed) but never on itself.
        assert trace.dependencies_of(m3) == frozenset({"M1", "M2"})

    def test_generic_mode_ignores_reads_completing_after_write(self):
        trace = make_trace([
            write("oregon", "M1", 0.0),
            read("tokyo", ("M1",), 5.0),   # completes at 5.1
            write("tokyo", "M2", 5.05),    # invoked before read completed
        ])
        (m2,) = trace.writes_by("tokyo")
        assert trace.dependencies_of(m2) == frozenset()


class TestValidation:
    def test_valid_trace_passes(self):
        trace = make_trace([
            write("oregon", "M1", 0.0),
            read("tokyo", ("M1",), 1.0),
        ])
        trace.validate()

    def test_duplicate_write_id_rejected(self):
        trace = make_trace([
            write("oregon", "M1", 0.0),
            write("tokyo", "M1", 1.0),
        ])
        with pytest.raises(AnalysisError, match="written twice"):
            trace.validate()

    def test_read_of_unknown_message_rejected(self):
        trace = make_trace([read("oregon", ("M9",), 0.0)])
        with pytest.raises(AnalysisError, match="never"):
            trace.validate()
