"""Unit tests for divergence-window computation."""

import pytest

from repro.core import (
    content_divergence_windows,
    divergence_windows,
    order_divergence_windows,
    view_timeline,
)

from tests.helpers import make_trace, read, write


class TestViewTimeline:
    def test_starts_with_empty_view(self):
        trace = make_trace([read("oregon", ("M1",), 1.0)])
        steps = view_timeline(trace, "oregon")
        assert steps[0].view == ()
        assert steps[1].view == ("M1",)

    def test_step_times_use_corrected_response(self):
        trace = make_trace(
            [read("oregon", (), 10.0)],
            clock_deltas={"oregon": 4.0},
        )
        steps = view_timeline(trace, "oregon")
        assert steps[1].time == pytest.approx(6.1)  # 10.1 local - 4.0


class TestContentWindows:
    def writes(self):
        return [write("oregon", "M1", 0.0), write("tokyo", "M2", 0.0)]

    def test_simple_divergence_window(self):
        # oregon sees only M1 from t=1.1; tokyo sees only M2 from t=1.1;
        # both converge to (M1, M2) at t=5.1.
        trace = make_trace(self.writes() + [
            read("oregon", ("M1",), 1.0),
            read("tokyo", ("M2",), 1.0),
            read("oregon", ("M1", "M2"), 5.0),
            read("tokyo", ("M1", "M2"), 5.0),
        ])
        result = content_divergence_windows(trace, "oregon", "tokyo")
        assert result.diverged
        assert result.converged
        # Divergence holds from the second 1.1-read until the first
        # 5.1-read (all corrected times equal; FIFO makes oregon's
        # 5.1-read close the window).
        assert result.largest == pytest.approx(4.0)
        assert result.total == pytest.approx(4.0)

    def test_paper_zero_window_example(self):
        # §IV: agent1 reads (M1) at t1, (M1,M2) at t2; agent2 reads
        # (M2) at t3, (M1,M2) at t4 with t1<t2<t3<t4.  Anomaly yes,
        # window zero.
        trace = make_trace(self.writes() + [
            read("oregon", ("M1",), 1.0),
            read("oregon", ("M1", "M2"), 2.0),
            read("tokyo", ("M2",), 3.0),
            read("tokyo", ("M1", "M2"), 4.0),
        ])
        result = content_divergence_windows(trace, "oregon", "tokyo")
        assert not result.diverged
        assert result.largest is None
        assert result.total == 0.0

    def test_unconverged_pair_is_flagged(self):
        trace = make_trace(self.writes() + [
            read("oregon", ("M1",), 1.0),
            read("tokyo", ("M2",), 2.0),
        ])
        result = content_divergence_windows(trace, "oregon", "tokyo")
        assert result.diverged
        assert not result.converged
        # Interval closed at the last observation for accounting.
        assert result.total == pytest.approx(0.0)

    def test_multiple_windows_and_largest(self):
        trace = make_trace(self.writes() + [
            # Window 1: [1.1, 2.1) - 1s
            read("oregon", ("M1",), 1.0),
            read("tokyo", ("M2",), 1.0),
            read("oregon", ("M1", "M2"), 2.0),
            read("tokyo", ("M1", "M2"), 2.0),
            # Window 2: [5.1, 8.1) - 3s (views regress)
            read("oregon", ("M1",), 5.0),
            read("tokyo", ("M2",), 5.0),
            read("oregon", ("M1", "M2"), 8.0),
            read("tokyo", ("M1", "M2"), 8.0),
        ])
        result = content_divergence_windows(trace, "oregon", "tokyo")
        assert len(result.intervals) == 2
        assert result.largest == pytest.approx(3.0)
        assert result.total == pytest.approx(4.0)

    def test_no_reads_means_no_divergence(self):
        trace = make_trace(self.writes())
        result = content_divergence_windows(trace, "oregon", "tokyo")
        assert not result.diverged
        assert result.converged

    def test_clock_deltas_shift_window_edges(self):
        # tokyo's clock is 2s fast; its reads get pulled 2s earlier on
        # the reference timeline, widening the overlap.
        trace = make_trace(
            self.writes() + [
                read("oregon", ("M1",), 1.0),
                read("tokyo", ("M2",), 3.0),   # corrected to 1.1
                read("oregon", ("M1", "M2"), 5.0),
                read("tokyo", ("M1", "M2"), 7.0),  # corrected to 5.1
            ],
            clock_deltas={"tokyo": 2.0},
        )
        result = content_divergence_windows(trace, "oregon", "tokyo")
        assert result.largest == pytest.approx(4.0)


class TestOrderWindows:
    def test_order_divergence_window(self):
        trace = make_trace([
            write("oregon", "M1", 0.0),
            write("tokyo", "M2", 0.0),
            read("oregon", ("M1", "M2"), 1.0),
            read("tokyo", ("M2", "M1"), 1.0),
            read("oregon", ("M1", "M2"), 6.0),
            read("tokyo", ("M1", "M2"), 6.0),
        ])
        result = order_divergence_windows(trace, "oregon", "tokyo")
        assert result.diverged
        assert result.converged
        assert result.largest == pytest.approx(5.0)

    def test_content_divergence_is_not_order_divergence(self):
        trace = make_trace([
            write("oregon", "M1", 0.0),
            write("tokyo", "M2", 0.0),
            read("oregon", ("M1",), 1.0),
            read("tokyo", ("M2",), 1.0),
        ])
        result = order_divergence_windows(trace, "oregon", "tokyo")
        assert not result.diverged


class TestGenericPredicate:
    def test_custom_predicate_is_applied(self):
        # Predicate: both views non-empty.
        trace = make_trace([
            write("oregon", "M1", 0.0),
            read("oregon", ("M1",), 1.0),
            read("tokyo", ("M1",), 2.0),
            read("tokyo", ("M1",), 3.0),
        ])
        result = divergence_windows(
            trace, "oregon", "tokyo",
            lambda a, b: bool(a) and bool(b),
        )
        assert result.diverged
        assert not result.converged  # predicate still true at the end

    def test_pair_is_sorted_in_result(self):
        trace = make_trace([read("tokyo", (), 0.0)])
        result = divergence_windows(
            trace, "tokyo", "oregon", lambda a, b: False
        )
        assert result.pair == ("oregon", "tokyo")
