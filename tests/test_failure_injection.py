"""Failure-injection tests: the harness must survive a hostile network.

The measurement methodology ran for a month against the real internet;
its simulated counterpart must likewise tolerate lossy links, RPC
timeouts, and partitions without wedging — tests hit timeouts, agents
log fewer operations, but campaigns complete and the analysis stays
sound.
"""

import pytest

from repro.core import CONTENT_DIVERGENCE
from repro.methodology import (
    PAPER_PLANS,
    CampaignConfig,
    MeasurementWorld,
    run_campaign,
    run_test1,
    run_test2,
)
from repro.sim import spawn


def drive(world, runner, *args):
    process = spawn(world.sim, runner, *args)
    while not process.completion.done:
        world.sim.run_until(world.sim.now + 60.0)
    return process.completion.value


class TestLossyLinks:
    def test_test1_completes_under_moderate_request_loss(self):
        world = MeasurementWorld("blogger", seed=23)
        # 10% loss from each agent toward the API host.
        for agent in world.agents:
            world.faults.set_loss(agent.host, "blogger-api", 0.10)
        trace = drive(world, run_test1, world, "lossy",
                      PAPER_PLANS["blogger"].test1)
        # The test still finishes with all six writes logged (posts
        # retry is not needed; lost requests surface as timeouts and
        # the read loop keeps going).
        trace.validate()
        assert len(trace.reads()) > 0
        failed = sum(agent.failed_requests for agent in world.agents)
        assert failed > 0, "loss injection should cause some failures"

    def test_failed_reads_are_not_logged(self):
        world = MeasurementWorld("blogger", seed=29)
        for agent in world.agents:
            world.faults.set_loss(agent.host, "blogger-api", 0.5)
        trace = drive(world, run_test2, world, "lossy2",
                      PAPER_PLANS["blogger"].test2)
        # Heavy loss: far fewer reads than configured, but every
        # logged read is well-formed.
        configured = PAPER_PLANS["blogger"].test2.reads_per_agent
        for agent in trace.agents:
            assert len(trace.reads_by(agent)) <= configured
        trace.validate()


class TestAgentIsolation:
    def test_isolated_agent_wedges_nothing(self):
        # Tokyo loses connectivity entirely for the first half of the
        # test; the safety timeout plus RPC timeouts must still land
        # the test.
        world = MeasurementWorld("blogger", seed=31)
        start = world.sim.now
        world.faults.isolate("agent-tokyo", start, start + 30.0)
        plan = PAPER_PLANS["blogger"].test1
        trace = drive(world, run_test1, world, "isolated", plan)
        # Oregon wrote M1/M2 fine; tokyo could not see M2 while
        # isolated, so the chain stalls until the isolation lifts or
        # the timeout fires — either way we get a valid trace.
        trace.validate()
        assert any(w.agent == "oregon" for w in trace.writes())

    def test_campaign_survives_partition_stretch(self):
        result = run_campaign("facebook_group", CampaignConfig(
            num_tests=8, seed=37, test_types=("test2",),
            group_partition_tests=4,
        ))
        assert result.total_tests == 8
        # Partitioned tests diverge; all tests produce full writes.
        assert result.prevalence(CONTENT_DIVERGENCE) > 0
        for record in result.records:
            assert sum(record.writes_per_agent.values()) == 3


class TestCoordinatorDegradation:
    def test_unreachable_agents_degrade_instead_of_wedging(self):
        # If the coordinator cannot reach any agent, clock sync
        # completes with degraded zero-delta estimates and counts the
        # failures, rather than hanging or crashing the campaign.
        world = MeasurementWorld("blogger", seed=41)
        world.faults.isolate("coordinator", world.sim.now,
                             world.sim.now + 1e6)
        estimates = drive(world, world.coordinator.sync_clocks)
        assert world.coordinator.sync_failures == 3
        for estimate in estimates.values():
            assert estimate.samples == 0
            assert estimate.delta == 0.0
            assert (estimate.uncertainty
                    == world.coordinator.DEGRADED_UNCERTAINTY)

    def test_previous_estimate_is_carried_forward(self):
        world = MeasurementWorld("blogger", seed=41)
        first = dict(drive(world, world.coordinator.sync_clocks))
        # Now isolate tokyo and resync: tokyo keeps its old estimate.
        world.faults.isolate("agent-tokyo", world.sim.now,
                             world.sim.now + 1e6)
        second = drive(world, world.coordinator.sync_clocks)
        assert second["tokyo"] is first["tokyo"]
        assert second["oregon"] is not first["oregon"]
        assert world.coordinator.sync_failures == 1

    def test_jittery_links_still_bound_estimation_error(self):
        world = MeasurementWorld("blogger", seed=43,
                                 jitter_sigma=0.35)
        estimates = drive(world, world.coordinator.sync_clocks)
        for agent in world.agents:
            estimate = estimates[agent.name]
            true_delta = (agent.clock.now()
                          - world.coordinator.clock.now())
            # Heavy jitter widens the bound; the estimate must stay
            # within a small multiple of it.
            assert abs(estimate.delta - true_delta) \
                <= 2.0 * estimate.uncertainty
