"""Tests for the fleet engine: spec expansion, parity, resume, retry.

The load-bearing assertions are the golden-signature ones: a fleet run
with ``jobs >= 2`` must produce records bit-identical (per canonical-
JSON digest) to the serial path for the same spec and seeds, and a
resumed fleet must complete without re-running finished shards.

Worker-failure fixtures (crash/hang runners) are module-level
functions so they can cross the process boundary; they coordinate
"fail only the first attempt" through marker files in a directory
passed via an environment variable, which child processes inherit.
"""

import os
import time
from pathlib import Path

import pytest

from repro.errors import ConfigurationError, FleetError
from repro.fleet import (
    ArtifactStore,
    FleetCompleted,
    FleetSpec,
    FleetStarted,
    ShardCompleted,
    ShardRetried,
    ShardSkipped,
    ShardStarted,
    derive_fleet_seeds,
    execute_shard,
    fleet_signature,
    render_event,
    run_fleet,
)
from repro.methodology import (
    CampaignConfig,
    prevalence_statistics,
    replicate,
    run_campaign,
    sweep,
)
from repro.replication import QuorumParams
from repro.services import QuorumKvParams

SMALL = CampaignConfig(num_tests=2, seed=0, test_types=("test1",))

MARKER_ENV = "REPRO_FLEET_TEST_MARKERS"


def _marker(job) -> Path:
    return Path(os.environ[MARKER_ENV]) / job.shard_id


def crash_once_runner(job):
    """Die without a result on each shard's first attempt."""
    marker = _marker(job)
    if not marker.exists():
        marker.write_text("crashed")
        os._exit(3)
    return execute_shard(job)


def hang_once_runner(job):
    """Hang (to be timed out) on each shard's first attempt."""
    marker = _marker(job)
    if not marker.exists():
        marker.write_text("hung")
        time.sleep(60.0)
    return execute_shard(job)


def failing_runner(job):
    raise ValueError("deterministic campaign failure")


class TestFleetSpec:
    def test_expansion_order_and_count(self):
        spec = FleetSpec(services=("blogger", "googleplus"),
                         base_config=SMALL, seeds=(1, 2))
        jobs = spec.jobs()
        assert len(jobs) == spec.total_shards == 4
        assert [(j.service, j.seed) for j in jobs] == [
            ("blogger", 1), ("blogger", 2),
            ("googleplus", 1), ("googleplus", 2),
        ]
        assert [j.index for j in jobs] == [0, 1, 2, 3]
        assert len({j.shard_id for j in jobs}) == 4
        assert all(j.config.seed == j.seed for j in jobs)

    def test_param_grid_axis(self):
        grid = (("weak", QuorumKvParams(
                    quorum=QuorumParams(1, 1))),
                ("strict", QuorumKvParams(
                    quorum=QuorumParams(2, 2))))
        spec = FleetSpec(services=("quorum_kv",), base_config=SMALL,
                         seeds=(7,), param_grid=grid)
        jobs = spec.jobs()
        assert [j.label for j in jobs] == ["weak", "strict"]
        assert jobs[0].config.service_params.quorum.read_quorum == 1
        assert jobs[1].config.service_params.quorum.read_quorum == 2

    def test_spec_hash_stable_and_discriminating(self):
        spec_a = FleetSpec(services=("blogger",), base_config=SMALL,
                           seeds=(1, 2))
        spec_b = FleetSpec(services=("blogger",), base_config=SMALL,
                           seeds=(1, 2))
        spec_c = FleetSpec(services=("blogger",), base_config=SMALL,
                           seeds=(1, 3))
        assert spec_a.spec_hash() == spec_b.spec_hash()
        assert spec_a.spec_hash() != spec_c.spec_hash()

    def test_rejects_bad_specs(self):
        with pytest.raises(ConfigurationError):
            FleetSpec(services=(), base_config=SMALL)
        with pytest.raises(ConfigurationError):
            FleetSpec(services=("myspace",), base_config=SMALL)
        with pytest.raises(ConfigurationError):
            FleetSpec(services=("blogger",), base_config=SMALL,
                      seeds=())
        with pytest.raises(ConfigurationError):
            FleetSpec(services=("blogger",), base_config=SMALL,
                      seeds=(5, 5))
        with pytest.raises(ConfigurationError):
            FleetSpec(services=("blogger", "blogger"),
                      base_config=SMALL)

    def test_derive_fleet_seeds(self):
        seeds = derive_fleet_seeds(42, 4)
        assert seeds == derive_fleet_seeds(42, 4)
        assert len(set(seeds)) == 4
        assert seeds[:2] == derive_fleet_seeds(42, 2)
        assert seeds != derive_fleet_seeds(43, 4)
        with pytest.raises(ConfigurationError):
            derive_fleet_seeds(42, 0)


class TestSerialPath:
    def test_matches_direct_run_campaign(self):
        spec = FleetSpec(services=("blogger", "googleplus"),
                         base_config=SMALL, seeds=(1,))
        outcome = run_fleet(spec)
        direct = [run_campaign(job.service, job.config)
                  for job in spec.jobs()]
        assert outcome.signature() == fleet_signature(direct)
        assert [r.summary() for r in outcome.results] == \
            [r.summary() for r in direct]

    def test_keeps_traces_in_process(self):
        config = CampaignConfig(num_tests=1, seed=0,
                                test_types=("test1",),
                                keep_traces=True)
        spec = FleetSpec(services=("blogger",), base_config=config,
                         seeds=(1,))
        outcome = run_fleet(spec, jobs=1)
        assert outcome.results[0].records[0].trace is not None

    def test_rejects_bad_jobs(self):
        spec = FleetSpec(services=("blogger",), base_config=SMALL)
        with pytest.raises(ConfigurationError):
            run_fleet(spec, jobs=0)

    def test_parallel_rejects_keep_traces(self):
        config = CampaignConfig(num_tests=1, seed=0,
                                keep_traces=True)
        spec = FleetSpec(services=("blogger",), base_config=config,
                         seeds=(1, 2))
        with pytest.raises(ConfigurationError):
            run_fleet(spec, jobs=2)


class TestGoldenSignatureParity:
    """The acceptance criterion: parallel output is bit-identical."""

    def test_two_workers_match_serial(self):
        spec = FleetSpec(services=("blogger", "googleplus"),
                         base_config=SMALL, seeds=(1, 2))
        serial = run_fleet(spec, jobs=1)
        parallel = run_fleet(spec, jobs=2)
        assert parallel.signature() == serial.signature()
        assert [r.summary() for r in parallel.results] == \
            [r.summary() for r in serial.results]

    def test_parity_survives_the_store_round_trip(self, tmp_path):
        spec = FleetSpec(services=("googleplus",), base_config=SMALL,
                         seeds=(3, 4))
        serial = run_fleet(spec, jobs=1)
        stored = run_fleet(spec, jobs=2, out_dir=tmp_path / "store")
        resumed = run_fleet(spec, jobs=2, out_dir=tmp_path / "store")
        assert stored.signature() == serial.signature()
        assert resumed.signature() == serial.signature()

    def test_replicate_parallel_matches_serial(self):
        serial = replicate("googleplus", SMALL, seeds=[1, 2])
        parallel = replicate("googleplus", SMALL, seeds=[1, 2],
                             jobs=2)
        assert fleet_signature(parallel) == fleet_signature(serial)
        assert prevalence_statistics(parallel) == \
            prevalence_statistics(serial)

    def test_sweep_parallel_matches_serial(self):
        grid = {
            "weak": QuorumKvParams(
                quorum=QuorumParams(read_quorum=1, write_quorum=1)
            ),
            "strict": QuorumKvParams(
                quorum=QuorumParams(read_quorum=2, write_quorum=2)
            ),
        }
        serial = sweep("quorum_kv", SMALL, grid)
        parallel = sweep("quorum_kv", SMALL, grid, jobs=2)
        assert list(parallel) == list(serial) == ["weak", "strict"]
        assert fleet_signature(parallel.values()) == \
            fleet_signature(serial.values())


class TestResume:
    def test_partial_store_runs_only_missing_shards(self, tmp_path):
        spec = FleetSpec(services=("blogger",), base_config=SMALL,
                         seeds=(1, 2, 3, 4))
        jobs = spec.jobs()
        # Pre-complete shards 0 and 2, as a killed run would have.
        store = ArtifactStore(tmp_path)
        store.initialize(spec)
        from repro.io import record_to_dict

        for job in (jobs[0], jobs[2]):
            result = execute_shard(job)
            store.write_shard(job, [record_to_dict(r)
                                    for r in result.records])
        events = []
        outcome = run_fleet(spec, jobs=2, out_dir=tmp_path,
                            on_event=events.append)
        skipped = {e.shard_id for e in events
                   if isinstance(e, ShardSkipped)}
        started = {e.shard_id for e in events
                   if isinstance(e, ShardStarted)}
        assert skipped == {jobs[0].shard_id, jobs[2].shard_id}
        assert started == {jobs[1].shard_id, jobs[3].shard_id}
        assert outcome.signature() == run_fleet(spec).signature()

    def test_corrupt_shard_is_rerun(self, tmp_path):
        spec = FleetSpec(services=("blogger",), base_config=SMALL,
                         seeds=(1, 2))
        first = run_fleet(spec, jobs=1, out_dir=tmp_path)
        victim = spec.jobs()[0]
        path = ArtifactStore(tmp_path).shard_path(victim.shard_id)
        path.write_text(path.read_text()[:-20])  # truncate
        events = []
        again = run_fleet(spec, jobs=1, out_dir=tmp_path,
                          on_event=events.append)
        assert again.executed == (victim.shard_id,)
        assert len(again.skipped) == 1
        assert again.signature() == first.signature()

    def test_store_bound_to_other_spec_rejected(self, tmp_path):
        spec = FleetSpec(services=("blogger",), base_config=SMALL,
                         seeds=(1,))
        other = FleetSpec(services=("blogger",), base_config=SMALL,
                          seeds=(2,))
        run_fleet(spec, out_dir=tmp_path)
        with pytest.raises(FleetError):
            run_fleet(other, out_dir=tmp_path)


class TestWorkerFailures:
    @pytest.fixture()
    def markers(self, tmp_path, monkeypatch):
        marker_dir = tmp_path / "markers"
        marker_dir.mkdir()
        monkeypatch.setenv(MARKER_ENV, str(marker_dir))
        return marker_dir

    def test_crashed_worker_is_retried(self, markers):
        spec = FleetSpec(services=("blogger",), base_config=SMALL,
                         seeds=(1, 2))
        events = []
        outcome = run_fleet(spec, jobs=2,
                            shard_runner=crash_once_runner,
                            on_event=events.append)
        retried = [e for e in events if isinstance(e, ShardRetried)]
        assert len(retried) == 2
        assert all("crashed" in e.reason for e in retried)
        assert outcome.retries == 2
        assert outcome.signature() == run_fleet(spec).signature()

    def test_hung_worker_times_out_and_retries(self, markers):
        spec = FleetSpec(services=("blogger",), base_config=SMALL,
                         seeds=(1,))
        events = []
        outcome = run_fleet(spec, jobs=2,
                            shard_runner=hang_once_runner,
                            shard_timeout=1.0,
                            on_event=events.append)
        retried = [e for e in events if isinstance(e, ShardRetried)]
        assert len(retried) == 1
        assert "timed out" in retried[0].reason
        assert outcome.signature() == run_fleet(spec).signature()

    def test_retry_budget_exhaustion_fails(self, tmp_path,
                                           monkeypatch):
        # No marker dir entries are ever consumed: every attempt dies.
        monkeypatch.setenv(MARKER_ENV, str(tmp_path))

        spec = FleetSpec(services=("blogger",), base_config=SMALL,
                         seeds=(1, 2))
        with pytest.raises(FleetError, match="failed after"):
            run_fleet(spec, jobs=2, shard_runner=always_crash_runner,
                      max_retries=1)

    def test_campaign_exception_fails_without_retry(self):
        spec = FleetSpec(services=("blogger",), base_config=SMALL,
                         seeds=(1, 2))
        events = []
        with pytest.raises(FleetError,
                           match="deterministic campaign failure"):
            run_fleet(spec, jobs=2, shard_runner=failing_runner,
                      on_event=events.append)
        assert not [e for e in events if isinstance(e, ShardRetried)]


def always_crash_runner(job):
    os._exit(3)


class TestEvents:
    def test_lifecycle_sequence(self):
        spec = FleetSpec(services=("blogger",), base_config=SMALL,
                         seeds=(1, 2))
        events = []
        run_fleet(spec, jobs=2, on_event=events.append)
        assert isinstance(events[0], FleetStarted)
        assert events[0].total_shards == 2
        assert isinstance(events[-1], FleetCompleted)
        assert events[-1].executed == 2
        started = [e for e in events if isinstance(e, ShardStarted)]
        completed = [e for e in events
                     if isinstance(e, ShardCompleted)]
        assert len(started) == len(completed) == 2
        for done in completed:
            assert done.records == 2

    def test_render_event_lines(self):
        spec = FleetSpec(services=("blogger",), base_config=SMALL,
                         seeds=(1,))
        lines = []

        def on_event(event):
            line = render_event(event)
            assert line is not None
            lines.append(line)

        run_fleet(spec, on_event=on_event)
        assert lines[0].startswith("fleet: 1 shards")
        assert any("done: 2 records" in line for line in lines)
        assert lines[-1].startswith("fleet: done")
