"""Tests for the fleet artifact store: round trips, digests, resume.

The store's one job is to make "this shard is done" trustworthy: a
manifest entry counts only while the bytes on disk still hash to the
recorded digest.  These tests cover the manifest write/read round
trip, digest-mismatch detection, and that resume skips exactly the
completed shards.
"""

import json

import pytest

from repro.errors import FleetError
from repro.fleet import ArtifactStore, FleetSpec, execute_shard
from repro.fleet.store import MANIFEST_NAME
from repro.io import record_from_dict, record_to_dict
from repro.methodology import CampaignConfig

SMALL = CampaignConfig(num_tests=2, seed=0, test_types=("test1",))


@pytest.fixture()
def spec():
    return FleetSpec(services=("blogger", "googleplus"),
                     base_config=SMALL, seeds=(1, 2))


def write_one(store, job):
    result = execute_shard(job)
    records = [record_to_dict(r) for r in result.records]
    digest = store.write_shard(job, records)
    return result, records, digest


class TestManifest:
    def test_initialize_creates_layout(self, tmp_path, spec):
        store = ArtifactStore(tmp_path / "store")
        store.initialize(spec)
        assert (tmp_path / "store" / MANIFEST_NAME).is_file()
        assert store.shards_dir.is_dir()
        assert store.spec_hash == spec.spec_hash()
        assert store.completed_shards() == []

    def test_round_trip_through_fresh_handle(self, tmp_path, spec):
        store = ArtifactStore(tmp_path)
        store.initialize(spec)
        job = spec.jobs()[0]
        _, records, digest = write_one(store, job)

        reopened = ArtifactStore(tmp_path)
        assert reopened.spec_hash == spec.spec_hash()
        assert reopened.shard_state(job.shard_id) == "complete"
        assert reopened.completed_shards() == [job.shard_id]
        entry = reopened.manifest["shards"][job.shard_id]
        assert entry["digest"] == digest
        assert entry["records"] == len(records)
        assert entry["service"] == job.service
        assert entry["seed"] == job.seed

    def test_records_round_trip_exactly(self, tmp_path, spec):
        store = ArtifactStore(tmp_path)
        store.initialize(spec)
        job = spec.jobs()[2]
        result, records, _ = write_one(store, job)

        loaded = store.load_shard_records(job.shard_id)
        assert loaded == records
        rebuilt = [record_from_dict(data, job.service)
                   for data in loaded]
        assert [record_to_dict(r) for r in rebuilt] == records
        assert [r.test_id for r in rebuilt] == \
            [r.test_id for r in result.records]

    def test_reinitialize_same_spec_is_idempotent(self, tmp_path,
                                                  spec):
        store = ArtifactStore(tmp_path)
        store.initialize(spec)
        job = spec.jobs()[0]
        write_one(store, job)
        again = ArtifactStore(tmp_path)
        again.initialize(spec)
        assert again.completed_shards() == [job.shard_id]

    def test_initialize_rejects_foreign_spec(self, tmp_path, spec):
        store = ArtifactStore(tmp_path)
        store.initialize(spec)
        other = FleetSpec(services=("blogger",), base_config=SMALL,
                          seeds=(9,))
        with pytest.raises(FleetError, match="belongs to spec"):
            ArtifactStore(tmp_path).initialize(other)

    def test_unreadable_manifest_is_an_error(self, tmp_path):
        (tmp_path / MANIFEST_NAME).write_text("{not json")
        with pytest.raises(FleetError, match="unreadable"):
            ArtifactStore(tmp_path).manifest

    def test_unknown_store_version_is_an_error(self, tmp_path):
        (tmp_path / MANIFEST_NAME).write_text(
            json.dumps({"store_version": 99, "spec_hash": "x",
                        "shards": {}})
        )
        with pytest.raises(FleetError, match="store version"):
            ArtifactStore(tmp_path).manifest


class TestDigestValidation:
    def test_tampered_shard_is_corrupt(self, tmp_path, spec):
        store = ArtifactStore(tmp_path)
        store.initialize(spec)
        job = spec.jobs()[0]
        write_one(store, job)
        path = store.shard_path(job.shard_id)
        path.write_text(path.read_text().replace("test1", "test9"))
        assert store.shard_state(job.shard_id) == "corrupt"
        assert store.completed_shards() == []
        with pytest.raises(FleetError, match="corrupt"):
            store.load_shard_records(job.shard_id)

    def test_truncated_shard_is_corrupt(self, tmp_path, spec):
        store = ArtifactStore(tmp_path)
        store.initialize(spec)
        job = spec.jobs()[1]
        write_one(store, job)
        path = store.shard_path(job.shard_id)
        path.write_bytes(path.read_bytes()[:-1])
        assert store.shard_state(job.shard_id) == "corrupt"

    def test_deleted_shard_is_missing(self, tmp_path, spec):
        store = ArtifactStore(tmp_path)
        store.initialize(spec)
        job = spec.jobs()[0]
        write_one(store, job)
        store.shard_path(job.shard_id).unlink()
        assert store.shard_state(job.shard_id) == "missing"

    def test_unwritten_shard_is_missing(self, tmp_path, spec):
        store = ArtifactStore(tmp_path)
        store.initialize(spec)
        assert store.shard_state("0000_nope_s0") == "missing"


class TestResumeBookkeeping:
    def test_resume_skips_exactly_the_completed_shards(self, tmp_path,
                                                       spec):
        from repro.fleet import run_fleet

        store = ArtifactStore(tmp_path)
        store.initialize(spec)
        jobs = spec.jobs()
        done = [jobs[0], jobs[3]]
        for job in done:
            write_one(store, job)

        outcome = run_fleet(spec, out_dir=tmp_path)
        assert set(outcome.skipped) == {j.shard_id for j in done}
        assert set(outcome.executed) == \
            {jobs[1].shard_id, jobs[2].shard_id}
        # And the merged output equals a from-scratch serial run.
        fresh = run_fleet(spec)
        assert outcome.signature() == fresh.signature()
