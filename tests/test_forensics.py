"""Reproduce the paper's Facebook Group detective work (§V).

The paper's authors noticed reordered same-author writes in Facebook
Group, pulled the events' creation timestamps from the API, and found
that (a) timestamps have one-second precision and (b) two writes with
the same timestamp are *always* observed in reverse order, consistently
by all agents — concluding a deterministic tie-break.  These tests run
the same investigation against the model through the same black-box
API and reach the same conclusions.
"""

import pytest

from repro.services import FacebookGroupService
from repro.webapi import ApiClient

from tests.test_services import await_value, make_world


def make_group_session(seed=2):
    sim, topo, net, rng = make_world(seed=seed)
    service = FacebookGroupService(sim, topo, net, rng)
    session = service.create_session("oregon", "agent-oregon")
    tokyo = service.create_session("tokyo", "agent-tokyo")
    return sim, session, tokyo


def fetch_entries(sim, session):
    """Fetch the feed with the created_time field, as the paper did."""
    response = await_value(
        sim,
        session._client.get("/group/shared/feed",
                            {"fields": "created_time"}),
    )
    assert response.status == 200
    return response.body["entries"]


class TestCreatedTimeField:
    def test_timestamps_have_one_second_precision(self):
        sim, session, _ = make_group_session()
        await_value(sim, session.post_message("M1"))
        entries = fetch_entries(sim, session)
        (entry,) = entries
        assert entry["id"] == "M1"
        assert isinstance(entry["created_time"], int)

    def test_field_absent_without_request(self):
        sim, session, _ = make_group_session()
        await_value(sim, session.post_message("M1"))
        response = await_value(
            sim, session._client.get("/group/shared/feed")
        )
        assert "entries" not in response.body


class TestSameSecondInference:
    def post_pair_within_second(self, seed=2):
        """Post two messages; retry seeds until both share a second."""
        for attempt in range(20):
            sim, session, tokyo = make_group_session(seed=seed + attempt)
            # Align to just past a second boundary so both writes land
            # inside one wall-clock second.
            sim.run_until(int(sim.now) + 1.02)
            await_value(sim, session.post_message("A"))
            await_value(sim, session.post_message("B"))
            sim.run_until(sim.now + 5.0)
            entries = fetch_entries(sim, session)
            times = {e["id"]: e["created_time"] for e in entries}
            if times["A"] == times["B"]:
                return sim, session, tokyo, entries
        pytest.fail("could not produce a same-second pair")

    def test_same_second_writes_always_observed_reversed(self):
        sim, session, tokyo, entries = self.post_pair_within_second()
        # Newest-first feed: the reversed tie-break puts B (the later
        # write) *behind* A — i.e. chronological order looks like
        # (B, A), which the newest-first listing shows as (A, B)...
        # assert via the session's chronological view instead:
        view = await_value(sim, session.fetch_messages())
        assert view == ("B", "A"), (
            "same-second writes must appear in reverse order"
        )

    def test_reversal_is_consistent_across_agents(self):
        sim, session, tokyo, entries = self.post_pair_within_second()
        own = await_value(sim, session.fetch_messages())
        remote = await_value(sim, tokyo.fetch_messages())
        assert own == remote == ("B", "A")

    def test_cross_second_writes_keep_order(self):
        sim, session, tokyo = make_group_session(seed=77)
        sim.run_until(int(sim.now) + 1.6)  # near the end of a second
        await_value(sim, session.post_message("A"))
        sim.run_until(sim.now + 1.0)       # cross the boundary
        await_value(sim, session.post_message("B"))
        sim.run_until(sim.now + 5.0)
        entries = fetch_entries(sim, session)
        times = {e["id"]: e["created_time"] for e in entries}
        assert times["A"] != times["B"]
        view = await_value(sim, session.fetch_messages())
        assert view == ("A", "B")

    def test_reversal_predicted_by_equal_timestamps(self):
        """The paper's final inference: equal created_time <=> reversed."""
        sim, session, tokyo, entries = self.post_pair_within_second()
        times = {e["id"]: e["created_time"] for e in entries}
        view = await_value(sim, session.fetch_messages())
        reversed_pair = view.index("B") < view.index("A")
        assert (times["A"] == times["B"]) == reversed_pair
