"""Golden-signature regression test: the paper's story, in one place.

The benchmark suite asserts every figure at scale; this lighter test
lives in the main suite so an ordinary ``pytest tests/`` run still
catches any change that breaks the headline result — with bounds loose
enough for the small campaign size.
"""

import pytest

from repro.core import (
    CONTENT_DIVERGENCE,
    MONOTONIC_READS,
    MONOTONIC_WRITES,
    ORDER_DIVERGENCE,
    READ_YOUR_WRITES,
    WRITES_FOLLOW_READS,
)
from repro.methodology import CampaignConfig, run_campaign
from repro.services import SERVICE_NAMES


@pytest.fixture(scope="module")
def campaigns():
    return {
        service: run_campaign(service, CampaignConfig(
            num_tests=30, seed=12,
        ))
        for service in SERVICE_NAMES
    }


def prevalence(campaigns, service, anomaly):
    test_type = ("test2" if "divergence" in anomaly else "test1")
    return campaigns[service].prevalence(anomaly, test_type)


class TestGoldenSignatures:
    def test_blogger_is_anomaly_free(self, campaigns):
        assert all(value == 0.0
                   for value in campaigns["blogger"].summary().values())

    def test_facebook_feed_violates_everything(self, campaigns):
        assert prevalence(campaigns, "facebook_feed",
                          READ_YOUR_WRITES) >= 0.9
        assert prevalence(campaigns, "facebook_feed",
                          ORDER_DIVERGENCE) >= 0.9
        assert prevalence(campaigns, "facebook_feed",
                          MONOTONIC_WRITES) >= 0.5
        assert prevalence(campaigns, "facebook_feed",
                          MONOTONIC_READS) > 0.0

    def test_facebook_group_signature(self, campaigns):
        assert prevalence(campaigns, "facebook_group",
                          READ_YOUR_WRITES) <= 0.05
        assert prevalence(campaigns, "facebook_group",
                          ORDER_DIVERGENCE) == 0.0
        assert prevalence(campaigns, "facebook_group",
                          MONOTONIC_WRITES) >= 0.7

    def test_googleplus_signature(self, campaigns):
        ryw = prevalence(campaigns, "googleplus", READ_YOUR_WRITES)
        mw = prevalence(campaigns, "googleplus", MONOTONIC_WRITES)
        assert 0.03 <= ryw <= 0.6
        assert mw <= 0.3
        assert mw < prevalence(campaigns, "facebook_group",
                               MONOTONIC_WRITES)
        assert prevalence(campaigns, "googleplus",
                          CONTENT_DIVERGENCE) >= 0.7

    def test_wfr_ordering(self, campaigns):
        # FB Feed is the most WFR-prone service; FB Group essentially
        # never shows it.
        assert (prevalence(campaigns, "facebook_feed",
                           WRITES_FOLLOW_READS)
                >= prevalence(campaigns, "facebook_group",
                              WRITES_FOLLOW_READS))

    def test_same_datacenter_inference(self, campaigns):
        # Google+ Oregon-Tokyo divergence far below the Ireland pairs.
        from repro.analysis import pair_divergence

        counts = pair_divergence(campaigns["googleplus"]).counts
        ot = counts.get(("oregon", "tokyo"), 0)
        oi = counts.get(("ireland", "oregon"), 0)
        ti = counts.get(("ireland", "tokyo"), 0)
        assert oi >= 20 and ti >= 20  # near-ubiquitous at 30 tests
        assert ot <= min(oi, ti) / 3
