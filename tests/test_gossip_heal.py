"""Partition healing in the gossip substrate (anti-entropy re-offer).

A rumor is forwarded exactly once, so a write rumored *into* a
partition window is gone from the epidemic path forever: when the
window closes, only the periodic anti-entropy re-offer can deliver it.
These tests pin that heal three ways — directly on
:class:`~repro.replication.gossip.GossipGroup`, as a campaign golden
signature for the ``gossip_partitioned`` scenario, and as a streaming
assertion that every divergence window the partition opens is closed
by the heal before the trace ends.
"""

from pathlib import Path

from repro.fleet.digest import campaign_signature
from repro.methodology import CampaignConfig, run_campaign
from repro.net import (
    IRELAND,
    OREGON,
    TOKYO,
    FaultInjector,
    JitterParams,
    LatencyModel,
    Network,
    paper_topology,
)
from repro.replication.gossip import GossipGroup, GossipParams
from repro.scenario import load_scenario, scenario_campaign
from repro.sim import RandomSource, Simulator
from repro.stream import OpIngest

SCENARIO_DIR = Path(__file__).parent.parent / "examples" / "scenarios"

GOSSIP_PARTITIONED_SIGNATURE = (
    "480007e9fc1716621e2af5bb0d58590f4792a7d58389464de22d722356aa1482"
)

NODES = ("node-oregon", "node-tokyo", "node-ireland")


def make_ring(faults=None, seed=3, **overrides):
    sim = Simulator()
    topo = paper_topology()
    for host, region in zip(NODES, (OREGON, TOKYO, IRELAND)):
        topo.place_host(host, region)
    rng = RandomSource(seed=seed)
    net = Network(sim, LatencyModel(topo, rng.child("net"),
                                    JitterParams(sigma=0.1)),
                  faults=faults)
    group = GossipGroup(sim, net, rng.child("gossip"),
                        GossipParams(**overrides), list(NODES))
    return sim, group


class TestAntiEntropyHeal:
    def test_reoffer_converges_isolated_replica(self):
        # Tokyo is cut off from both peers for [0, 20): the write's
        # single rumor round happens inside the window and is dropped,
        # so only the post-window anti-entropy re-offer can deliver it.
        faults = FaultInjector()
        faults.partition_group(["node-tokyo"], 0.0, 20.0)
        sim, group = make_ring(faults=faults)
        sim.run_until(1.0)
        group.write_at("node-oregon", "m1", author="oregon")
        sim.run_until(19.5)
        assert "m1" in group.read_from("node-oregon")
        assert "m1" in group.read_from("node-ireland")
        assert group.read_from("node-tokyo") == ()
        sim.run_until(40.0)
        assert "m1" in group.read_from("node-tokyo"), (
            "anti-entropy should re-offer the aged write once the "
            "partition window closes"
        )

    def test_without_reoffer_the_replica_stays_stale(self):
        # Control: push anti-entropy past the observation horizon and
        # the same schedule never converges — proof the heal above is
        # the re-offer, not a rumor retry.
        faults = FaultInjector()
        faults.partition_group(["node-tokyo"], 0.0, 20.0)
        sim, group = make_ring(faults=faults,
                               antientropy_interval=10_000.0)
        sim.run_until(1.0)
        group.write_at("node-oregon", "m1", author="oregon")
        sim.run_until(100.0)
        assert "m1" in group.read_from("node-oregon")
        assert group.read_from("node-tokyo") == ()

    def test_reoffer_respects_min_age(self):
        # A fresh write is not re-offered until it ages past
        # antientropy_min_age, so anti-entropy cannot mask the rumor
        # path's propagation delays.
        faults = FaultInjector()
        faults.partition_group(["node-tokyo"], 0.0, 3.0)
        sim, group = make_ring(faults=faults)
        sim.run_until(1.0)
        group.write_at("node-oregon", "m1", author="oregon")
        # Window over at 3.0; first eligible re-offer needs
        # age >= 8.0 (t >= 9.0) at a 5s round boundary.
        sim.run_until(6.0)
        assert group.read_from("node-tokyo") == ()
        sim.run_until(25.0)
        assert "m1" in group.read_from("node-tokyo")


class TestGossipPartitionedCampaign:
    def run_streamed(self):
        spec = load_scenario(SCENARIO_DIR / "gossip_partitioned.toml")
        config = CampaignConfig(num_tests=3, seed=5)
        window_events = {}

        def on_emission(meta, sop, emission):
            for event in emission.window_events:
                window_events.setdefault(meta.test_id, []).append(
                    event)

        ingest = OpIngest(on_emission=on_emission)
        result = run_campaign(*scenario_campaign(spec, config),
                              observer=ingest,
                              analyzer=ingest.analyzer)
        return result, window_events

    def test_campaign_golden_signature(self):
        result, _ = self.run_streamed()
        assert result.summary()["content_divergence"] == 1.0
        assert campaign_signature(result) == \
            GOSSIP_PARTITIONED_SIGNATURE

    def test_partition_windows_all_close_in_stream(self):
        # Every third test runs under the oregon~tokyo partition
        # (period=3 -> indices 2); the streamed divergence windows it
        # opens must all close before the test's trace ends — the
        # anti-entropy heal observed online.
        _, window_events = self.run_streamed()
        for test_type in ("test1", "test2"):
            test_id = f"gossip_partitioned-{test_type}-2"
            events = window_events[test_id]
            opened = [e for e in events if e.action == "opened"]
            closed = [e for e in events if e.action == "closed"]
            assert opened, "partition should open divergence windows"
            assert len(opened) == len(closed)

    def test_heal_is_slower_than_antientropy_min_age(self):
        # The partitioned test2's oregon~tokyo window must stay open
        # at least antientropy_min_age: nothing but the aged re-offer
        # could close it, and the re-offer waits for age >= 8s.
        _, window_events = self.run_streamed()
        events = window_events["gossip_partitioned-test2-2"]
        spans = [
            event.time - event.start
            for event in events
            if event.action == "closed"
            and event.pair == ("oregon", "tokyo")
            and event.start is not None
        ]
        assert spans
        assert max(spans) >= GossipParams().antientropy_min_age
