"""Tests for campaign persistence (JSON save/load round trips)."""

import json

import pytest

from repro.analysis import (
    pair_divergence,
    prevalence_rows,
    window_cdfs,
)
from repro.errors import AnalysisError
from repro.io import SCHEMA_VERSION, load_campaign, save_campaign
from repro.methodology import CampaignConfig, run_campaign


@pytest.fixture(scope="module")
def campaign():
    return run_campaign("googleplus",
                        CampaignConfig(num_tests=8, seed=19))


class TestRoundTrip:
    def test_summary_survives_round_trip(self, campaign, tmp_path):
        path = save_campaign(campaign, tmp_path / "campaign.json")
        loaded = load_campaign(path)
        assert loaded.service == campaign.service
        assert loaded.total_tests == campaign.total_tests
        assert loaded.total_reads == campaign.total_reads
        assert loaded.total_writes == campaign.total_writes
        assert loaded.summary() == campaign.summary()

    def test_figures_identical_after_reload(self, campaign, tmp_path):
        path = save_campaign(campaign, tmp_path / "campaign.json")
        loaded = load_campaign(path)
        original_rows = [(row.anomaly, row.tests_with_anomaly)
                         for row in prevalence_rows(campaign)]
        loaded_rows = [(row.anomaly, row.tests_with_anomaly)
                       for row in prevalence_rows(loaded)]
        assert original_rows == loaded_rows
        assert (pair_divergence(loaded).counts
                == pair_divergence(campaign).counts)
        original_cdf = window_cdfs(campaign, kind="content")
        loaded_cdf = window_cdfs(loaded, kind="content")
        assert loaded_cdf.samples == original_cdf.samples
        assert loaded_cdf.unconverged == original_cdf.unconverged

    def test_observation_details_restored_with_tuples(self, campaign,
                                                      tmp_path):
        path = save_campaign(campaign, tmp_path / "campaign.json")
        loaded = load_campaign(path)
        for record in loaded.records:
            for observations in record.report.observations.values():
                for obs in observations:
                    for value in obs.details.values():
                        assert not isinstance(value, list), (
                            "details must round-trip to tuples"
                        )

    def test_config_restored(self, campaign, tmp_path):
        path = save_campaign(campaign, tmp_path / "campaign.json")
        loaded = load_campaign(path)
        assert loaded.config.num_tests == 8
        assert loaded.config.seed == 19
        assert loaded.config.test_types == ("test1", "test2")

    def test_traces_are_not_persisted(self, tmp_path):
        with_traces = run_campaign("blogger", CampaignConfig(
            num_tests=1, seed=1, keep_traces=True,
        ))
        path = save_campaign(with_traces, tmp_path / "c.json")
        loaded = load_campaign(path)
        assert all(record.trace is None for record in loaded.records)


class TestFormat:
    def test_document_is_valid_versioned_json(self, campaign, tmp_path):
        path = save_campaign(campaign, tmp_path / "campaign.json")
        document = json.loads(path.read_text())
        assert document["schema_version"] == SCHEMA_VERSION
        assert document["service"] == "googleplus"
        assert len(document["records"]) == campaign.total_tests

    def test_unknown_schema_version_rejected(self, campaign, tmp_path):
        path = save_campaign(campaign, tmp_path / "campaign.json")
        document = json.loads(path.read_text())
        document["schema_version"] = 999
        path.write_text(json.dumps(document))
        with pytest.raises(AnalysisError, match="schema version"):
            load_campaign(path)
