"""Tests for latency analysis and endpoint traffic statistics."""

import pytest

from repro.analysis import (
    latency_table,
    operation_latencies,
)
from repro.errors import AnalysisError
from repro.methodology import CampaignConfig, run_campaign
from repro.replication import QuorumParams
from repro.services import QuorumKvParams

from tests.test_webapi import make_endpoint_world, run_and_get


class TestOperationLatencies:
    @pytest.fixture(scope="class")
    def campaign(self):
        return run_campaign("blogger", CampaignConfig(
            num_tests=3, seed=7, test_types=("test1",),
            keep_traces=True,
        ))

    def test_breakdown_covers_all_agents(self, campaign):
        breakdown = operation_latencies(campaign)
        assert set(breakdown.writes) == {"oregon", "tokyo", "ireland"}
        assert set(breakdown.reads) == {"oregon", "tokyo", "ireland"}

    def test_latencies_are_positive_and_plausible(self, campaign):
        breakdown = operation_latencies(campaign)
        for agent in breakdown.writes:
            stats = breakdown.write_stats(agent)
            # Blogger writes pay RTT + processing + sync replication.
            assert 0.1 < stats["median"] < 2.0
        for agent in breakdown.reads:
            stats = breakdown.read_stats(agent)
            assert 0.0 < stats["median"] < 1.0

    def test_writes_cost_more_than_reads_on_blogger(self, campaign):
        breakdown = operation_latencies(campaign)
        assert (breakdown.overall_write_mean()
                > breakdown.overall_read_mean())

    def test_quorum_write_latency_scales_with_w(self):
        means = {}
        for w in (1, 3):
            params = QuorumKvParams(quorum=QuorumParams(
                read_quorum=1, write_quorum=w,
            ))
            result = run_campaign("quorum_kv", CampaignConfig(
                num_tests=4, seed=9, test_types=("test1",),
                keep_traces=True, service_params=params,
            ))
            means[w] = operation_latencies(result).overall_write_mean()
        assert means[3] > means[1]

    def test_requires_kept_traces(self):
        result = run_campaign("blogger", CampaignConfig(
            num_tests=1, seed=7, test_types=("test1",),
        ))
        with pytest.raises(AnalysisError, match="keep_traces"):
            operation_latencies(result)

    def test_table_renders(self, campaign):
        text = latency_table(operation_latencies(campaign))
        assert "write" in text and "read" in text
        assert "oregon" in text


class TestEndpointStats:
    def test_requests_and_statuses_counted(self):
        sim, endpoint, client, _ = make_endpoint_world()
        endpoint.router.add("GET", "/hello", lambda r, a: {"ok": True})
        run_and_get(sim, client.get("/hello"))
        run_and_get(sim, client.get("/hello"))
        run_and_get(sim, client.get("/missing"))  # 400
        stats = endpoint.stats
        assert stats.requests_total == 3
        assert stats.requests_by_route[("GET", "/hello")] == 2
        assert stats.responses_by_status[200] == 2
        assert stats.responses_by_status[400] == 1
        assert stats.success_fraction() == pytest.approx(2 / 3)

    def test_deferred_responses_counted_at_resolution(self):
        sim, endpoint, client, _ = make_endpoint_world(processing=0.2)
        endpoint.router.add("GET", "/slow", lambda r, a: {})
        future = client.get("/slow")
        assert endpoint.stats.responses_by_status == {}
        run_and_get(sim, future)
        assert endpoint.stats.responses_by_status[200] == 1

    def test_rate_limited_counter(self):
        from repro.webapi import RateLimit, SlidingWindowRateLimiter

        sim, endpoint, client, _ = make_endpoint_world()
        endpoint._rate_limiter = SlidingWindowRateLimiter(
            RateLimit(max_requests=1, window=60.0),
            now_fn=lambda: sim.now,
        )
        endpoint.router.add("GET", "/hello", lambda r, a: {})
        first = client.get("/hello")
        second = client.get("/hello")
        sim.run_until(60.0)
        assert first.done and second.done
        assert endpoint.stats.rate_limited == 1

    def test_empty_stats_success_fraction(self):
        from repro.webapi import EndpointStats

        assert EndpointStats().success_fraction() == 1.0

    def test_campaign_endpoints_accumulate_traffic(self):
        from repro.methodology import MeasurementWorld, run_test1
        from repro.methodology import PAPER_PLANS
        from repro.sim import spawn

        world = MeasurementWorld("blogger", seed=3)
        process = spawn(world.sim, run_test1, world, "t",
                        PAPER_PLANS["blogger"].test1)
        while not process.completion.done:
            world.sim.run_until(world.sim.now + 60.0)
        stats = world.service._endpoint.stats
        assert stats.requests_total > 30  # 6 writes + ~30 reads
        assert stats.success_fraction() == 1.0