"""Tests for the determinism & trace-safety linter (repro.lint).

Covers every shipped rule with known-bad and known-clean fixture
snippets, waiver handling, configuration loading (including the
Python 3.10 TOML fallback parser), JSON output schema, exit codes, and
— crucially — the meta-test that the linter reports zero unwaived
findings over this repository's own ``src/`` tree.
"""

import json
import textwrap
from pathlib import Path

import pytest

from repro.cli import main as repro_main
from repro.lint import (
    Finding,
    LintConfig,
    LintEngine,
    Severity,
    lint_paths,
    load_config,
    module_name,
    rule_codes,
)
from repro.lint.cli import main as lint_main
from repro.lint.config import (
    config_from_table,
    find_pyproject,
    parse_minimal_toml_table,
)
from repro.lint.waivers import collect_waivers

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"

#: Rules shipped so far; the registry must contain all of them.
SHIPPED_RULES = ("DET001", "DET002", "DET003", "DET004", "DET005",
                 "DET006", "DET007", "PAR001", "TRACE001", "TRACE002",
                 "API001")


def lint_snippet(tmp_path, source, *, filename="mod.py", config=None):
    """Lint one dedented snippet; returns (unwaived, waived) findings."""
    path = tmp_path / filename
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source), encoding="utf-8")
    return LintEngine(config or LintConfig()).lint_file(path)


def codes(findings):
    return [finding.code for finding in findings]


SIM_CFG = LintConfig(sim_scopes=("mod",))
TRACE_CFG = LintConfig(trace_scopes=("mod",))
AGG_CFG = LintConfig(aggregation_scopes=("mod",))


class TestRegistry:
    def test_all_shipped_rules_registered(self):
        registered = rule_codes()
        for code in SHIPPED_RULES:
            assert code in registered

    def test_severities(self):
        from repro.lint import get_rule

        assert get_rule("DET001").severity is Severity.ERROR
        assert get_rule("DET002").severity is Severity.ERROR
        assert get_rule("TRACE001").severity is Severity.ERROR
        assert get_rule("API001").severity is Severity.WARNING


class TestDET001:
    def test_flags_direct_import(self, tmp_path):
        kept, _ = lint_snippet(tmp_path, """\
            import random

            __all__ = []
        """)
        det = [f for f in kept if f.code == "DET001"]
        assert len(det) == 1
        assert det[0].line == 1

    def test_flags_from_import(self, tmp_path):
        kept, _ = lint_snippet(tmp_path, """\
            from random import gauss

            __all__ = []
        """)
        assert "DET001" in codes(kept)

    def test_flags_attribute_call_even_without_import(self, tmp_path):
        # This mirrors the acceptance-criteria injection: a bare
        # random.random() call dropped into a module body.
        kept, _ = lint_snippet(tmp_path, """\
            __all__ = []


            def sample():
                return random.random()
        """)
        det = [f for f in kept if f.code == "DET001"]
        assert len(det) == 1
        assert det[0].line == 5
        assert "random.random" in det[0].message

    def test_allowlisted_module_exempt(self, tmp_path):
        config = LintConfig(random_allowlist=("mod",))
        kept, _ = lint_snippet(tmp_path, """\
            import random

            __all__ = []
        """, config=config)
        assert "DET001" not in codes(kept)

    def test_clean_module_passes(self, tmp_path):
        kept, _ = lint_snippet(tmp_path, """\
            from repro.sim.random_source import RandomSource

            __all__ = ["draw"]


            def draw(rng: RandomSource) -> float:
                return rng.uniform("mod.jitter", 0.0, 1.0)
        """)
        assert "DET001" not in codes(kept)


class TestDET002:
    def test_flags_time_time_in_scope(self, tmp_path):
        kept, _ = lint_snippet(tmp_path, """\
            import time

            __all__ = []


            def now() -> float:
                return time.time()
        """, config=SIM_CFG)
        det = [f for f in kept if f.code == "DET002"]
        assert len(det) == 1
        assert det[0].line == 7

    def test_flags_aliased_import(self, tmp_path):
        kept, _ = lint_snippet(tmp_path, """\
            import time as walltime

            __all__ = []
            STARTED = walltime.monotonic()
        """, config=SIM_CFG)
        assert "DET002" in codes(kept)

    def test_flags_datetime_now_via_from_import(self, tmp_path):
        kept, _ = lint_snippet(tmp_path, """\
            from datetime import datetime

            __all__ = []
            STAMP = datetime.now()
        """, config=SIM_CFG)
        assert "DET002" in codes(kept)

    @pytest.mark.parametrize("call", [
        "os.urandom(8)", "uuid.uuid4()", "secrets.token_bytes(8)",
    ])
    def test_flags_entropy_reads(self, tmp_path, call):
        module = call.split(".")[0]
        kept, _ = lint_snippet(tmp_path, f"""\
            import {module}

            __all__ = []
            VALUE = {call}
        """, config=SIM_CFG)
        assert "DET002" in codes(kept)

    def test_out_of_scope_module_not_flagged(self, tmp_path):
        kept, _ = lint_snippet(tmp_path, """\
            import time

            __all__ = []
            STARTED = time.time()
        """, config=LintConfig(sim_scopes=("somewhere.else",)))
        assert "DET002" not in codes(kept)

    def test_virtual_clock_reads_pass(self, tmp_path):
        kept, _ = lint_snippet(tmp_path, """\
            __all__ = ["sample"]


            def sample(sim, rng) -> float:
                return sim.now + rng.exponential("mod.lag", 0.5)
        """, config=SIM_CFG)
        assert "DET002" not in codes(kept)


class TestDET003:
    @pytest.mark.parametrize("iterable", [
        "{1, 2, 3}",
        "set(items)",
        "frozenset(items)",
        "{x for x in items}",
        "alive.difference(dead)",
    ])
    def test_flags_for_over_set_expression(self, tmp_path, iterable):
        kept, _ = lint_snippet(tmp_path, f"""\
            __all__ = ["walk"]


            def walk(items, alive, dead):
                out = []
                for item in {iterable}:
                    out.append(item)
                return out
        """, config=SIM_CFG)
        det = [f for f in kept if f.code == "DET003"]
        assert len(det) == 1
        assert det[0].line == 6

    def test_flags_comprehension_generator(self, tmp_path):
        kept, _ = lint_snippet(tmp_path, """\
            __all__ = ["walk"]


            def walk(items):
                return [item for item in set(items)]
        """, config=SIM_CFG)
        assert "DET003" in codes(kept)

    def test_sorted_wrapping_passes(self, tmp_path):
        kept, _ = lint_snippet(tmp_path, """\
            __all__ = ["walk"]


            def walk(items):
                out = []
                for item in sorted(set(items)):
                    out.append(item)
                return out
        """, config=SIM_CFG)
        assert "DET003" not in codes(kept)

    def test_list_iteration_passes(self, tmp_path):
        kept, _ = lint_snippet(tmp_path, """\
            __all__ = ["walk"]


            def walk(items):
                return [item for item in list(items)]
        """, config=SIM_CFG)
        assert "DET003" not in codes(kept)

    def test_out_of_scope_not_flagged(self, tmp_path):
        kept, _ = lint_snippet(tmp_path, """\
            __all__ = ["walk"]


            def walk(items):
                return [item for item in set(items)]
        """, config=LintConfig(sim_scopes=("somewhere.else",)))
        assert "DET003" not in codes(kept)


class TestDET004:
    @pytest.mark.parametrize("call", [
        "sum({a, b})",
        "sum(set(values))",
        "sum(v * v for v in set(values))",
        "sum(by_shard.values())",
        "sum(shard_results.values())",
        "sum(w.mean for w in shards.values())",
        "fsum(set(values))",
        "mean(set(values))",
    ])
    def test_flags_unordered_reductions(self, tmp_path, call):
        kept, _ = lint_snippet(tmp_path, f"""\
            from math import fsum
            from statistics import mean

            __all__ = ["merge"]


            def merge(a, b, values, by_shard, shard_results, shards):
                return {call}
        """, config=AGG_CFG)
        det = [f for f in kept if f.code == "DET004"]
        assert len(det) == 1
        assert det[0].line == 8

    def test_resolves_import_aliases(self, tmp_path):
        kept, _ = lint_snippet(tmp_path, """\
            import statistics as st

            __all__ = ["merge"]


            def merge(values):
                return st.fmean(set(values))
        """, config=AGG_CFG)
        assert "DET004" in codes(kept)

    @pytest.mark.parametrize("call", [
        "sum(values)",
        "sum(sorted(set(values)))",
        "sum(sorted(by_shard.values()))",
        "sum(results.values())",
        "min(set(values))",
        "len(set(values))",
    ])
    def test_ordered_or_insensitive_reductions_pass(self, tmp_path,
                                                    call):
        kept, _ = lint_snippet(tmp_path, f"""\
            __all__ = ["merge"]


            def merge(values, by_shard, results):
                return {call}
        """, config=AGG_CFG)
        assert "DET004" not in codes(kept)

    def test_out_of_scope_not_flagged(self, tmp_path):
        kept, _ = lint_snippet(tmp_path, """\
            __all__ = ["merge"]


            def merge(values):
                return sum(set(values))
        """, config=LintConfig(
            aggregation_scopes=("somewhere.else",)))
        assert "DET004" not in codes(kept)

    def test_aggregation_scope_defaults_cover_merge_layers(self):
        config = LintConfig()
        assert config.in_aggregation_scope("repro.fleet.executor")
        assert config.in_aggregation_scope("repro.analysis.cdf")
        assert config.in_aggregation_scope("repro.io")
        assert config.in_aggregation_scope("repro.methodology.sweep")
        assert config.in_aggregation_scope("repro.stream")
        assert config.in_aggregation_scope("repro.stream.engine")
        assert not config.in_aggregation_scope("repro.lint.engine")

    def test_stream_module_covered_by_default_config(self, tmp_path):
        """A repro.stream module summing per-shard telemetry over a
        dict view is caught under the *default* config — the streaming
        engine merges live results and so sits in aggregation scope."""
        (tmp_path / "repro" / "stream").mkdir(parents=True)
        (tmp_path / "repro" / "__init__.py").write_text("")
        (tmp_path / "repro" / "stream" / "__init__.py").write_text("")
        kept, _ = lint_snippet(
            tmp_path, """\
                __all__ = ["total_state"]


                def total_state(state_by_shard):
                    return sum(state_by_shard.values())
            """,
            filename="repro/stream/telemetry.py",
            config=LintConfig(),
        )
        det = [f for f in kept if f.code == "DET004"]
        assert len(det) == 1

    def test_pyproject_aggregation_scopes_include_stream(self):
        config = load_config(REPO_ROOT / "pyproject.toml")
        assert "repro.stream" in config.aggregation_scopes


WORLD_CFG = LintConfig(world_scopes=("mod",),
                       world_bus_modules=("mod.bus", "mod.engine"))


class TestDET007:
    @pytest.mark.parametrize("reach", [
        "self._replicas[target].feeds",
        "replicas[target].deliver(message)",
        "shards[index].state",
        "self._sims[j].schedule_at(0.0, work)",
        "world.shard_map[key].cohorts.pop(0)",
    ])
    def test_flags_reach_through_shard_collections(self, tmp_path,
                                                   reach):
        kept, _ = lint_snippet(tmp_path, f"""\
            __all__ = ["Replica"]


            class Replica:
                def poke(self, target, index, j, key, message, work,
                         replicas, shards, world):
                    return {reach}
        """, config=WORLD_CFG)
        det = [f for f in kept if f.code == "DET007"]
        assert len(det) == 1
        assert det[0].line == 7
        assert "world bus" in det[0].message

    @pytest.mark.parametrize("clean", [
        "self.feeds[key].append(message)",   # own state, not a shard
        "self.bus.send(origin=0, target=1)",  # the sanctioned channel
        "times[position]",                    # untagged collection
        "self._replicas[target]",             # bare subscript, no reach
    ])
    def test_clean_world_shapes_pass(self, tmp_path, clean):
        kept, _ = lint_snippet(tmp_path, f"""\
            __all__ = ["Replica"]


            class Replica:
                def step(self, key, target, position, message, times):
                    return {clean}
        """, config=WORLD_CFG)
        assert "DET007" not in codes(kept)

    def test_bus_modules_exempt(self, tmp_path):
        source = """\
            __all__ = ["barrier"]


            def barrier(sims, end):
                for index in range(len(sims)):
                    sims[index].run_until(end)
        """
        kept, _ = lint_snippet(tmp_path, source,
                               filename="engine.py", config=LintConfig(
                                   world_scopes=("engine",),
                                   world_bus_modules=("engine",)))
        assert "DET007" not in codes(kept)
        # The same shape outside the bus modules is a finding.
        kept, _ = lint_snippet(tmp_path, source, config=LintConfig(
            world_scopes=("mod",)))
        assert "DET007" in codes(kept)

    def test_out_of_scope_not_flagged(self, tmp_path):
        kept, _ = lint_snippet(tmp_path, """\
            __all__ = ["poke"]


            def poke(replicas, target):
                return replicas[target].feeds
        """)
        assert "DET007" not in codes(kept)

    def test_pyproject_world_scopes_cover_the_world(self):
        config = load_config(REPO_ROOT / "pyproject.toml")
        assert config.in_world_scope("repro.world.model")
        assert config.is_world_bus_module("repro.world.engine")
        assert config.is_world_bus_module("repro.world.bus")
        assert not config.is_world_bus_module("repro.world.model")


class TestTRACE001:
    def test_flags_mutating_call_through_chain(self, tmp_path):
        kept, _ = lint_snippet(tmp_path, """\
            __all__ = ["Checker"]


            class Checker:
                def check(self, trace):
                    trace.operations.append(None)
                    return []
        """, config=TRACE_CFG)
        trace = [f for f in kept if f.code == "TRACE001"]
        assert len(trace) == 1
        assert trace[0].line == 6

    def test_flags_sort_on_annotated_param(self, tmp_path):
        kept, _ = lint_snippet(tmp_path, """\
            from repro.core.trace import TestTrace

            __all__ = ["scan"]


            def scan(subject: TestTrace):
                subject.reads.sort()
                return subject
        """, config=TRACE_CFG)
        assert "TRACE001" in codes(kept)

    def test_flags_item_assignment_and_delete(self, tmp_path):
        kept, _ = lint_snippet(tmp_path, """\
            __all__ = ["scrub"]


            def scrub(trace):
                trace.operations[0] = None
                del trace.agents
        """, config=TRACE_CFG)
        trace = [f for f in kept if f.code == "TRACE001"]
        assert len(trace) == 2

    def test_local_mutation_passes(self, tmp_path):
        kept, _ = lint_snippet(tmp_path, """\
            __all__ = ["Checker"]


            class Checker:
                def check(self, trace):
                    observations = []
                    for read in trace.reads:
                        observations.append(read)
                    observations.sort()
                    return observations
        """, config=TRACE_CFG)
        assert "TRACE001" not in codes(kept)

    def test_out_of_scope_not_flagged(self, tmp_path):
        kept, _ = lint_snippet(tmp_path, """\
            __all__ = ["tweak"]


            def tweak(trace):
                trace.operations.append(None)
        """, config=LintConfig(trace_scopes=("somewhere.else",)))
        assert "TRACE001" not in codes(kept)


class TestAPI001:
    def test_flags_missing_all(self, tmp_path):
        kept, _ = lint_snippet(tmp_path, """\
            def visible():
                return 1
        """)
        api = [f for f in kept if f.code == "API001"]
        assert len(api) == 1
        assert api[0].line == 1
        assert api[0].severity is Severity.WARNING

    def test_module_with_all_passes(self, tmp_path):
        kept, _ = lint_snippet(tmp_path, """\
            __all__ = ["visible"]


            def visible():
                return 1
        """)
        assert "API001" not in codes(kept)

    def test_private_module_exempt(self, tmp_path):
        kept, _ = lint_snippet(tmp_path, """\
            VERSION = "1.0"
        """, filename="_internal.py")
        assert "API001" not in codes(kept)

    def test_dunder_main_exempt(self, tmp_path):
        kept, _ = lint_snippet(tmp_path, """\
            print("hi")
        """, filename="__main__.py")
        assert "API001" not in codes(kept)

    def test_package_init_required(self, tmp_path):
        kept, _ = lint_snippet(tmp_path, """\
            from os import sep
        """, filename="pkg/__init__.py")
        assert "API001" in codes(kept)


class TestWaivers:
    def test_line_waiver_suppresses_and_is_recorded(self, tmp_path):
        kept, waived = lint_snippet(tmp_path, """\
            import random  # repro-lint: disable=DET001

            __all__ = []
        """)
        assert "DET001" not in codes(kept)
        assert codes(waived) == ["DET001"]
        assert waived[0].waived is True

    def test_waiver_for_other_rule_does_not_suppress(self, tmp_path):
        kept, waived = lint_snippet(tmp_path, """\
            import random  # repro-lint: disable=DET002

            __all__ = []
        """)
        assert "DET001" in codes(kept)
        assert not waived

    def test_disable_all_on_line(self, tmp_path):
        kept, waived = lint_snippet(tmp_path, """\
            import random  # repro-lint: disable=all

            __all__ = []
        """)
        assert "DET001" not in codes(kept)
        assert "DET001" in codes(waived)

    def test_file_wide_waiver(self, tmp_path):
        kept, waived = lint_snippet(tmp_path, """\
            # repro-lint: disable-file=API001
            def visible():
                return 1
        """)
        assert "API001" not in codes(kept)
        assert "API001" in codes(waived)

    def test_collect_waivers_parses_code_lists(self):
        waivers = collect_waivers(
            "x = 1  # repro-lint: disable=DET001, DET003\n"
            "# repro-lint: disable-file=API001\n"
        )
        assert waivers.is_waived(1, "DET001")
        assert waivers.is_waived(1, "DET003")
        assert not waivers.is_waived(1, "DET002")
        assert waivers.is_waived(99, "API001")

    def test_directive_inside_string_is_not_a_waiver(self, tmp_path):
        kept, _ = lint_snippet(tmp_path, """\
            TEXT = "# repro-lint: disable=DET001"
            import random

            __all__ = []
        """)
        assert "DET001" in codes(kept)


class TestConfig:
    def test_pyproject_ignore_respected(self, tmp_path):
        (tmp_path / "pyproject.toml").write_text(textwrap.dedent("""\
            [tool.repro-lint]
            ignore = ["API001"]
        """))
        config = load_config(tmp_path / "pyproject.toml")
        assert not config.enabled("API001")
        assert config.enabled("DET001")
        kept, _ = lint_snippet(tmp_path, """\
            def visible():
                return 1
        """, config=config)
        assert "API001" not in codes(kept)

    def test_defaults_without_pyproject(self):
        config = load_config(None)
        assert config.enabled("DET001")
        assert config.random_allowed("repro.sim.random_source")
        assert config.in_sim_scope("repro.replication.eventual")
        assert config.in_trace_scope(
            "repro.core.anomalies.monotonic_reads")
        # The analysis layer joined the sim scope when scope lists
        # became inference-backed; the linter itself never did.
        assert config.in_sim_scope("repro.analysis.cdf")
        assert not config.in_sim_scope("repro.lint.engine")
        # repro.fleet is consciously exempt from scope inference.
        assert config.in_scope_exempt("repro.fleet.executor")

    def test_with_overrides(self):
        config = LintConfig().with_overrides(
            select=("DET001",), ignore=("DET003",))
        assert config.enabled("DET001")
        assert not config.enabled("DET002")
        assert not config.enabled("DET003")

    def test_find_pyproject_walks_up(self, tmp_path):
        (tmp_path / "pyproject.toml").write_text("[tool.repro-lint]\n")
        nested = tmp_path / "a" / "b"
        nested.mkdir(parents=True)
        assert find_pyproject(nested) == tmp_path / "pyproject.toml"

    def test_minimal_toml_fallback_matches_schema(self):
        # The 3.10 fallback parser must read the same table tomllib
        # does; exercised unconditionally so CI on 3.12 still covers
        # the 3.10 code path.
        text = textwrap.dedent("""\
            [project]
            name = "repro"  # unrelated table

            [tool.repro-lint]
            select = ["DET001", "DET002"]  # trailing comment
            ignore = []
            sim-scopes = [
                "repro.sim",
                "repro.services",
            ]
            random-allowlist = ["repro.sim.random_source"]

            [tool.other]
            select = ["NOT-OURS"]
        """)
        table = parse_minimal_toml_table(text, "tool.repro-lint")
        assert table["select"] == ["DET001", "DET002"]
        assert table["ignore"] == []
        assert table["sim-scopes"] == ["repro.sim", "repro.services"]
        config = config_from_table(table)
        assert config.select == ("DET001", "DET002")
        assert config.sim_scopes == ("repro.sim", "repro.services")

    def test_fallback_agrees_with_tomllib_on_repo_pyproject(self):
        tomllib = pytest.importorskip("tomllib")
        text = (REPO_ROOT / "pyproject.toml").read_text()
        expected = tomllib.loads(text)["tool"]["repro-lint"]
        assert parse_minimal_toml_table(text, "tool.repro-lint") == \
            expected


class TestEngineAndModuleNames:
    def test_module_name_from_package_chain(self, tmp_path):
        pkg = tmp_path / "repro" / "sim"
        pkg.mkdir(parents=True)
        (tmp_path / "repro" / "__init__.py").write_text("__all__ = []\n")
        (pkg / "__init__.py").write_text("__all__ = []\n")
        target = pkg / "clock.py"
        target.write_text("__all__ = []\n")
        assert module_name(target) == "repro.sim.clock"
        assert module_name(pkg / "__init__.py") == "repro.sim"

    def test_findings_sorted_and_deterministic(self, tmp_path):
        (tmp_path / "b.py").write_text("import random\n__all__ = []\n")
        (tmp_path / "a.py").write_text("import random\n__all__ = []\n")
        first = lint_paths([tmp_path])
        second = lint_paths([tmp_path])
        assert [f.path for f in first.findings] == sorted(
            f.path for f in first.findings)
        assert first.findings == second.findings

    def test_syntax_error_reported_not_raised(self, tmp_path):
        (tmp_path / "broken.py").write_text("def oops(:\n")
        result = lint_paths([tmp_path])
        assert codes(result.findings) == ["SYNTAX"]
        assert not result.ok

    def test_exclude_globs(self, tmp_path):
        (tmp_path / "skipme.py").write_text("import random\n")
        result = lint_paths(
            [tmp_path], LintConfig(exclude=("*skipme*",)))
        assert result.files_checked == 0


class TestCli:
    def test_exit_zero_on_clean_tree(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text("__all__ = []\n")
        assert lint_main([str(tmp_path)]) == 0
        assert "no findings" in capsys.readouterr().out

    def test_exit_one_on_findings(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text("import random\n__all__ = []\n")
        assert lint_main([str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "bad.py:1:0: DET001" in out

    def test_exit_two_on_missing_path(self, tmp_path, capsys):
        missing = tmp_path / "nope"
        assert lint_main([str(missing)]) == 2
        assert "error" in capsys.readouterr().err

    def test_json_schema(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text("import random\n__all__ = []\n")
        assert lint_main(["--format", "json", str(tmp_path)]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == 2
        assert payload["files_checked"] == 1
        assert payload["notes"] == []
        assert payload["summary"] == {
            "total": 1, "waived": 0, "baselined": 0,
            "by_rule": {"DET001": 1},
        }
        assert "project" not in payload
        (finding,) = payload["findings"]
        assert finding["code"] == "DET001"
        assert finding["line"] == 1
        assert finding["col"] == 0
        assert finding["severity"] == "error"
        assert finding["path"].endswith("bad.py")
        assert "message" in finding

    def test_json_reports_waived(self, tmp_path, capsys):
        (tmp_path / "waived.py").write_text(
            "import random  # repro-lint: disable=DET001\n"
            "__all__ = []\n")
        assert lint_main(["--format", "json", str(tmp_path)]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["waived"] == 1
        assert payload["waived"][0]["code"] == "DET001"

    def test_select_and_ignore_flags(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text("import random\n")
        assert lint_main(["--select", "API001", str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "DET001" not in out and "API001" in out
        assert lint_main(
            ["--ignore", "DET001,API001", str(tmp_path)]) == 0

    def test_typoed_select_is_usage_error_not_false_clean(
            self, tmp_path, capsys):
        # A typo'd code must not silently disable the battery.
        (tmp_path / "bad.py").write_text("import random\n__all__ = []\n")
        assert lint_main(["--select", "DET01", str(tmp_path)]) == 2
        err = capsys.readouterr().err
        assert "unknown rule code" in err and "DET001" in err
        assert lint_main(["--ignore", "NOPE123", str(tmp_path)]) == 2
        capsys.readouterr()

    def test_list_rules_mentions_every_code(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in SHIPPED_RULES:
            assert code in out

    def test_repro_consistency_lint_subcommand(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text("import random\n__all__ = []\n")
        assert repro_main(["lint", str(tmp_path)]) == 1
        assert "DET001" in capsys.readouterr().out
        assert repro_main(["lint", "--list-rules"]) == 0
        capsys.readouterr()


class TestSelfApplication:
    """The linter's verdict on this repository itself."""

    def test_src_tree_has_zero_unwaived_findings(self):
        config = load_config(REPO_ROOT / "pyproject.toml")
        result = LintEngine(config).lint_paths([SRC])
        assert result.files_checked > 80
        assert result.ok, "\n".join(
            f"{f.location()}: {f.code} {f.message}"
            for f in result.findings)

    def test_calibrate_package_is_in_scope_and_clean(self):
        # repro.calibrate aggregates fidelity losses across candidate
        # fleets, so it must sit in the DET004 aggregation scope (both
        # the built-in default and the checked-in pyproject config)
        # and lint clean under the repository configuration.
        from repro.lint.config import DEFAULT_AGGREGATION_SCOPES

        assert "repro.calibrate" in DEFAULT_AGGREGATION_SCOPES
        config = load_config(REPO_ROOT / "pyproject.toml")
        assert "repro.calibrate" in config.aggregation_scopes
        calibrate_dir = SRC / "repro" / "calibrate"
        result = LintEngine(config).lint_paths([calibrate_dir])
        assert result.files_checked >= 8
        assert result.ok, "\n".join(
            f"{f.location()}: {f.code} {f.message}"
            for f in result.findings)

    def test_injected_random_call_is_caught_at_line(self, tmp_path):
        # Mirror of the acceptance criterion: drop a random.random()
        # call into a copy of repro/replication/eventual.py and expect
        # a DET001 finding at exactly that line.
        source = (SRC / "repro" / "replication" /
                  "eventual.py").read_text()
        marker = "from __future__ import annotations\n"
        injected = source.replace(
            marker, marker + "_jitter = random.random()\n", 1)
        bad = tmp_path / "eventual.py"
        bad.write_text(injected)
        expected_line = injected[:injected.index("_jitter")].count(
            "\n") + 1
        result = lint_paths([bad])
        det = [f for f in result.findings if f.code == "DET001"]
        assert [f.line for f in det] == [expected_line]
        assert not result.ok

    def test_finding_dataclass_roundtrip(self):
        finding = Finding(path="x.py", line=3, col=1, code="DET001",
                          message="m", severity=Severity.ERROR)
        assert finding.location() == "x.py:3:1"
        assert finding.as_waived().waived is True
        assert finding.as_waived() == finding  # waived not compared
