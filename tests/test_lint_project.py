"""Tests for the whole-program lint pass (``--project``).

Covers phase 1 (per-module summaries: locals/global-write extraction,
``global`` vs ``nonlocal`` scoping, call-site resolution, unordered
sinks, the JSON round trip the cache relies on), phase 2 (import graph,
reachability with call-chain rendering, scope inference and its audit
notes), each cross-module rule (DET005, DET006, PAR001, TRACE002) with
a known-bad fixture package, the content-hash cache, the
``--write-waivers``/``--baseline`` pair, and the meta-test that this
repository's own ``src/`` tree is clean under the whole battery.
"""

import ast
import json
import textwrap
from pathlib import Path

from repro.lint import (
    LintConfig,
    LintEngine,
    lint_paths,
    load_config,
    module_name,
)
from repro.lint.cli import main as lint_main
from repro.lint.graph import build_project_model
from repro.lint.summaries import (
    summarize_module,
    summary_from_dict,
    summary_to_dict,
)

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"


def summarize(source, module="pkg.mod", is_package=False):
    tree = ast.parse(textwrap.dedent(source))
    return summarize_module(tree, module, f"{module}.py", is_package)


def codes(findings):
    return [finding.code for finding in findings]


def write_package(tmp_path, name, files):
    """Materialize a fixture package and return its directory."""
    root = tmp_path / name
    root.mkdir()
    for filename, source in files.items():
        (root / filename).write_text(
            textwrap.dedent(source), encoding="utf-8")
    return root


def build_model(root, config):
    """Phase 1 + 2 by hand, for golden assertions on the model."""
    summaries = {}
    for path in sorted(root.glob("*.py")):
        module = module_name(path)
        tree = ast.parse(path.read_text(encoding="utf-8"))
        summaries[module] = summarize_module(
            tree, module, str(path),
            is_package=path.name == "__init__.py")
    return build_project_model(summaries, config)


# A mini-package with an entry point that transitively writes
# module-level mutable state two ways: through an imported submodule
# alias and through a ``from``-imported name.
PKG_FILES = {
    "__init__.py": """\
        \"\"\"Fixture package.\"\"\"

        from pkg.runner import run

        __all__ = ["run"]
    """,
    "state.py": """\
        \"\"\"Module-level mutable state.\"\"\"

        __all__ = ["CACHE", "record"]

        CACHE = {}


        def record(key, value):
            CACHE[key] = value
    """,
    "helpers.py": """\
        \"\"\"Writes another module's global through an import.\"\"\"

        from pkg.state import CACHE

        __all__ = ["remember"]


        def remember(key):
            CACHE[key] = True
    """,
    "runner.py": """\
        \"\"\"The fixture's campaign entry point.\"\"\"

        from pkg import state
        from pkg.helpers import remember

        __all__ = ["run"]


        def run(keys):
            for key in keys:
                state.record(key, 1)
            remember("done")
            return len(keys)
    """,
}

PKG_CFG = LintConfig(
    entry_points=("pkg.runner.run",),
    sim_scopes=("pkg",),
    aggregation_scopes=("pkg",),
    trace_scopes=(),
)


class TestFunctionSummaries:
    def test_scoping_calls_and_writes(self):
        summary = summarize("""\
            import pkg.state as st
            from pkg.other import helper

            TABLE = {}


            def outer(a, b):
                global COUNT
                COUNT = a
                total = 0

                def inner():
                    nonlocal total
                    total += 1

                st.record(a)
                helper(b, key=a)
                TABLE["k"] = a
                return inner
        """)
        assert set(summary.functions) == {"outer", "outer.inner"}
        assert summary.mutable_globals == {"TABLE": 4}

        outer = summary.functions["outer"]
        assert outer.fid == "pkg.mod.outer"
        assert outer.params == ("a", "b")
        assert {"total", "inner"} <= outer.locals_
        # ``global COUNT`` removes the name from the local scope even
        # though it is assigned inside the function.
        assert "COUNT" not in outer.locals_
        writes = {(w.name, w.how) for w in outer.global_writes}
        assert ("COUNT", "rebinding via 'global'") in writes
        assert ("TABLE", "item assignment") in writes
        resolved = {c.resolved for c in outer.calls}
        assert "pkg.state.record" in resolved
        assert "pkg.other.helper" in resolved
        assert outer.local_callables == {"inner": "nested"}
        assert outer.nested == ("outer.inner",)

    def test_nonlocal_is_closure_state_not_a_global_write(self):
        summary = summarize("""\
            def outer():
                total = 0

                def bump():
                    nonlocal total
                    total += 1

                bump()
                return total
        """)
        inner = summary.functions["outer.bump"]
        assert inner.is_nested
        assert "total" in inner.locals_
        assert inner.global_writes == ()

    def test_parameter_mutations(self):
        summary = summarize("""\
            def fill(rows, item):
                rows.append(item)
        """)
        fill = summary.functions["fill"]
        assert fill.mutated_params == frozenset({"rows"})
        assert fill.global_writes == ()

    def test_unordered_sinks(self):
        summary = summarize("""\
            NAMES = list({"a", "b"})


            def merge(shard_results):
                out = []
                for item in shard_results.values():
                    out.append(item)
                return out
        """)
        shapes = {(s.via, s.reason) for s in summary.unordered_sinks}
        assert ("list", "an unordered set expression") in shapes
        assert ("for", "a shard-keyed dict view") in shapes

    def test_json_round_trip(self):
        summary = summarize(PKG_FILES["runner.py"], module="pkg.runner")
        payload = json.loads(json.dumps(summary_to_dict(summary)))
        assert summary_from_dict(payload) == summary


class TestProjectModel:
    def test_import_graph_and_reachability(self, tmp_path):
        root = write_package(tmp_path, "pkg", PKG_FILES)
        model = build_model(root, PKG_CFG)

        assert model.entry_points == ("pkg.runner.run",)
        edges = set(model.import_graph["pkg.runner"])
        assert {"pkg.state", "pkg.helpers"} <= edges
        assert {"pkg.runner.run", "pkg.state.record",
                "pkg.helpers.remember"} <= model.reachable
        assert model.reach_path("pkg.state.record") == [
            "pkg.runner.run", "pkg.state.record"]
        # Scope inference: the import closure of the entry module.
        assert {"pkg", "pkg.runner", "pkg.state",
                "pkg.helpers"} <= model.inferred_sim_modules
        # Scopes match the inference, so the audit stays silent.
        assert model.notes == []

    def test_unresolvable_entry_point_noted(self, tmp_path):
        root = write_package(tmp_path, "pkg", PKG_FILES)
        model = build_model(root, LintConfig(
            entry_points=("pkg.runner.missing",),
            sim_scopes=("pkg",)))
        assert model.entry_points == ()
        assert any("does not resolve" in note for note in model.notes)

    def test_scope_audit_flags_inferred_but_unconfigured(self, tmp_path):
        root = write_package(tmp_path, "pkg", PKG_FILES)
        model = build_model(root, LintConfig(
            entry_points=("pkg.runner.run",),
            sim_scopes=("pkg.runner", "pkg.ghost"),
            scope_exempt=()))
        audit = [n for n in model.notes if n.startswith("scope audit")]
        assert any("'pkg.state'" in note for note in audit)
        assert any("'pkg.ghost'" in note and "matches no analyzed"
                   in note for note in audit)

    def test_scope_exempt_silences_the_audit(self, tmp_path):
        root = write_package(tmp_path, "pkg", PKG_FILES)
        model = build_model(root, LintConfig(
            entry_points=("pkg.runner.run",),
            sim_scopes=("pkg.runner",),
            scope_exempt=("pkg",)))
        assert not [n for n in model.notes
                    if "is not in sim-scopes" in n]


class TestDET005:
    def test_reachable_global_writes_are_caught(self, tmp_path):
        root = write_package(tmp_path, "pkg", PKG_FILES)
        result = lint_paths([root], PKG_CFG, project=True)
        det5 = [f for f in result.findings if f.code == "DET005"]
        messages = " | ".join(f.message for f in det5)
        assert len(det5) == 2
        assert "pkg.state.CACHE" in messages
        assert "run -> record" in messages
        assert "of another module" in messages  # the helpers.py write

    def test_smuggled_mutation_deep_in_the_call_chain(self, tmp_path):
        # Regression: a module-global mutation three calls below the
        # entry point, through an ``import ... as`` alias, must still
        # be caught — and an identical but *unreachable* write must
        # not be.
        root = write_package(tmp_path, "pkg2", {
            "__init__.py": '"""pkg2."""\n\n__all__ = []\n',
            "tables.py": '__all__ = ["REGISTRY"]\n\nREGISTRY = {}\n',
            "deep.py": """\
                import pkg2.tables as tables

                __all__ = ["drive"]


                def drive(n):
                    return _phase(n)


                def _phase(n):
                    return _commit(n)


                def _commit(n):
                    tables.REGISTRY[n] = n
                    return n


                def _unreached():
                    tables.REGISTRY.clear()
            """,
        })
        config = LintConfig(entry_points=("pkg2.deep.drive",),
                            sim_scopes=("pkg2",),
                            aggregation_scopes=("pkg2",))
        result = lint_paths([root], config, project=True)
        det5 = [f for f in result.findings if f.code == "DET005"]
        assert len(det5) == 1
        assert det5[0].message.count("pkg2.tables.REGISTRY") == 1
        assert "drive -> _phase -> _commit" in det5[0].message
        assert det5[0].path.endswith("deep.py")

    def test_waiver_comment_suppresses_project_finding(self, tmp_path):
        files = dict(PKG_FILES)
        files["state.py"] = files["state.py"].replace(
            "CACHE[key] = value",
            "CACHE[key] = value  # repro-lint: disable=DET005")
        files["helpers.py"] = files["helpers.py"].replace(
            "CACHE[key] = True",
            "CACHE[key] = True  # repro-lint: disable=DET005")
        root = write_package(tmp_path, "pkg", files)
        result = lint_paths([root], PKG_CFG, project=True)
        assert "DET005" not in codes(result.findings)
        assert codes(result.waived).count("DET005") == 2


class TestDET006:
    def test_materialized_hash_order_in_agg_scope(self, tmp_path):
        root = write_package(tmp_path, "pkg3", {
            "__init__.py": '"""pkg3."""\n\n__all__ = []\n',
            "merge.py": """\
                __all__ = ["merge"]


                def merge(shard_results):
                    keys = list({"b", "a"})
                    rows = []
                    for item in shard_results.values():
                        rows.append(item)
                    return keys + rows
            """,
        })
        config = LintConfig(aggregation_scopes=("pkg3",),
                            sim_scopes=())
        result = lint_paths([root], config, project=True)
        det6 = [f for f in result.findings if f.code == "DET006"]
        assert len(det6) == 2
        messages = " | ".join(f.message for f in det6)
        assert "list()" in messages
        assert "a shard-keyed dict view" in messages

    def test_set_iteration_in_sim_scope_defers_to_det003(self, tmp_path):
        # One hazard, one finding: DET003 already owns for-loops over
        # set expressions inside sim scopes.
        root = write_package(tmp_path, "pkg4", {
            "__init__.py": '"""pkg4."""\n\n__all__ = []\n',
            "loop.py": """\
                __all__ = ["spin"]


                def spin():
                    out = []
                    for item in {"a", "b"}:
                        out.append(item)
                    return out
            """,
        })
        config = LintConfig(sim_scopes=("pkg4",),
                            aggregation_scopes=("pkg4",))
        result = lint_paths([root], config, project=True)
        assert "DET003" in codes(result.findings)
        assert "DET006" not in codes(result.findings)


class TestPAR001:
    def test_lambda_and_closure_crossing_process_boundary(self, tmp_path):
        root = write_package(tmp_path, "pkg5", {
            "__init__.py": '"""pkg5."""\n\n__all__ = []\n',
            "spawn.py": """\
                import multiprocessing

                __all__ = ["launch"]


                def launch(payload):
                    def _work():
                        return payload

                    proc = multiprocessing.Process(target=_work)
                    also = multiprocessing.Process(
                        target=lambda: payload)
                    return proc, also
            """,
        })
        result = lint_paths([root], LintConfig(), project=True)
        par = [f for f in result.findings if f.code == "PAR001"]
        assert len(par) == 2
        messages = " | ".join(f.message for f in par)
        assert "a lambda" in messages
        assert "nested function" in messages
        assert "spawn start method" in messages

    def test_restricted_boundary_checks_only_named_kwargs(self, tmp_path):
        # ``target:arg`` boundary specs mirror run_fleet: only the
        # shard runner crosses the pipe; host-side callbacks may be
        # closures.
        root = write_package(tmp_path, "pkg6", {
            "__init__.py": '"""pkg6."""\n\n__all__ = []\n',
            "jobs.py": """\
                __all__ = ["dispatch"]


                def dispatch(runner=None, on_event=None):
                    return runner, on_event
            """,
            "caller.py": """\
                from pkg6.jobs import dispatch

                __all__ = ["go"]


                def go():
                    return dispatch(runner=lambda: 1,
                                    on_event=lambda: 2)
            """,
        })
        config = LintConfig(
            pipe_boundaries=("pkg6.jobs.dispatch:runner",))
        result = lint_paths([root], config, project=True)
        par = [f for f in result.findings if f.code == "PAR001"]
        assert len(par) == 1
        assert "argument 'runner'" in par[0].message


class TestTRACE002:
    def test_direct_mutation_after_emission(self, tmp_path):
        root = write_package(tmp_path, "pkg7", {
            "__init__.py": '"""pkg7."""\n\n__all__ = []\n',
            "pipe.py": """\
                __all__ = ["publish", "prepare"]


                def publish(sink, record):
                    sink.send(record)
                    record["late"] = True
                    return record


                def prepare(sink, record):
                    record["early"] = True
                    sink.send(record)
                    return record
            """,
        })
        result = lint_paths([root], LintConfig(), project=True)
        trace = [f for f in result.findings if f.code == "TRACE002"]
        assert len(trace) == 1
        assert "'record' is mutated" in trace[0].message
        assert ".send()" in trace[0].message
        # ``prepare`` mutates before emitting: legal.
        lines = {f.line for f in trace}
        assert len(lines) == 1

    def test_mutation_through_a_callee_after_emission(self, tmp_path):
        root = write_package(tmp_path, "pkg8", {
            "__init__.py": '"""pkg8."""\n\n__all__ = []\n',
            "pipe.py": """\
                __all__ = ["publish", "scrub"]


                def scrub(rec):
                    rec.pop("tmp")
                    return rec


                def publish(sink, record):
                    sink.send(record)
                    scrub(record)
                    return record
            """,
        })
        result = lint_paths([root], LintConfig(), project=True)
        trace = [f for f in result.findings if f.code == "TRACE002"]
        assert len(trace) == 1
        assert "pkg8.pipe.scrub" in trace[0].message
        assert "mutates parameter 'rec'" in trace[0].message


class TestCacheAndBaseline:
    def test_cache_hits_and_content_invalidation(self, tmp_path):
        root = write_package(tmp_path, "pkg", PKG_FILES)
        cache = tmp_path / "lint-cache.json"
        first = lint_paths([root], PKG_CFG, project=True,
                           cache_path=cache)
        second = lint_paths([root], PKG_CFG, project=True,
                            cache_path=cache)
        assert any("cache: 4 hits, 0 misses" in n
                   for n in second.notes)
        assert first.findings == second.findings
        assert first.project == second.project

        helpers = root / "helpers.py"
        helpers.write_text(helpers.read_text() + "\n# touched\n")
        third = lint_paths([root], PKG_CFG, project=True,
                           cache_path=cache)
        assert any("cache: 3 hits, 1 miss" in n for n in third.notes)
        assert first.findings == third.findings

    def test_config_change_invalidates_cache(self, tmp_path):
        root = write_package(tmp_path, "pkg", PKG_FILES)
        cache = tmp_path / "lint-cache.json"
        lint_paths([root], PKG_CFG, project=True, cache_path=cache)
        other = LintConfig(entry_points=("pkg.helpers.remember",),
                           sim_scopes=("pkg",),
                           aggregation_scopes=("pkg",))
        result = lint_paths([root], other, project=True,
                            cache_path=cache)
        assert any("cache: 0 hits, 4 misses" in n
                   for n in result.notes)

    def test_write_waivers_then_baseline_round_trip(self, tmp_path):
        root = write_package(tmp_path, "pkg", PKG_FILES)
        baseline = tmp_path / "baseline.json"
        engine = LintEngine(PKG_CFG)
        count = engine.write_waivers([root], baseline, project=True)
        assert count == 2  # the two DET005 findings

        clean = engine.lint_paths([root], project=True,
                                  baseline_path=baseline)
        assert clean.ok
        assert clean.baselined == 2

        # Editing the offending line itself resurfaces the finding.
        state = root / "state.py"
        state.write_text(state.read_text().replace(
            "CACHE[key] = value", "CACHE[key] = [value]"))
        dirty = engine.lint_paths([root], project=True,
                                  baseline_path=baseline)
        assert codes(dirty.findings) == ["DET005"]
        assert dirty.baselined == 1


class TestProjectCli:
    def test_project_json_carries_the_graph_dump(self, tmp_path, capsys):
        write_package(tmp_path, "pkg", PKG_FILES)
        assert lint_main(["--project", "--format", "json",
                          str(tmp_path)]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == 2
        assert payload["project"]["modules"] == 4
        assert "import_graph" in payload["project"]

    def test_write_waivers_flag(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text(
            "import random\n__all__ = []\n")
        baseline = tmp_path / "baseline.json"
        assert lint_main(["--write-waivers", str(baseline),
                          str(tmp_path)]) == 0
        assert "wrote 1 waiver entry" in capsys.readouterr().out
        assert lint_main(["--baseline", str(baseline),
                          str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "no findings" in out and "1 waived" in out


class TestProjectSelfApplication:
    """The whole-program battery's verdict on this repository."""

    def test_src_tree_is_clean_under_project_rules(self):
        config = load_config(REPO_ROOT / "pyproject.toml")
        result = LintEngine(config).lint_paths([SRC], project=True)
        assert result.ok, "\n".join(
            f"{f.location()}: {f.code} {f.message}"
            for f in result.findings)
        assert len(result.project["entry_points"]) == 3
        assert result.project["functions"] > 500
        assert result.project["reachable_functions"] > 100

    def test_no_scope_audit_drift_on_src(self):
        # The checked-in pyproject scope lists must agree with the
        # inferred scope (or consciously exempt the difference).
        config = load_config(REPO_ROOT / "pyproject.toml")
        result = LintEngine(config).lint_paths([SRC], project=True)
        assert not [n for n in result.notes
                    if n.startswith("scope audit")], result.notes
        assert not [n for n in result.notes
                    if "does not resolve" in n], result.notes
