"""Tests for the client-side session-guarantee masking layer.

The masking invariant is checked both with hand-crafted scenarios and
property-based tests: whatever raw views the service returns, the
masked stream must satisfy read-your-writes, monotonic writes, and
monotonic reads relative to the client's own history (and
writes-follow-reads given a dependency registry).
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.masking import DependencyRegistry, SessionGuaranteeClient
from repro.sim import Future


class FakeSession:
    """A scriptable stand-in for a ServiceSession."""

    def __init__(self, views=None):
        self.views = list(views or [])
        self.posted = []

    def post_message(self, message_id):
        self.posted.append(message_id)
        future = Future()
        future.resolve({"id": message_id})
        return future

    def fetch_messages(self):
        future = Future()
        view = self.views.pop(0) if self.views else ()
        future.resolve(tuple(view))
        return future


def masked_client(views, registry=None):
    return SessionGuaranteeClient(FakeSession(views), registry=registry)


def fetch(client):
    result = client.fetch_messages()
    assert result.done
    return result.value


def post(client, message_id):
    result = client.post_message(message_id)
    assert result.done
    return result.value


class TestReadYourWrites:
    def test_missing_own_write_is_replayed(self):
        client = masked_client(views=[()])
        post(client, "M1")
        assert fetch(client) == ("M1",)

    def test_present_own_write_is_untouched(self):
        client = masked_client(views=[("M1",)])
        post(client, "M1")
        assert fetch(client) == ("M1",)

    def test_replayed_writes_keep_session_order(self):
        client = masked_client(views=[("X",)])
        post(client, "M1")
        post(client, "M2")
        assert fetch(client) == ("X", "M1", "M2")


class TestMonotonicWrites:
    def test_swapped_own_writes_are_reordered(self):
        client = masked_client(views=[("M2", "M1")])
        post(client, "M1")
        post(client, "M2")
        assert fetch(client) == ("M1", "M2")

    def test_other_messages_keep_their_slots(self):
        client = masked_client(views=[("M2", "X", "M1", "Y")])
        post(client, "M1")
        post(client, "M2")
        assert fetch(client) == ("M1", "X", "M2", "Y")

    def test_partial_visibility_replays_missing_earlier_write(self):
        client = masked_client(views=[("M2",)])
        post(client, "M1")
        post(client, "M2")
        view = fetch(client)
        assert view.index("M1") < view.index("M2")


class TestMonotonicReads:
    def test_vanished_message_is_replayed(self):
        client = masked_client(views=[("A", "B"), ("B",)])
        assert fetch(client) == ("A", "B")
        assert fetch(client) == ("A", "B")

    def test_vanished_message_keeps_neighbourhood(self):
        client = masked_client(views=[("A", "B", "C"), ("A", "C")])
        fetch(client)
        assert fetch(client) == ("A", "B", "C")

    def test_new_messages_still_appear(self):
        client = masked_client(views=[("A",), ("A", "B")])
        fetch(client)
        assert fetch(client) == ("A", "B")

    def test_vanishing_prefix_is_restored_at_front(self):
        client = masked_client(views=[("A", "B"), ("B",)])
        fetch(client)
        view = fetch(client)
        assert view.index("A") < view.index("B")


class TestWritesFollowReads:
    def test_unknown_dependency_withholds_message(self):
        registry = DependencyRegistry()
        registry.record("R", {"Q"})
        client = masked_client(views=[("R",)], registry=registry)
        assert fetch(client) == ()  # R delayed until Q is visible

    def test_known_dependency_is_replayed(self):
        registry = DependencyRegistry()
        registry.record("R", {"Q"})
        client = masked_client(views=[("Q",), ("R",)],
                               registry=registry)
        assert fetch(client) == ("Q",)
        view = fetch(client)
        assert view.index("Q") < view.index("R")

    def test_dependency_present_passes_through(self):
        registry = DependencyRegistry()
        registry.record("R", {"Q"})
        client = masked_client(views=[("Q", "R")], registry=registry)
        assert fetch(client) == ("Q", "R")

    def test_own_writes_register_dependencies(self):
        registry = DependencyRegistry()
        client = masked_client(views=[("A",)], registry=registry)
        fetch(client)
        post(client, "M1")
        assert registry.dependencies("M1") == frozenset({"A"})

    def test_no_registry_disables_wfr_masking(self):
        client = masked_client(views=[("R",)])
        assert fetch(client) == ("R",)


class TestIntrospection:
    def test_session_writes_and_last_view(self):
        client = masked_client(views=[("M1",)])
        post(client, "M1")
        fetch(client)
        assert client.session_writes == ("M1",)
        assert client.last_view == ("M1",)


# -- Property-based masking invariants --------------------------------------

message_ids = st.sampled_from(["A", "B", "C", "D", "E", "F"])
raw_views = st.lists(
    st.lists(message_ids, max_size=6, unique=True).map(tuple),
    min_size=1, max_size=6,
)
own_write_plans = st.lists(st.sampled_from(["W1", "W2", "W3"]),
                           max_size=3, unique=True)


@settings(max_examples=150, deadline=None)
@given(views=raw_views, own=own_write_plans)
def test_masked_stream_never_violates_session_guarantees(views, own):
    client = masked_client(views=list(views))
    for message_id in own:
        post(client, message_id)
    previous: set[str] = set()
    for _ in range(len(views)):
        view = fetch(client)
        # Read your writes: all own writes present.
        assert set(own).issubset(view)
        # Monotonic writes: own writes in session order.
        positions = [view.index(mid) for mid in own]
        assert positions == sorted(positions)
        # Monotonic reads: nothing previously seen vanishes.
        assert previous.issubset(view)
        previous.update(view)
        # No duplicates introduced by the replay machinery.
        assert len(set(view)) == len(view)


@settings(max_examples=100, deadline=None)
@given(views=raw_views)
def test_masked_stream_respects_dependencies(views):
    registry = DependencyRegistry()
    registry.record("B", {"A"})
    registry.record("D", {"C"})
    client = masked_client(views=list(views), registry=registry)
    for _ in range(len(views)):
        view = fetch(client)
        if "B" in view:
            assert "A" in view
            assert view.index("A") < view.index("B")
        if "D" in view:
            assert "C" in view
            assert view.index("C") < view.index("D")
