"""Long-campaign resource bounds: retention must keep state flat.

The paper's campaigns ran for a month per service.  Our simulated
equivalents must not accumulate state linearly with campaign length:
every store prunes by retention horizon, and the per-test records the
runner keeps are compact.  These tests run longer-than-usual campaigns
and check the service-side state directly.
"""

from repro.methodology import CampaignConfig, MeasurementWorld, run_campaign
from repro.methodology import PAPER_PLANS
from repro.methodology.test1 import run_test1
from repro.sim import spawn


def run_many_test1(world, count, plan):
    for index in range(count):
        process = spawn(world.sim, run_test1, world, f"m{index}",
                        plan)
        while not process.completion.done:
            world.sim.run_until(world.sim.now + 60.0)
        world.sim.run_until(world.sim.now + 15.0)


class TestStoreRetention:
    def test_blogger_store_stays_bounded(self):
        world = MeasurementWorld("blogger", seed=3)
        plan = PAPER_PLANS["blogger"].test1
        run_many_test1(world, 6, plan)
        early_size = len(world.service._group.store)
        run_many_test1(world, 6, plan)
        later_size = len(world.service._group.store)
        # 6 writes per test; without the measured cap this would grow
        # by 36 — retention is 600s and the virtual time here is short,
        # so the store grows but the version history must not explode.
        assert later_size <= early_size + 6 * 6
        assert world.service._group.store.version_count < 200

    def test_googleplus_retention_prunes_old_tests(self):
        world = MeasurementWorld("googleplus", seed=3)
        plan = PAPER_PLANS["googleplus"].test1
        run_many_test1(world, 3, plan)
        replica = world.service._group.replica("gplus-dc-us")
        # Advance beyond the retention horizon; a fresh write triggers
        # pruning of everything older.
        world.sim.run_until(world.sim.now + 700.0)
        replica.accept_write("fresh", "probe")
        assert len(replica.store) <= 3
        assert not any(
            mid.startswith("m0.") for mid in replica.store.view_now()
        )


class TestRecordCompactness:
    def test_records_do_not_retain_traces_by_default(self):
        result = run_campaign("blogger", CampaignConfig(
            num_tests=4, seed=3,
        ))
        assert all(record.trace is None for record in result.records)

    def test_observation_counts_stay_proportionate(self):
        # Even the most anomalous service yields bounded observation
        # lists per record (one per read at worst).
        result = run_campaign("facebook_feed", CampaignConfig(
            num_tests=4, seed=3,
        ))
        for record in result.records:
            total_reads = sum(record.reads_per_agent.values())
            for observations in record.report.observations.values():
                # Divergence anomalies: <= one per pair; session
                # anomalies: bounded by reads x writers.
                assert len(observations) <= max(total_reads * 6, 3)
