"""Integration tests for the test templates and campaign runner."""

import pytest

from repro.core import READ_YOUR_WRITES
from repro.errors import ConfigurationError
from repro.methodology import (
    PAPER_PLANS,
    CampaignConfig,
    MeasurementWorld,
    Test1Config,
    Test2Config,
    analyze_trace,
    run_campaign,
    run_test1,
    run_test2,
)
from repro.sim import spawn


def run_one(world, runner, test_id, config):
    process = spawn(world.sim, runner, world, test_id, config)
    while not process.completion.done:
        world.sim.run_until(world.sim.now + 60.0)
    return process.completion.value


class TestConfigs:
    def test_paper_plans_cover_all_services(self):
        # The paper's four services plus the storage extension.
        assert set(PAPER_PLANS) == {
            "googleplus", "blogger", "facebook_feed", "facebook_group",
            "quorum_kv",
        }

    def test_table1_parameters(self):
        plan = PAPER_PLANS["googleplus"]
        assert plan.test1.read_period == pytest.approx(0.3)
        assert plan.test1.inter_test_gap == pytest.approx(34 * 60.0)
        assert plan.test1.paper_num_tests == 1036

    def test_table2_parameters(self):
        plan = PAPER_PLANS["facebook_feed"]
        assert plan.test2.fast_reads == 20
        assert plan.test2.slow_read_period == pytest.approx(1.0)
        assert plan.test2.paper_num_tests == 1012

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            Test1Config(read_period=0.0)
        with pytest.raises(ConfigurationError):
            Test2Config(reads_per_agent=0)
        with pytest.raises(ConfigurationError):
            CampaignConfig(num_tests=0)
        with pytest.raises(ConfigurationError):
            CampaignConfig(test_types=("test3",))

    def test_partition_span_autoscaling(self):
        assert CampaignConfig(num_tests=1126).effective_partition_tests() \
            == 9
        assert CampaignConfig(num_tests=100).effective_partition_tests() \
            == 1
        assert CampaignConfig(
            num_tests=100, group_partition_tests=5
        ).effective_partition_tests() == 5


class TestWorld:
    def test_world_has_paper_deployment(self):
        world = MeasurementWorld("blogger", seed=1)
        assert world.agent_names == ("oregon", "tokyo", "ireland")
        assert world.coordinator.host == "coordinator"
        regions = {
            agent.name: world.topology.region_of(agent.host).name
            for agent in world.agents
        }
        assert regions == {"oregon": "oregon", "tokyo": "tokyo",
                           "ireland": "ireland"}

    def test_agent_lookup(self):
        world = MeasurementWorld("blogger", seed=1)
        assert world.agent("tokyo").name == "tokyo"
        with pytest.raises(KeyError):
            world.agent("mars")

    def test_agents_have_distinct_skewed_clocks(self):
        world = MeasurementWorld("blogger", seed=1)
        offsets = {agent.clock.offset for agent in world.agents}
        assert len(offsets) == 3
        assert all(offset != 0.0 for offset in offsets)


class TestTest1:
    def test_produces_six_staggered_writes(self):
        world = MeasurementWorld("blogger", seed=2)
        trace = run_one(world, run_test1, "t1",
                        PAPER_PLANS["blogger"].test1)
        assert trace.test_type == "test1"
        writers = [w.agent for w in trace.writes()]
        assert writers == ["oregon", "oregon", "tokyo", "tokyo",
                           "ireland", "ireland"]
        trace.validate()

    def test_wfr_triggers_match_paper(self):
        world = MeasurementWorld("blogger", seed=2)
        trace = run_one(world, run_test1, "t1",
                        PAPER_PLANS["blogger"].test1)
        assert trace.wfr_triggers == {
            "t1.M3": frozenset({"t1.M2"}),
            "t1.M5": frozenset({"t1.M4"}),
        }

    def test_staggering_respects_observation_chain(self):
        # Agent 2's first write (M3) must be invoked only after a
        # tokyo read observed M2.
        world = MeasurementWorld("blogger", seed=2)
        trace = run_one(world, run_test1, "t1",
                        PAPER_PLANS["blogger"].test1)
        m3 = next(w for w in trace.writes() if w.message_id == "t1.M3")
        tokyo_saw_m2 = min(
            read.response_local for read in trace.reads_by("tokyo")
            if read.saw("t1.M2")
        )
        assert m3.invoke_local >= tokyo_saw_m2

    def test_all_agents_keep_reading_until_m6_visible(self):
        world = MeasurementWorld("blogger", seed=2)
        trace = run_one(world, run_test1, "t1",
                        PAPER_PLANS["blogger"].test1)
        for agent in trace.agents:
            assert any(read.saw("t1.M6")
                       for read in trace.reads_by(agent))

    def test_clock_deltas_recorded_for_all_agents(self):
        world = MeasurementWorld("blogger", seed=2)
        trace = run_one(world, run_test1, "t1",
                        PAPER_PLANS["blogger"].test1)
        assert set(trace.clock_deltas) == set(trace.agents)
        assert all(unc > 0 for unc in trace.delta_uncertainty.values())

    def test_message_ids_are_test_scoped(self):
        world = MeasurementWorld("blogger", seed=2)
        trace_a = run_one(world, run_test1, "alpha",
                          PAPER_PLANS["blogger"].test1)
        trace_b = run_one(world, run_test1, "beta",
                          PAPER_PLANS["blogger"].test1)
        assert trace_a.message_ids().isdisjoint(trace_b.message_ids())


class TestTest2:
    def test_each_agent_writes_exactly_once(self):
        world = MeasurementWorld("blogger", seed=4)
        trace = run_one(world, run_test2, "t2",
                        PAPER_PLANS["blogger"].test2)
        assert trace.test_type == "test2"
        writes = trace.writes()
        assert len(writes) == 3
        assert {w.agent for w in writes} == set(trace.agents)

    def test_writes_are_nearly_simultaneous(self):
        world = MeasurementWorld("blogger", seed=4)
        trace = run_one(world, run_test2, "t2",
                        PAPER_PLANS["blogger"].test2)
        # True (ground-truth) invocation times must agree within the
        # clock-sync error bound plus scheduling slack.
        invokes = [w.true_invoke for w in trace.writes()]
        assert max(invokes) - min(invokes) < 0.25

    def test_read_count_matches_configuration(self):
        config = Test2Config(reads_per_agent=12, fast_reads=5)
        world = MeasurementWorld("blogger", seed=4)
        trace = run_one(world, run_test2, "t2", config)
        for agent in trace.agents:
            assert len(trace.reads_by(agent)) == 12

    def test_adaptive_read_cadence(self):
        config = Test2Config(reads_per_agent=10, fast_reads=5,
                             fast_read_period=0.3, slow_read_period=1.0)
        world = MeasurementWorld("blogger", seed=4)
        trace = run_one(world, run_test2, "t2", config)
        reads = trace.reads_by("oregon")
        fast_gaps = [reads[i + 1].invoke_local - reads[i].invoke_local
                     for i in range(3)]
        slow_gaps = [reads[i + 1].invoke_local - reads[i].invoke_local
                     for i in range(6, 9)]
        assert max(fast_gaps) < 0.7
        assert min(slow_gaps) > 0.8


class TestAnalyzeTrace:
    def test_record_contains_windows_for_all_pairs(self):
        world = MeasurementWorld("blogger", seed=5)
        trace = run_one(world, run_test2, "t",
                        PAPER_PLANS["blogger"].test2)
        record = analyze_trace(trace)
        expected_pairs = {("oregon", "tokyo"), ("ireland", "oregon"),
                          ("ireland", "tokyo")}
        assert set(record.content_windows) == expected_pairs
        assert set(record.order_windows) == expected_pairs

    def test_keep_trace_flag(self):
        world = MeasurementWorld("blogger", seed=5)
        trace = run_one(world, run_test2, "t",
                        PAPER_PLANS["blogger"].test2)
        assert analyze_trace(trace, keep_trace=True).trace is trace
        assert analyze_trace(trace, keep_trace=False).trace is None


class TestCampaign:
    def test_campaign_is_deterministic_in_seed(self):
        config = CampaignConfig(num_tests=4, seed=11)
        first = run_campaign("googleplus", config)
        second = run_campaign("googleplus", config)
        assert first.summary() == second.summary()
        assert first.total_reads == second.total_reads

    def test_different_seeds_differ(self):
        a = run_campaign("googleplus",
                         CampaignConfig(num_tests=6, seed=1))
        b = run_campaign("googleplus",
                         CampaignConfig(num_tests=6, seed=2))
        assert a.total_reads != b.total_reads

    def test_campaign_runs_both_test_types(self):
        result = run_campaign("blogger",
                              CampaignConfig(num_tests=3, seed=1))
        assert len(result.of_type("test1")) == 3
        assert len(result.of_type("test2")) == 3

    def test_single_test_type_config(self):
        result = run_campaign(
            "blogger",
            CampaignConfig(num_tests=3, seed=1, test_types=("test2",)),
        )
        assert result.of_type("test1") == []
        assert len(result.of_type("test2")) == 3

    def test_prevalence_helper(self):
        result = run_campaign("blogger",
                              CampaignConfig(num_tests=3, seed=1))
        assert result.prevalence(READ_YOUR_WRITES) == 0.0

    def test_group_partition_injection_causes_divergence(self):
        # With a forced long partition stretch, the facebook_group
        # test-2 campaign must show content divergence involving tokyo.
        result = run_campaign(
            "facebook_group",
            CampaignConfig(num_tests=6, seed=3,
                           test_types=("test2",),
                           group_partition_tests=3),
        )
        diverged = [
            record for record in result.of_type("test2")
            if record.report.has("content_divergence")
        ]
        assert diverged, "injected partition must surface divergence"
        for record in diverged:
            pairs = record.report.diverged_pairs("content_divergence")
            assert all("tokyo" in pair for pair in pairs)

    def test_partition_disabled_with_zero(self):
        result = run_campaign(
            "facebook_group",
            CampaignConfig(num_tests=4, seed=3,
                           test_types=("test2",),
                           group_partition_tests=0),
        )
        assert result.total_tests == 4
