"""Coverage for small cross-cutting pieces: errors, top-level API."""

import pytest

import repro
from repro.errors import (
    AuthenticationError,
    ConfigurationError,
    InvalidRequestError,
    NetworkError,
    RateLimitExceededError,
    ReproError,
    ServiceError,
    SimulationError,
)


class TestErrorHierarchy:
    def test_everything_derives_from_repro_error(self):
        for exc_class in (SimulationError, NetworkError, ServiceError,
                          ConfigurationError):
            assert issubclass(exc_class, ReproError)

    def test_service_errors_carry_http_status(self):
        assert ServiceError.status_code == 500
        assert AuthenticationError.status_code == 401
        assert InvalidRequestError.status_code == 400
        assert RateLimitExceededError.status_code == 429

    def test_rate_limit_retry_after(self):
        exc = RateLimitExceededError(retry_after=2.5)
        assert exc.retry_after == 2.5
        assert RateLimitExceededError().retry_after is None

    def test_catching_the_base_class_works(self):
        with pytest.raises(ReproError):
            raise RateLimitExceededError("slow down")


class TestTopLevelApi:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_lazy_exports_resolve(self):
        assert callable(repro.run_campaign)
        assert callable(repro.check_all)
        assert callable(repro.prevalence_table)
        assert callable(repro.full_report)
        assert callable(repro.save_campaign)
        assert callable(repro.load_campaign)
        assert repro.CampaignConfig is not None
        assert repro.MeasurementWorld is not None
        assert "blogger" in repro.SERVICE_NAMES

    def test_unknown_attribute_raises(self):
        with pytest.raises(AttributeError):
            repro.does_not_exist

    def test_one_liner_workflow(self):
        result = repro.run_campaign(
            "blogger", repro.CampaignConfig(num_tests=1, seed=1)
        )
        table = repro.prevalence_table({"blogger": result})
        assert "blogger" in table
