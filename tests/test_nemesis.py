"""Tests for nemesis fault scheduling in campaigns."""

import pytest

from repro.core import CONTENT_DIVERGENCE
from repro.errors import ConfigurationError
from repro.methodology import (
    CampaignConfig,
    CompositeNemesis,
    LinkLossNemesis,
    MeasurementWorld,
    PartitionStretchNemesis,
    PeriodicPartitionNemesis,
    run_campaign,
)


class RecordingNemesis:
    """Test double that records every hook invocation."""

    def __init__(self):
        self.calls = []

    def before_test(self, world, test_type, index, num_tests,
                    duration_hint):
        self.calls.append((test_type, index, num_tests, duration_hint))


class TestRunnerIntegration:
    def test_custom_nemesis_invoked_once_per_test(self):
        nemesis = RecordingNemesis()
        run_campaign("blogger", CampaignConfig(
            num_tests=3, seed=1, nemesis=nemesis,
        ))
        assert len(nemesis.calls) == 6
        assert [(t, i) for t, i, _n, _d in nemesis.calls] == [
            ("test1", 0), ("test1", 1), ("test1", 2),
            ("test2", 0), ("test2", 1), ("test2", 2),
        ]
        assert all(n == 3 for _t, _i, n, _d in nemesis.calls)
        assert all(d > 0 for _t, _i, _n, d in nemesis.calls)

    def test_default_group_nemesis_still_causes_divergence(self):
        result = run_campaign("facebook_group", CampaignConfig(
            num_tests=6, seed=3, test_types=("test2",),
            group_partition_tests=3,
        ))
        assert result.prevalence(CONTENT_DIVERGENCE) > 0

    def test_explicit_nemesis_overrides_default(self):
        nemesis = RecordingNemesis()
        run_campaign("facebook_group", CampaignConfig(
            num_tests=2, seed=3, test_types=("test2",),
            nemesis=nemesis,
        ))
        assert len(nemesis.calls) == 2


class TestBuiltInNemeses:
    def make_world(self):
        return MeasurementWorld("blogger", seed=5)

    def test_partition_stretch_windows(self):
        world = self.make_world()
        nemesis = PartitionStretchNemesis(
            host_a="agent-oregon", host_b="agent-tokyo",
            span=2, start_index=1, test_type="test1",
        )
        for index in range(4):
            nemesis.before_test(world, "test1", index, 4, 10.0)
        # Tests 1 and 2 get windows; 0 and 3 do not.
        assert len(world.faults.windows()) == 2
        nemesis.before_test(world, "test2", 1, 4, 10.0)
        assert len(world.faults.windows()) == 2  # wrong test type

    def test_partition_stretch_centres_by_default(self):
        world = self.make_world()
        nemesis = PartitionStretchNemesis(
            host_a="a", host_b="b", span=2, test_type="test1",
        )
        armed = []
        for index in range(10):
            before = len(world.faults.windows())
            nemesis.before_test(world, "test1", index, 10, 10.0)
            if len(world.faults.windows()) > before:
                armed.append(index)
        assert armed == [4, 5]

    def test_partition_stretch_validation(self):
        with pytest.raises(ConfigurationError):
            PartitionStretchNemesis(host_a="a", host_b="b", span=-1)

    def test_periodic_partition(self):
        world = self.make_world()
        nemesis = PeriodicPartitionNemesis(
            host_a="a", host_b="b", period=3,
        )
        armed = []
        for index in range(9):
            before = len(world.faults.windows())
            nemesis.before_test(world, "test1", index, 9, 10.0)
            if len(world.faults.windows()) > before:
                armed.append(index)
        assert armed == [2, 5, 8]

    def test_periodic_validation(self):
        with pytest.raises(ConfigurationError):
            PeriodicPartitionNemesis(host_a="a", host_b="b", period=0)

    def test_link_loss_arms_once(self):
        world = self.make_world()
        nemesis = LinkLossNemesis(
            links=[("agent-oregon", "blogger-api")], probability=1.0,
        )
        nemesis.before_test(world, "test1", 0, 5, 10.0)
        nemesis.before_test(world, "test1", 1, 5, 10.0)
        assert world.faults.should_drop("agent-oregon", "blogger-api",
                                        world.sim.now)

    def test_link_loss_validation(self):
        with pytest.raises(ConfigurationError):
            LinkLossNemesis(links=[], probability=1.5)

    def test_composite_runs_all_parts(self):
        world = self.make_world()
        parts = [RecordingNemesis(), RecordingNemesis()]
        composite = CompositeNemesis(parts=parts)
        composite.before_test(world, "test1", 0, 1, 10.0)
        assert all(len(part.calls) == 1 for part in parts)


class TestNemesisCampaignEffect:
    def test_periodic_partition_disrupts_blogger(self):
        # Partition the primary from a backup during every other
        # test: writes cannot complete (sync replication blocks), so
        # those tests time out with fewer writes.
        nemesis = PeriodicPartitionNemesis(
            host_a="blogger-primary", host_b="blogger-backup-us",
            period=2, test_type="test1",
        )
        result = run_campaign("blogger", CampaignConfig(
            num_tests=4, seed=7, test_types=("test1",),
            nemesis=nemesis,
        ))
        writes = [sum(record.writes_per_agent.values())
                  for record in result.records]
        # Non-partitioned tests log all 6 writes; partitioned ones
        # fewer (the chain stalls on unacknowledged writes).
        assert writes[0] == 6 and writes[2] == 6
        assert writes[1] < 6 and writes[3] < 6
