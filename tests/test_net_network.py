"""Unit tests for the simulated network: datagrams, RPC, faults."""

import pytest

from repro.errors import HostUnreachableError, NetworkError
from repro.net import (
    FaultInjector,
    JitterParams,
    LatencyModel,
    Network,
    Region,
    Topology,
)
from repro.sim import Future, RandomSource, Simulator


def make_network(sim, sigma=0.0, faults=None):
    topo = Topology()
    topo.add_region(Region("east"))
    topo.add_region(Region("west"))
    topo.set_rtt("east", "west", 0.100)
    topo.place_host("client", "east")
    topo.place_host("server", "west")
    topo.place_host("peer", "east")
    model = LatencyModel(topo, RandomSource(seed=1),
                         JitterParams(sigma=sigma))
    return Network(sim, model, faults=faults)


class TestAttachment:
    def test_attach_requires_placed_host(self):
        sim = Simulator()
        net = make_network(sim)
        with pytest.raises(NetworkError, match="not placed"):
            net.attach("ghost")

    def test_send_requires_attached_endpoints(self):
        sim = Simulator()
        net = make_network(sim)
        net.attach("client", message_handler=lambda m: None)
        with pytest.raises(HostUnreachableError):
            net.send("client", "server", {})
        with pytest.raises(HostUnreachableError):
            net.send("server", "client", {})

    def test_detach_is_idempotent(self):
        sim = Simulator()
        net = make_network(sim)
        net.attach("client")
        net.detach("client")
        net.detach("client")
        assert not net.is_attached("client")


class TestDatagrams:
    def test_message_delivered_after_one_way_delay(self):
        sim = Simulator()
        net = make_network(sim, sigma=0.0)
        received = []
        net.attach("client")
        net.attach("server",
                   message_handler=lambda m: received.append((sim.now, m)))
        net.send("client", "server", {"kind": "ping"})
        sim.run()
        (time, message), = received
        assert time == pytest.approx(0.050)
        assert message.payload == {"kind": "ping"}
        assert message.src == "client"
        assert message.transit_time == pytest.approx(0.050)

    def test_message_to_detached_host_is_dropped_in_flight(self):
        sim = Simulator()
        net = make_network(sim)
        received = []
        net.attach("client")
        net.attach("server", message_handler=received.append)
        net.send("client", "server", "x")
        net.detach("server")
        sim.run()
        assert received == []

    def test_partitioned_message_is_dropped(self):
        sim = Simulator()
        faults = FaultInjector()
        faults.isolate("server", 0.0, 100.0)
        net = make_network(sim, faults=faults)
        received = []
        net.attach("client")
        net.attach("server", message_handler=received.append)
        net.send("client", "server", "x")
        sim.run()
        assert received == []
        assert net.messages_delivered == 0

    def test_message_counters(self):
        sim = Simulator()
        net = make_network(sim)
        net.attach("client")
        net.attach("server", message_handler=lambda m: None)
        net.send("client", "server", 1)
        net.send("client", "server", 2)
        sim.run()
        assert net.messages_sent == 2
        assert net.messages_delivered == 2


class TestRpc:
    def test_rpc_round_trip_timing_and_value(self):
        sim = Simulator()
        net = make_network(sim, sigma=0.0)
        net.attach("client")
        net.attach("server", rpc_handler=lambda payload, src: payload * 2)
        reply = net.rpc("client", "server", 21)
        sim.run()
        assert reply.value == 42

    def test_rpc_reply_arrives_after_full_rtt(self):
        sim = Simulator()
        net = make_network(sim, sigma=0.0)
        net.attach("client")
        net.attach("server", rpc_handler=lambda p, s: "pong")
        reply = net.rpc("client", "server", "ping")
        resolved_at = []
        reply.add_callback(lambda f: resolved_at.append(sim.now))
        sim.run()
        assert resolved_at == [pytest.approx(0.100)]

    def test_rpc_handler_exception_propagates(self):
        sim = Simulator()
        net = make_network(sim, sigma=0.0)
        net.attach("client")

        def handler(payload, src):
            raise ValueError("bad request")

        net.attach("server", rpc_handler=handler)
        reply = net.rpc("client", "server", None)
        sim.run()
        assert reply.failed
        assert isinstance(reply.exception, ValueError)

    def test_rpc_handler_may_return_future(self):
        sim = Simulator()
        net = make_network(sim, sigma=0.0)
        net.attach("client")
        pending = Future()

        def handler(payload, src):
            sim.schedule_after(1.0, pending.resolve, "delayed")
            return pending

        net.attach("server", rpc_handler=handler)
        reply = net.rpc("client", "server", None)
        resolved_at = []
        reply.add_callback(lambda f: resolved_at.append(sim.now))
        sim.run()
        assert reply.value == "delayed"
        # 50ms there + 1s processing + 50ms back.
        assert resolved_at == [pytest.approx(1.100)]

    def test_rpc_to_missing_host_fails_immediately(self):
        sim = Simulator()
        net = make_network(sim)
        net.attach("client")
        reply = net.rpc("client", "server", None)
        assert reply.failed
        assert isinstance(reply.exception, HostUnreachableError)

    def test_rpc_times_out_under_partition(self):
        sim = Simulator()
        faults = FaultInjector()
        faults.isolate("server", 0.0, 100.0)
        net = make_network(sim, faults=faults)
        net.attach("client")
        net.attach("server", rpc_handler=lambda p, s: "unreachable")
        reply = net.rpc("client", "server", None, timeout=2.0)
        failed_at = []
        reply.add_callback(lambda f: failed_at.append(sim.now))
        sim.run()
        assert reply.failed
        assert isinstance(reply.exception, HostUnreachableError)
        assert failed_at == [pytest.approx(2.0)]

    def test_lost_reply_also_times_out(self):
        sim = Simulator()
        faults = FaultInjector()
        # Block only the reply direction.
        faults_rng = None  # pair partition needs no rng
        del faults_rng
        net = make_network(sim, faults=faults)
        net.attach("client")
        served = []

        def handler(payload, src):
            served.append(sim.now)
            # Partition starts after the request arrives.
            faults.isolate("server", sim.now, sim.now + 100.0)
            return "reply"

        net.attach("server", rpc_handler=handler)
        reply = net.rpc("client", "server", None, timeout=3.0)
        sim.run()
        assert served  # the request got through
        assert reply.failed

    def test_timeout_after_success_is_ignored(self):
        sim = Simulator()
        net = make_network(sim, sigma=0.0)
        net.attach("client")
        net.attach("server", rpc_handler=lambda p, s: "ok")
        reply = net.rpc("client", "server", None, timeout=5.0)
        sim.run()  # runs past the timeout event
        assert reply.value == "ok"
