"""Unit tests for topology, latency models, and fault injection."""

import pytest

from repro.errors import ConfigurationError
from repro.net import (
    IRELAND,
    OREGON,
    TOKYO,
    VIRGINIA,
    FaultInjector,
    JitterParams,
    LatencyModel,
    PartitionWindow,
    Region,
    Topology,
    paper_topology,
)
from repro.sim import RandomSource


class TestTopology:
    def make_two_region_topology(self):
        topo = Topology()
        topo.add_region(Region("east"))
        topo.add_region(Region("west"))
        topo.set_rtt("east", "west", 0.1)
        topo.place_host("a", "east")
        topo.place_host("b", "west")
        topo.place_host("c", "east")
        return topo

    def test_rtt_between_regions(self):
        topo = self.make_two_region_topology()
        assert topo.rtt("a", "b") == pytest.approx(0.1)
        assert topo.rtt("b", "a") == pytest.approx(0.1)  # symmetric

    def test_intra_region_rtt(self):
        topo = self.make_two_region_topology()
        assert topo.rtt("a", "c") == pytest.approx(topo.intra_region_rtt)

    def test_one_way_is_half_rtt(self):
        topo = self.make_two_region_topology()
        assert topo.one_way("a", "b") == pytest.approx(0.05)

    def test_unknown_host_raises(self):
        topo = self.make_two_region_topology()
        with pytest.raises(ConfigurationError, match="ghost"):
            topo.rtt("a", "ghost")

    def test_missing_link_raises(self):
        topo = Topology()
        topo.add_region(Region("r1"))
        topo.add_region(Region("r2"))
        topo.place_host("a", "r1")
        topo.place_host("b", "r2")
        with pytest.raises(ConfigurationError, match="no RTT"):
            topo.rtt("a", "b")

    def test_place_in_unknown_region_raises(self):
        topo = Topology()
        with pytest.raises(ConfigurationError):
            topo.place_host("a", "nowhere")

    def test_set_rtt_validation(self):
        topo = Topology()
        topo.add_region(Region("r"))
        topo.add_region(Region("s"))
        with pytest.raises(ConfigurationError):
            topo.set_rtt("r", "s", 0.0)
        with pytest.raises(ConfigurationError):
            topo.set_rtt("r", "r", 0.1)

    def test_conflicting_region_definition_raises(self):
        topo = Topology()
        topo.add_region(Region("r", "here"))
        topo.add_region(Region("r", "here"))  # identical: fine
        with pytest.raises(ConfigurationError):
            topo.add_region(Region("r", "elsewhere"))

    def test_region_of(self):
        topo = self.make_two_region_topology()
        assert topo.region_of("a").name == "east"
        with pytest.raises(ConfigurationError):
            topo.region_of("ghost")


class TestPaperTopology:
    def test_has_paper_measured_coordinator_rtts(self):
        topo = paper_topology()
        for region, rtt in ((OREGON, 0.136), (TOKYO, 0.218),
                            (IRELAND, 0.172)):
            topo.place_host("coord", VIRGINIA)
            topo.place_host("agent", region)
            assert topo.rtt("coord", "agent") == pytest.approx(rtt)

    def test_all_agent_pairs_connected(self):
        topo = paper_topology()
        topo.place_host("o", OREGON)
        topo.place_host("t", TOKYO)
        topo.place_host("i", IRELAND)
        assert topo.rtt("o", "t") > 0
        assert topo.rtt("o", "i") > 0
        assert topo.rtt("t", "i") > 0


class TestLatencyModel:
    def make_model(self, sigma=0.15):
        topo = paper_topology()
        topo.place_host("coord", VIRGINIA)
        topo.place_host("agent", OREGON)
        rng = RandomSource(seed=5)
        return LatencyModel(topo, rng, JitterParams(sigma=sigma))

    def test_zero_sigma_gives_base_delay(self):
        model = self.make_model(sigma=0.0)
        assert model.sample_one_way("coord", "agent") == pytest.approx(0.068)

    def test_jitter_respects_floor(self):
        model = self.make_model(sigma=0.5)
        base = 0.068
        floor = base * model.jitter.floor
        samples = [model.sample_one_way("coord", "agent")
                   for _ in range(2000)]
        assert all(s >= floor - 1e-12 for s in samples)

    def test_median_near_base(self):
        model = self.make_model(sigma=0.15)
        samples = sorted(model.sample_one_way("coord", "agent")
                         for _ in range(4001))
        median = samples[len(samples) // 2]
        assert median == pytest.approx(0.068, rel=0.05)

    def test_sample_rtt_is_two_one_ways(self):
        model = self.make_model(sigma=0.0)
        assert model.sample_rtt("coord", "agent") == pytest.approx(0.136)

    def test_directions_are_independent_streams(self):
        model = self.make_model(sigma=0.3)
        forward = model.sample_one_way("coord", "agent")
        backward = model.sample_one_way("agent", "coord")
        assert forward != backward

    def test_jitter_params_validation(self):
        with pytest.raises(ConfigurationError):
            JitterParams(sigma=-0.1)
        with pytest.raises(ConfigurationError):
            JitterParams(floor=0.0)
        with pytest.raises(ConfigurationError):
            JitterParams(floor=1.5)


class TestFaultInjector:
    def test_isolation_blocks_both_directions(self):
        faults = FaultInjector()
        faults.isolate("tokyo", start=10.0, end=20.0)
        assert faults.should_drop("tokyo", "oregon", 15.0)
        assert faults.should_drop("oregon", "tokyo", 15.0)

    def test_isolation_respects_window(self):
        faults = FaultInjector()
        faults.isolate("tokyo", start=10.0, end=20.0)
        assert not faults.should_drop("tokyo", "oregon", 9.9)
        assert not faults.should_drop("tokyo", "oregon", 20.0)

    def test_pair_partition_only_affects_the_pair(self):
        faults = FaultInjector()
        faults.partition_pair("a", "b", start=0.0, end=100.0)
        assert faults.should_drop("a", "b", 50.0)
        assert not faults.should_drop("a", "c", 50.0)
        assert not faults.should_drop("c", "b", 50.0)

    def test_group_partition_blocks_boundary_not_interior(self):
        faults = FaultInjector()
        faults.partition_group(["a", "b"], start=0.0, end=10.0)
        assert faults.should_drop("a", "outside", 5.0)
        assert not faults.should_drop("a", "b", 5.0)

    def test_message_loss_requires_rng(self):
        faults = FaultInjector()
        with pytest.raises(ConfigurationError):
            faults.set_loss("a", "b", 0.5)

    def test_message_loss_statistics(self):
        faults = FaultInjector(rng=RandomSource(seed=3))
        faults.set_loss("a", "b", 0.3)
        drops = sum(faults.should_drop("a", "b", 0.0) for _ in range(5000))
        assert 0.25 < drops / 5000 < 0.35
        assert faults.dropped_messages == drops

    def test_window_validation(self):
        with pytest.raises(ConfigurationError):
            PartitionWindow(frozenset(("a",)), start=5.0, end=5.0)
        with pytest.raises(ConfigurationError):
            PartitionWindow(frozenset(), start=0.0, end=1.0)
        with pytest.raises(ConfigurationError):
            PartitionWindow(frozenset(("a",)), start=0.0, end=1.0, among=True)

    def test_dropped_message_counter_counts_partitions(self):
        faults = FaultInjector()
        faults.isolate("x", 0.0, 10.0)
        faults.should_drop("x", "y", 5.0)
        faults.should_drop("y", "x", 5.0)
        faults.should_drop("y", "z", 5.0)
        assert faults.dropped_messages == 2
