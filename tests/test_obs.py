"""Tests for the observability layer (``repro.obs``).

Covers the metric/span primitives, snapshot merging, the
digest-validated export, campaign determinism (same seed ->
byte-identical export; serial == fleet-merged), the retry-accounting
contract between the API client's counters and the agent's spans, the
backward-compat aliases for the pre-unification telemetry imports, and
the ``repro-consistency obs`` CLI subcommand.
"""

import json

import pytest

from repro.cli import build_parser, main
from repro.errors import AnalysisError, ConfigurationError
from repro.fleet import FleetSpec, run_fleet
from repro.methodology import (
    CampaignConfig,
    MeasurementWorld,
    run_campaign,
)
from repro.obs import (
    MetricsRegistry,
    ObsContext,
    Tracer,
    merge_metric_snapshots,
    merge_obs_snapshots,
)
from repro.obs.export import export_snapshot, load_snapshot
from repro.services.blogger import BloggerParams
from repro.sim import spawn
from repro.webapi import RateLimit

TINY = CampaignConfig(num_tests=2, seed=11, test_types=("test1",))


def make_registry():
    """A registry on a hand-cranked clock: set ``clock['t']`` to move."""
    clock = {"t": 0.0}
    return MetricsRegistry(now_fn=lambda: clock["t"]), clock


class TestCounters:
    def test_inc_accumulates_and_timestamps(self):
        registry, clock = make_registry()
        counter = registry.counter("ops", kind="read")
        clock["t"] = 1.5
        counter.inc()
        assert counter.value == 1
        assert counter.updated == 1.5
        counter.inc(2, at=9.0)
        assert counter.value == 3
        assert counter.updated == 9.0

    def test_negative_increment_rejected(self):
        registry, _ = make_registry()
        with pytest.raises(ConfigurationError):
            registry.counter("ops").inc(-1)

    def test_identity_is_name_plus_labels(self):
        registry, _ = make_registry()
        a = registry.counter("ops", kind="read")
        assert registry.counter("ops", kind="read") is a
        assert registry.counter("ops", kind="write") is not a

    def test_type_conflict_raises(self):
        registry, _ = make_registry()
        registry.counter("ops", kind="read")
        with pytest.raises(ConfigurationError):
            registry.gauge("ops", kind="read")


class TestHistograms:
    def test_bucketing_with_overflow(self):
        registry, _ = make_registry()
        histogram = registry.histogram("lat", buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 0.5, 5.0):
            histogram.observe(value)
        assert histogram.counts == [1, 2, 1]
        assert histogram.count == 4
        assert histogram.total == pytest.approx(6.05)

    def test_buckets_must_ascend(self):
        registry, _ = make_registry()
        with pytest.raises(ConfigurationError):
            registry.histogram("lat", buckets=(1.0, 0.1))
        with pytest.raises(ConfigurationError):
            registry.histogram("lat", buckets=())

    def test_redefining_buckets_raises(self):
        registry, _ = make_registry()
        registry.histogram("lat", buckets=(0.1, 1.0))
        with pytest.raises(ConfigurationError):
            registry.histogram("lat", buckets=(0.5,))


class TestSnapshotsAndMerge:
    def test_snapshot_sorted_by_type_name_labels(self):
        registry, _ = make_registry()
        registry.gauge("b")
        registry.counter("z")
        registry.counter("a", x="2")
        registry.counter("a", x="1")
        keys = [(e["type"], e["name"], e["labels"])
                for e in registry.snapshot()]
        assert keys == [
            ("counter", "a", {"x": "1"}),
            ("counter", "a", {"x": "2"}),
            ("counter", "z", {}),
            ("gauge", "b", {}),
        ]

    def test_single_snapshot_merge_is_identity(self):
        registry, _ = make_registry()
        registry.counter("ops").inc(3, at=1.0)
        registry.gauge("depth").set(7, at=2.0)
        registry.histogram("lat", buckets=(0.5,)).observe(0.2, at=3.0)
        snapshot = registry.snapshot()
        assert merge_metric_snapshots([snapshot]) == snapshot

    def test_counters_sum_gauges_take_latest_writer(self):
        first, _ = make_registry()
        second, _ = make_registry()
        first.counter("ops").inc(2, at=1.0)
        second.counter("ops").inc(3, at=4.0)
        first.gauge("depth").set(10, at=5.0)
        second.gauge("depth").set(20, at=3.0)
        merged = {(e["type"], e["name"]): e
                  for e in merge_metric_snapshots(
                      [first.snapshot(), second.snapshot()])}
        assert merged[("counter", "ops")]["value"] == 5
        assert merged[("counter", "ops")]["updated"] == 4.0
        # The gauge's later write (t=5.0) wins regardless of order.
        assert merged[("gauge", "depth")]["value"] == 10

    def test_histograms_merge_elementwise(self):
        first, _ = make_registry()
        second, _ = make_registry()
        first.histogram("lat", buckets=(0.1, 1.0)).observe(0.05)
        second.histogram("lat", buckets=(0.1, 1.0)).observe(0.5)
        (entry,) = merge_metric_snapshots(
            [first.snapshot(), second.snapshot()]
        )
        assert entry["counts"] == [1, 1, 0]
        assert entry["count"] == 2
        assert entry["sum"] == pytest.approx(0.55)

    def test_histogram_bucket_mismatch_raises(self):
        first, _ = make_registry()
        second, _ = make_registry()
        first.histogram("lat", buckets=(0.1,)).observe(0.05)
        second.histogram("lat", buckets=(0.2,)).observe(0.05)
        with pytest.raises(AnalysisError):
            merge_metric_snapshots(
                [first.snapshot(), second.snapshot()]
            )


class TestTracer:
    def test_sequential_ids_and_parenting(self):
        tracer = Tracer(now_fn=lambda: 2.0)
        parent = tracer.start("outer", op="w")
        child = tracer.start("inner", parent=parent)
        assert (parent.span_id, child.span_id) == (1, 2)
        assert child.parent_id == 1
        assert parent.start == 2.0

    def test_finish_order_and_attrs(self):
        tracer = Tracer()
        a = tracer.start("a", at=0.0)
        b = tracer.start("b", at=1.0)
        tracer.finish(b, at=2.0, ok=True)
        tracer.finish(a, at=3.0, attempts=2)
        names = [span["name"] for span in tracer.snapshot()]
        assert names == ["b", "a"]
        assert tracer.snapshot()[1]["attrs"] == {"attempts": 2}
        assert a.duration == 3.0


class TestObsContext:
    def test_snapshot_is_json_safe(self):
        context = ObsContext()
        context.metrics.counter("ops").inc(at=1.0)
        context.tracer.finish(context.tracer.start("op", at=0.0),
                              at=1.0, ok=True)
        snapshot = context.snapshot()
        assert json.loads(json.dumps(snapshot)) == snapshot

    def test_merge_concatenates_spans_in_order(self):
        first, second = ObsContext(), ObsContext()
        first.tracer.finish(first.tracer.start("one", at=0.0), at=1.0)
        second.tracer.finish(second.tracer.start("two", at=0.0),
                             at=1.0)
        merged = merge_obs_snapshots(
            [first.snapshot(), second.snapshot()]
        )
        assert [s["name"] for s in merged["spans"]] == ["one", "two"]

    def test_merging_one_snapshot_is_identity(self):
        context = ObsContext()
        context.metrics.counter("ops").inc(at=1.0)
        snapshot = context.snapshot()
        assert merge_obs_snapshots([snapshot]) == snapshot


class TestExport:
    def test_round_trip(self, tmp_path):
        context = ObsContext()
        context.metrics.counter("ops", kind="read").inc(3, at=1.5)
        context.tracer.finish(context.tracer.start("op", at=0.0),
                              at=1.0, attempts=1)
        snapshot = context.snapshot()
        path = tmp_path / "run.obs.jsonl"
        export_snapshot(snapshot, path)
        assert load_snapshot(path) == snapshot

    def test_tampering_is_detected(self, tmp_path):
        context = ObsContext()
        context.metrics.counter("ops").inc(3, at=1.5)
        path = tmp_path / "run.obs.jsonl"
        export_snapshot(context.snapshot(), path)
        text = path.read_text(encoding="utf-8")
        tampered = text.replace('"value":3', '"value":4')
        assert tampered != text  # the edit really landed
        path.write_text(tampered, encoding="utf-8")
        with pytest.raises(AnalysisError):
            load_snapshot(path)


class TestCampaignObs:
    def test_same_seed_exports_byte_identical(self, tmp_path):
        first = run_campaign("blogger", TINY)
        second = run_campaign("blogger", TINY)
        path_a = tmp_path / "a.obs.jsonl"
        path_b = tmp_path / "b.obs.jsonl"
        export_snapshot(first.obs, path_a)
        export_snapshot(second.obs, path_b)
        assert path_a.read_bytes() == path_b.read_bytes()

    def test_serial_equals_fleet_merged(self):
        serial = run_campaign("blogger", TINY).obs
        spec = FleetSpec(services=("blogger",), base_config=TINY,
                         seeds=(TINY.seed,))
        assert run_fleet(spec, jobs=2).merged_obs() == serial

    def test_requests_reconcile_with_responses(self):
        snapshot = run_campaign("blogger", TINY).obs
        totals = {"requests": 0.0, "responses": 0.0}
        for entry in snapshot["metrics"]:
            if entry["name"] == "api.requests_total":
                totals["requests"] += entry["value"]
            elif entry["name"] == "api.responses_total":
                totals["responses"] += entry["value"]
        assert totals["requests"] > 0
        # Every wire request resolved into exactly one response event.
        assert totals["responses"] == totals["requests"]


def drive(world, generator_fn, *args, **kwargs):
    process = spawn(world.sim, generator_fn, *args, **kwargs)
    while not process.completion.done:
        world.sim.run_until(world.sim.now + 30.0)
    return process.completion.value


class TestRetryAccounting:
    """Wire-request counters, client totals, and span attempt totals
    must agree even when 429 back-off retries multiply requests."""

    def make_limited_world(self):
        return MeasurementWorld(
            "blogger", seed=3,
            service_params=BloggerParams(
                rate_limit=RateLimit(max_requests=2, window=5.0),
            ),
        )

    def test_counters_spans_and_client_agree_under_429s(self):
        world = self.make_limited_world()
        agent = world.agent("oregon")

        def post_burst():
            for index in range(6):
                ok = yield from agent.timed_post(f"M{index}")
                assert ok is True

        drive(world, post_burst)
        # Let every in-flight response future resolve.
        world.sim.run_until(world.sim.now + 30.0)

        snapshot = world.obs.snapshot()
        requests = sum(e["value"] for e in snapshot["metrics"]
                       if e["name"] == "api.requests_total")
        responses_by_status: dict[str, float] = {}
        for entry in snapshot["metrics"]:
            if entry["name"] == "api.responses_total":
                status = entry["labels"]["status"]
                responses_by_status[status] = \
                    responses_by_status.get(status, 0.0) + entry["value"]

        client = agent.session._client
        assert client.requests_sent == requests
        assert sum(responses_by_status.values()) == requests
        # The tight limit forced actual 429 retries.
        assert responses_by_status.get("429", 0) > 0
        assert requests > 6

        write_spans = [s for s in snapshot["spans"]
                       if s["name"] == "agent.write"]
        assert len(write_spans) == 6
        assert all(s["attrs"]["ok"] for s in write_spans)
        # Span attempt totals == wire requests; span 429 totals ==
        # counted 429 responses (the accounting contract).
        assert sum(s["attrs"]["attempts"]
                   for s in write_spans) == requests
        assert sum(s["attrs"]["rate_limited"]
                   for s in write_spans) \
            == responses_by_status["429"]


class TestCompatAliases:
    def test_fleet_package_reexports_warning_free(self):
        # ``repro.fleet`` re-exports straight from the canonical home,
        # so the supported import path never touches the shim.
        import repro.fleet as fleet
        from repro.obs.events import ShardStarted
        assert fleet.ShardStarted is ShardStarted

    def test_stream_windows_reexports_window_event(self):
        from repro.obs.events import WindowEvent as canonical
        from repro.stream.windows import WindowEvent
        assert WindowEvent is canonical


class TestSessionRoutes:
    def test_blogger_sessions_route_to_single_endpoint(self):
        world = MeasurementWorld("blogger", seed=1)
        routes = {agent.session.routes for agent in world.agents}
        assert len(routes) == 1
        (route,) = routes
        assert route.api_host == "blogger-api"
        assert route.post_path == route.fetch_path
        accounts = {agent.session.account.token
                    for agent in world.agents}
        assert len(accounts) == 3  # per-agent accounts

    def test_googleplus_sessions_share_one_account(self):
        world = MeasurementWorld("googleplus", seed=1)
        accounts = {agent.session.account.token
                    for agent in world.agents}
        assert len(accounts) == 1  # the paper's shared-account setup
        hosts = {agent.session.routes.api_host
                 for agent in world.agents}
        assert len(hosts) > 1  # but per-region API endpoints


class TestCli:
    def test_legacy_output_flags_alias_out_convention(self):
        parser = build_parser()
        args = parser.parse_args(
            ["run", "--service", "blogger", "--output", "x.json"]
        )
        assert args.campaign_out == "x.json"
        args = parser.parse_args(["fleet", "--out", "artifacts"])
        assert args.store_out == "artifacts"

    def test_run_export_and_obs_report(self, tmp_path, capsys):
        path = tmp_path / "run.obs.jsonl"
        rc = main(["run", "--service", "blogger", "--tests", "1",
                   "--seed", "3", "--obs-out", str(path)])
        assert rc == 0
        assert path.is_file()
        capsys.readouterr()
        assert main(["obs", str(path)]) == 0
        report = capsys.readouterr().out
        assert "api.requests_total" in report
        assert "blogger" in report
        assert main(["obs", str(path), "--json"]) == 0
        snapshot = json.loads(capsys.readouterr().out)
        assert snapshot == load_snapshot(path)

    def test_obs_on_fleet_store_merges_shards(self, tmp_path, capsys):
        store = tmp_path / "store"
        spec = FleetSpec(services=("blogger",), base_config=TINY,
                         seeds=(TINY.seed,))
        outcome = run_fleet(spec, out_dir=store)
        assert main(["obs", str(store), "--json"]) == 0
        snapshot = json.loads(capsys.readouterr().out)
        assert snapshot == outcome.merged_obs()

    def test_obs_missing_file_exits_2(self, tmp_path, capsys):
        rc = main(["obs", str(tmp_path / "missing.obs.jsonl")])
        assert rc == 2
        assert "cannot read obs data" in capsys.readouterr().err
