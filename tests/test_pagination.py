"""Tests for cursor pagination, at the helper and the service level."""

import pytest

from repro.errors import InvalidRequestError
from repro.webapi import DEFAULT_PAGE_SIZE, Page, paginate

from tests.test_services import AGENT_HOSTS, await_value, make_world
from repro.services import BloggerService


class TestPaginateHelper:
    ITEMS = [f"M{i}" for i in range(10)]

    def test_first_page(self):
        page = paginate(self.ITEMS, cursor=None, limit=4)
        assert page.items == ("M0", "M1", "M2", "M3")
        assert page.next_cursor == "M3"
        assert not page.is_last

    def test_following_pages(self):
        page = paginate(self.ITEMS, cursor="M3", limit=4)
        assert page.items == ("M4", "M5", "M6", "M7")
        last = paginate(self.ITEMS, cursor=page.next_cursor, limit=4)
        assert last.items == ("M8", "M9")
        assert last.is_last

    def test_exact_boundary_is_last_page(self):
        page = paginate(self.ITEMS, cursor="M4", limit=5)
        assert page.items == ("M5", "M6", "M7", "M8", "M9")
        assert page.is_last

    def test_vanished_cursor_restarts_from_head(self):
        page = paginate(self.ITEMS, cursor="pruned-away", limit=3)
        assert page.items == ("M0", "M1", "M2")

    def test_empty_items(self):
        page = paginate([], cursor=None, limit=5)
        assert page.items == ()
        assert page.is_last

    def test_new_head_items_do_not_shift_cursors(self):
        # An item prepended after the first page must not disturb a
        # cursor anchored at M3.
        grown = ["NEW"] + self.ITEMS
        page = paginate(grown, cursor="M3", limit=4)
        assert page.items == ("M4", "M5", "M6", "M7")

    def test_cursor_at_final_item_yields_exhausted_empty_page(self):
        # A client that pages to the end and polls once more gets an
        # empty terminal page, not a restart.
        page = paginate(self.ITEMS, cursor="M9", limit=4)
        assert page.items == ()
        assert page.is_last

    def test_exhausted_cursor_sees_items_appended_later(self):
        # The follow-mode idiom: keep the last cursor, poll after the
        # producer appends, receive only the new tail.
        page = paginate(self.ITEMS + ["M10", "M11"], cursor="M9",
                        limit=4)
        assert page.items == ("M10", "M11")
        assert page.is_last

    def test_invalid_limit_rejected(self):
        with pytest.raises(InvalidRequestError):
            paginate(self.ITEMS, cursor=None, limit=0)
        with pytest.raises(InvalidRequestError):
            paginate(self.ITEMS, cursor=None, limit=-3)

    def test_vanished_cursor_restart_is_a_full_first_page(self):
        # The restart must behave exactly like cursor=None — same
        # window, same next_cursor — so a degraded client re-converges.
        fresh = paginate(self.ITEMS, cursor=None, limit=3)
        degraded = paginate(self.ITEMS, cursor="pruned-away", limit=3)
        assert degraded == fresh
        assert degraded.next_cursor == "M2"

    def test_page_dataclass(self):
        page = Page(items=("a",), next_cursor=None)
        assert page.is_last


class TestServicePagination:
    def make_blogger_with_posts(self, count):
        sim, topo, net, rng = make_world()
        service = BloggerService(sim, topo, net, rng)
        session = service.create_session("oregon", "agent-oregon")
        for index in range(count):
            await_value(sim, session.post_message(f"P{index:02d}"))
        return sim, session

    def test_single_page_fetch_returns_newest(self):
        sim, session = self.make_blogger_with_posts(DEFAULT_PAGE_SIZE + 5)
        view = await_value(sim, session.fetch_messages())
        assert len(view) == DEFAULT_PAGE_SIZE
        # Chronological order, ending at the newest post.
        assert view[-1] == f"P{DEFAULT_PAGE_SIZE + 4:02d}"
        assert list(view) == sorted(view)

    def test_fetch_history_walks_cursors(self):
        sim, session = self.make_blogger_with_posts(12)
        history = await_value(
            sim, session.fetch_history(max_pages=4, page_limit=5)
        )
        assert history == tuple(f"P{i:02d}" for i in range(12))

    def test_fetch_history_respects_max_pages(self):
        sim, session = self.make_blogger_with_posts(12)
        history = await_value(
            sim, session.fetch_history(max_pages=2, page_limit=5)
        )
        assert len(history) == 10  # two pages of five
        # The two newest pages, chronologically.
        assert history == tuple(f"P{i:02d}" for i in range(2, 12))

    def test_history_counts_each_page_as_a_read(self):
        sim, session = self.make_blogger_with_posts(12)
        before = session.reads_issued
        await_value(sim, session.fetch_history(max_pages=3,
                                               page_limit=5))
        assert session.reads_issued == before + 3
