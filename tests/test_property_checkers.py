"""Property-based validation of the anomaly checkers.

Two kinds of properties:

1. **Brute-force equivalence** — for arbitrary generated traces, each
   checker's verdict must agree with a direct, quantifier-by-quantifier
   transcription of the paper's §III formula (the checkers use
   optimized formulations; these tests pin them to the definitions).
2. **Consistent-history soundness** — traces sampled from a
   linearizable oracle (every read returns a prefix of one total
   order, containing all completed writes) must never trigger any
   checker.
"""

from hypothesis import given, settings, strategies as st

from repro.core import check_all
from repro.core.anomalies import (
    ContentDivergenceChecker,
    MonotonicReadsChecker,
    MonotonicWritesChecker,
    OrderDivergenceChecker,
    ReadYourWritesChecker,
)

from tests.helpers import make_trace, read, write

AGENTS = ("oregon", "tokyo", "ireland")
MESSAGES = ["M0", "M1", "M2", "M3", "M4", "M5"]


@st.composite
def arbitrary_traces(draw):
    """Traces with arbitrary (possibly inconsistent) read results."""
    num_messages = draw(st.integers(2, 6))
    message_ids = MESSAGES[:num_messages]
    operations = []
    time = 0.0
    authors = {}
    for message_id in message_ids:
        author = draw(st.sampled_from(AGENTS))
        authors[message_id] = author
        time += draw(st.floats(0.1, 2.0))
        operations.append(write(author, message_id, time))
    num_reads = draw(st.integers(1, 8))
    for _ in range(num_reads):
        agent = draw(st.sampled_from(AGENTS))
        time += draw(st.floats(0.1, 2.0))
        observed = tuple(draw(st.permutations(
            draw(st.lists(st.sampled_from(message_ids), unique=True,
                          max_size=num_messages))
        )))
        operations.append(read(agent, observed, time))
    return make_trace(operations)


# -- Brute-force transcriptions of the §III formulas -------------------------


def brute_force_ryw(trace):
    for agent in trace.agents:
        for r in trace.reads_by(agent):
            completed = [w for w in trace.writes_by(agent)
                         if w.response_local <= r.invoke_local]
            if any(w.message_id not in r.observed for w in completed):
                return True
    return False


def brute_force_mw(trace):
    for r in trace.reads():
        for agent in trace.agents:
            session = [
                w for w in trace.writes_by(agent)
                if trace.corrected_response(w)
                <= trace.corrected_invoke(r)
            ]
            for i, x in enumerate(session):
                for y in session[i + 1:]:
                    if y.message_id not in r.observed:
                        continue
                    if x.message_id not in r.observed:
                        return True
                    if (r.observed.index(y.message_id)
                            < r.observed.index(x.message_id)):
                        return True
    return False


def brute_force_mr(trace):
    for agent in trace.agents:
        reads = trace.reads_by(agent)
        for i, first in enumerate(reads):
            for second in reads[i + 1:]:
                if any(x not in second.observed
                       for x in first.observed):
                    return True
    return False


def brute_force_content(trace):
    for a, b in trace.agent_pairs():
        for ra in trace.reads_by(a):
            for rb in trace.reads_by(b):
                sa, sb = set(ra.observed), set(rb.observed)
                if (sa - sb) and (sb - sa):
                    return True
    return False


def brute_force_order(trace):
    for a, b in trace.agent_pairs():
        for ra in trace.reads_by(a):
            for rb in trace.reads_by(b):
                common = set(ra.observed) & set(rb.observed)
                for x in common:
                    for y in common:
                        if x == y:
                            continue
                        if (ra.observed.index(x) < ra.observed.index(y)
                                and rb.observed.index(y)
                                < rb.observed.index(x)):
                            return True
    return False


@settings(max_examples=200, deadline=None)
@given(trace=arbitrary_traces())
def test_checkers_match_brute_force_definitions(trace):
    assert bool(ReadYourWritesChecker().check(trace)) \
        == brute_force_ryw(trace)
    assert bool(MonotonicWritesChecker().check(trace)) \
        == brute_force_mw(trace)
    assert bool(MonotonicReadsChecker().check(trace)) \
        == brute_force_mr(trace)
    assert bool(ContentDivergenceChecker().check(trace)) \
        == brute_force_content(trace)
    assert bool(OrderDivergenceChecker().check(trace)) \
        == brute_force_order(trace)


@settings(max_examples=200, deadline=None)
@given(trace=arbitrary_traces())
def test_checkers_are_deterministic(trace):
    first = check_all(trace).summary()
    second = check_all(trace).summary()
    assert first == second


# -- Linearizable-oracle soundness ------------------------------------------


@st.composite
def linearizable_traces(draw):
    """Traces where every read is consistent with one total order.

    Writes land in a single global order; every read returns exactly
    the writes completed before its invocation, in that order.  No
    checker may fire on such a trace.
    """
    num_messages = draw(st.integers(2, 6))
    message_ids = MESSAGES[:num_messages]
    operations = []
    committed = []  # (response_time, message_id)
    time = 0.0
    for message_id in message_ids:
        author = draw(st.sampled_from(AGENTS))
        time += draw(st.floats(0.2, 2.0))
        op = write(author, message_id, time)
        operations.append(op)
        committed.append((op.response_local, message_id))
        # Interleave reads from arbitrary agents.
        for _ in range(draw(st.integers(0, 2))):
            agent = draw(st.sampled_from(AGENTS))
            time += draw(st.floats(0.2, 1.0))
            visible = tuple(mid for resp, mid in committed
                            if resp <= time)
            operations.append(read(agent, visible, time))
    return make_trace(operations)


@settings(max_examples=200, deadline=None)
@given(trace=linearizable_traces())
def test_linearizable_histories_trigger_no_checker(trace):
    report = check_all(trace)
    assert all(count == 0 for count in report.summary().values()), (
        f"false positive on a linearizable history: "
        f"{report.summary()}"
    )
