"""Property-based validation of divergence-window computation."""

from hypothesis import given, settings

from repro.core import (
    content_divergence_windows,
    order_divergence_windows,
)
from repro.core.anomalies import (
    ContentDivergenceChecker,
    OrderDivergenceChecker,
)

from tests.test_property_checkers import arbitrary_traces


@settings(max_examples=200, deadline=None)
@given(trace=arbitrary_traces())
def test_intervals_are_sorted_disjoint_and_in_range(trace):
    observation_times = [trace.corrected_response(op)
                         for op in trace.operations]
    lo, hi = min(observation_times), max(observation_times)
    for first, second in trace.agent_pairs():
        for compute in (content_divergence_windows,
                        order_divergence_windows):
            result = compute(trace, first, second)
            previous_end = float("-inf")
            for start, end in result.intervals:
                assert start >= previous_end, "intervals must be disjoint"
                assert end >= start
                assert lo <= start <= hi
                assert lo <= end <= hi
                previous_end = end


@settings(max_examples=200, deadline=None)
@given(trace=arbitrary_traces())
def test_windows_are_symmetric_in_pair_order(trace):
    for first, second in trace.agent_pairs():
        forward = content_divergence_windows(trace, first, second)
        backward = content_divergence_windows(trace, second, first)
        assert forward.pair == backward.pair
        assert forward.intervals == backward.intervals
        assert forward.converged == backward.converged


@settings(max_examples=200, deadline=None)
@given(trace=arbitrary_traces())
def test_largest_never_exceeds_total(trace):
    for first, second in trace.agent_pairs():
        result = content_divergence_windows(trace, first, second)
        if result.largest is not None:
            assert result.largest <= result.total + 1e-9
            assert result.largest >= 0.0


@settings(max_examples=200, deadline=None)
@given(trace=arbitrary_traces())
def test_timeline_divergence_implies_checker_detection(trace):
    """A positive window means two coexisting views conflicted, and
    those views came from actual reads — so the pairwise checker must
    also fire.  (The converse is false: the paper's zero-window example
    has checker-detected divergence with no window.)
    """
    content_pairs = {
        obs.pair
        for obs in ContentDivergenceChecker().check(trace)
    }
    order_pairs = {
        obs.pair
        for obs in OrderDivergenceChecker().check(trace)
    }
    for first, second in trace.agent_pairs():
        pair = tuple(sorted((first, second)))
        if content_divergence_windows(trace, first, second).diverged:
            assert pair in content_pairs
        if order_divergence_windows(trace, first, second).diverged:
            assert pair in order_pairs


@settings(max_examples=150, deadline=None)
@given(trace=arbitrary_traces())
def test_unconverged_iff_final_views_divergent(trace):
    for first, second in trace.agent_pairs():
        result = content_divergence_windows(trace, first, second)
        reads_a = trace.reads_by(*[a for a in (first,)])
        reads_b = trace.reads_by(second)
        final_a = reads_a[-1].observed if reads_a else ()
        final_b = reads_b[-1].observed if reads_b else ()
        from repro.core.anomalies import views_content_diverged

        assert result.converged == (
            not views_content_diverged(final_a, final_b)
        )
