"""Tests for the quorum substrate, service, and the Quorum combinator."""

import pytest

from repro.errors import ConfigurationError, FutureError
from repro.methodology import CampaignConfig, run_campaign
from repro.net import (
    IRELAND,
    OREGON,
    TOKYO,
    JitterParams,
    LatencyModel,
    Network,
    paper_topology,
)
from repro.replication import QuorumParams, QuorumStore
from repro.services import QuorumKvParams
from repro.sim import Future, Quorum, RandomSource, Simulator


class TestQuorumFuture:
    def test_resolves_at_k_successes(self):
        futures = [Future() for _ in range(3)]
        quorum = Quorum(futures, k=2)
        futures[1].resolve("b")
        assert not quorum.done
        futures[2].resolve("c")
        assert quorum.value == ["b", "c"]
        futures[0].resolve("a")  # late success is ignored

    def test_tolerates_failures_while_k_possible(self):
        futures = [Future() for _ in range(3)]
        quorum = Quorum(futures, k=2)
        futures[0].fail(RuntimeError("down"))
        assert not quorum.done
        futures[1].resolve(1)
        futures[2].resolve(2)
        assert quorum.value == [1, 2]

    def test_fails_when_k_impossible(self):
        futures = [Future() for _ in range(3)]
        quorum = Quorum(futures, k=2)
        futures[0].fail(RuntimeError("one"))
        futures[1].fail(RuntimeError("two"))
        assert quorum.failed

    def test_validates_k(self):
        with pytest.raises(FutureError):
            Quorum([Future()], k=0)
        with pytest.raises(FutureError):
            Quorum([Future()], k=2)

    def test_k_equals_n_behaves_like_all(self):
        futures = [Future(), Future()]
        quorum = Quorum(futures, k=2)
        futures[0].resolve(1)
        futures[1].resolve(2)
        assert quorum.value == [1, 2]


def make_quorum_world(read_quorum, write_quorum, seed=2,
                      apply_median=0.001, apply_sigma=0.01):
    sim = Simulator()
    topo = paper_topology()
    for index, region in enumerate((OREGON, TOKYO, IRELAND)):
        topo.place_host(f"replica-{index}", region)
    topo.place_host("frontend", OREGON)
    rng = RandomSource(seed=seed)
    net = Network(sim, LatencyModel(topo, rng.child("net"),
                                    JitterParams(sigma=0.05)))
    params = QuorumParams(
        read_quorum=read_quorum, write_quorum=write_quorum,
        apply_delay_median=apply_median,
        apply_delay_sigma=apply_sigma,
    )
    store = QuorumStore(
        sim, net, params,
        replica_hosts=[f"replica-{i}" for i in range(3)],
        frontend_hosts=["frontend"],
        rng=rng.child("quorum"),
    )
    return sim, store


def settle(sim, future, timeout=30.0):
    deadline = sim.now + timeout
    while not future.done and sim.now < deadline:
        sim.run_until(min(sim.now + 0.05, deadline))
    assert future.done
    return future.value


class TestQuorumStore:
    def test_write_then_strict_read_sees_it(self):
        sim, store = make_quorum_world(read_quorum=2, write_quorum=2)
        settle(sim, store.write("frontend", "M1", "alice"))
        view = settle(sim, store.read("frontend"))
        assert view == ("M1",)

    def test_w1_write_is_acked_before_full_replication(self):
        sim, store = make_quorum_world(
            read_quorum=3, write_quorum=1,
            apply_median=0.001,
        )
        ack = store.write("frontend", "M1", "alice")
        settle(sim, ack)
        # With R=N the read waits for the slowest replica, so it must
        # include the write even though only one replica had acked.
        view = settle(sim, store.read("frontend"))
        assert view == ("M1",)

    def test_merge_orders_by_origin_timestamp(self):
        sim, store = make_quorum_world(read_quorum=3, write_quorum=3)
        settle(sim, store.write("frontend", "M1", "a"))
        sim.run_until(sim.now + 1.0)
        settle(sim, store.write("frontend", "M2", "b"))
        view = settle(sim, store.read("frontend"))
        assert view == ("M1", "M2")

    def test_slow_apply_with_r1_misses_recent_writes(self):
        sim, store = make_quorum_world(
            read_quorum=1, write_quorum=1,
            apply_median=5.0, apply_sigma=0.01,
        )
        ack = store.write("frontend", "M1", "alice")
        settle(sim, ack, timeout=30.0)  # acked after first commit ~5s
        # Immediately after the ack, only one replica has committed;
        # an R=1 read served by a *different* (uncommitted) replica
        # may miss it, but the nearest replica is deterministic here,
        # so instead verify the commit gap directly.
        committed = sum(
            1 for replica in store.replicas
            if replica.store.contains("M1")
        )
        assert committed == 1
        sim.run_until(sim.now + 30.0)
        assert all(replica.store.contains("M1")
                   for replica in store.replicas)

    def test_replica_host_count_validated(self):
        sim = Simulator()
        topo = paper_topology()
        topo.place_host("r0", OREGON)
        rng = RandomSource(seed=1)
        net = Network(sim, LatencyModel(topo, rng, JitterParams()))
        with pytest.raises(ConfigurationError):
            QuorumStore(sim, net, QuorumParams(replicas=3),
                        replica_hosts=["r0"], frontend_hosts=[])

    def test_unknown_frontend_rejected(self):
        sim, store = make_quorum_world(1, 1)
        with pytest.raises(ConfigurationError):
            store.read("nowhere")

    def test_params_validation(self):
        with pytest.raises(ConfigurationError):
            QuorumParams(read_quorum=0)
        with pytest.raises(ConfigurationError):
            QuorumParams(write_quorum=4, replicas=3)
        assert QuorumParams(read_quorum=2, write_quorum=2).is_strict
        assert not QuorumParams(read_quorum=1, write_quorum=1).is_strict


class TestQuorumService:
    def test_weak_config_shows_session_anomalies(self):
        params = QuorumKvParams(quorum=QuorumParams(
            read_quorum=1, write_quorum=1,
        ))
        result = run_campaign("quorum_kv", CampaignConfig(
            num_tests=10, seed=5, service_params=params,
        ))
        summary = result.summary()
        assert summary["read_your_writes"] > 0.3
        assert summary["content_divergence"] > 0.3

    def test_strict_config_eliminates_session_anomalies(self):
        params = QuorumKvParams(quorum=QuorumParams(
            read_quorum=2, write_quorum=2,
        ))
        result = run_campaign("quorum_kv", CampaignConfig(
            num_tests=10, seed=5, service_params=params,
        ))
        summary = result.summary()
        assert summary["read_your_writes"] == 0.0
        assert summary["monotonic_writes"] == 0.0
        assert summary["monotonic_reads"] == 0.0

    def test_strict_config_costs_write_latency(self):
        durations = {}
        for label, (r, w) in (("weak", (1, 1)), ("strict", (2, 2))):
            params = QuorumKvParams(quorum=QuorumParams(
                read_quorum=r, write_quorum=w,
            ))
            result = run_campaign("quorum_kv", CampaignConfig(
                num_tests=6, seed=7, test_types=("test1",),
                keep_traces=True, service_params=params,
            ))
            latencies = []
            for record in result.records:
                for write in record.trace.writes():
                    latencies.append(write.response_local
                                     - write.invoke_local)
            durations[label] = sum(latencies) / len(latencies)
        assert durations["strict"] > durations["weak"]
