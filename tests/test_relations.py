"""Unit tests for the relation layer: specs, relations, evaluation.

These tests exercise :mod:`repro.relations` on hand-built traces whose
visibility and arbitration relations can be worked out on paper, so
each metric's semantics is pinned by a human-checkable example rather
than only by parity with another implementation.
"""

import pytest

from repro.errors import ConfigurationError
from repro.io import record_from_dict, record_to_dict
from repro.methodology.runner import analyze_trace
from repro.relations import (
    BUILTIN_SPECS,
    LEGACY_EQUIVALENTS,
    Arbitration,
    MetricResult,
    MetricSample,
    MetricSpec,
    ReadContext,
    aggregate,
    anomaly_kinds,
    derive_relations,
    evaluate_metrics,
    evaluate_read,
    metric_names,
    resolve_metrics,
    session_anomaly_kinds,
)
from tests.helpers import make_trace, read, write


class TestMetricSpec:
    def test_builtin_specs_are_valid_and_named(self):
        assert len(BUILTIN_SPECS) >= 5
        for name, spec in BUILTIN_SPECS.items():
            assert spec.name == name
            assert spec.description

    def test_rejects_unknown_expect(self):
        with pytest.raises(ConfigurationError):
            MetricSpec(name="x", expect="bogus", violation="missing",
                       measure="count")

    def test_rejects_unknown_violation(self):
        with pytest.raises(ConfigurationError):
            MetricSpec(name="x", expect="visible", violation="bogus",
                       measure="count")

    def test_rejects_unknown_measure(self):
        with pytest.raises(ConfigurationError):
            MetricSpec(name="x", expect="visible", violation="missing",
                       measure="bogus")

    def test_arbitration_violations_require_visible_expectation(self):
        with pytest.raises(ConfigurationError):
            MetricSpec(name="x", expect="own_completed",
                       violation="relaxation", measure="max")
        with pytest.raises(ConfigurationError):
            MetricSpec(name="x", expect="seen_before",
                       violation="inversion", measure="sum")

    def test_needs_arbitration(self):
        assert BUILTIN_SPECS["relaxed_consistency"].needs_arbitration
        assert BUILTIN_SPECS["stale_read_inversions"].needs_arbitration
        assert not BUILTIN_SPECS["read_your_writes"].needs_arbitration
        assert not BUILTIN_SPECS[
            "session_monotonicity_depth"].needs_arbitration


class TestRegistry:
    def test_metric_names_presentation_order(self):
        names = metric_names()
        assert set(names) == set(BUILTIN_SPECS)
        assert names == tuple(BUILTIN_SPECS)

    def test_resolve_preserves_request_order(self):
        specs = resolve_metrics(("monotonic_reads",
                                 "relaxed_consistency"))
        assert [spec.name for spec in specs] == \
            ["monotonic_reads", "relaxed_consistency"]

    def test_resolve_rejects_unknown_name(self):
        with pytest.raises(ConfigurationError,
                           match="unknown consistency metric"):
            resolve_metrics(("monotonic_reads", "nope"))

    def test_resolve_rejects_duplicates(self):
        with pytest.raises(ConfigurationError, match="duplicate"):
            resolve_metrics(("monotonic_reads", "monotonic_reads"))

    def test_legacy_equivalents_name_real_specs_and_anomalies(self):
        assert LEGACY_EQUIVALENTS
        for metric, anomaly in LEGACY_EQUIVALENTS.items():
            assert metric in BUILTIN_SPECS
            assert anomaly in anomaly_kinds()

    def test_anomaly_kind_views(self):
        assert set(session_anomaly_kinds()) < set(anomaly_kinds())


class TestArbitration:
    def test_from_keyed_orders_by_corrected_invoke_then_seq(self):
        arb = Arbitration.from_keyed([
            (2.0, 5, "c"), (1.0, 1, "a"), (1.0, 3, "b"),
        ])
        assert arb.order == ("a", "b", "c")
        assert arb.rank == {"a": 0, "b": 1, "c": 2}


class TestEvaluateRead:
    def test_missing_own_completed_counts_and_orders(self):
        ctx = ReadContext(agent="oregon", time=3.0,
                          observed=frozenset({"m2"}),
                          own_completed=("m1", "m2", "m3"))
        spec = BUILTIN_SPECS["read_your_writes"]
        value, details = evaluate_read(
            spec, ctx, Arbitration(order=(), rank={}))
        assert value == 2
        assert details["missing"] == ("m1", "m3")

    def test_missing_seen_before_max_depth(self):
        ctx = ReadContext(agent="oregon", time=3.0,
                          observed=frozenset({"m2"}),
                          seen_before=frozenset({"m1", "m2", "m4"}))
        spec = BUILTIN_SPECS["session_monotonicity_depth"]
        value, details = evaluate_read(
            spec, ctx, Arbitration(order=(), rank={}))
        assert value == 2
        assert details["missing"] == ("m1", "m4")

    def test_relaxation_counts_skips_below_frontier(self):
        # Arbitration m1 < m2 < m3 < m4; the read sees only m3, so
        # the frontier is m3 and {m1, m2} are skipped: k = 2.
        arb = Arbitration.from_keyed([
            (1.0, 0, "m1"), (2.0, 1, "m2"),
            (3.0, 2, "m3"), (4.0, 3, "m4"),
        ])
        ctx = ReadContext(agent="tokyo", time=5.0,
                          observed=frozenset({"m3"}))
        spec = BUILTIN_SPECS["relaxed_consistency"]
        value, details = evaluate_read(spec, ctx, arb)
        assert value == 2
        assert details["frontier"] == "m3"
        assert details["skipped"] == ("m1", "m2")

    def test_relaxation_zero_for_prefix_view(self):
        arb = Arbitration.from_keyed([
            (1.0, 0, "m1"), (2.0, 1, "m2"), (3.0, 2, "m3"),
        ])
        ctx = ReadContext(agent="tokyo", time=5.0,
                          observed=frozenset({"m1", "m2"}))
        spec = BUILTIN_SPECS["relaxed_consistency"]
        value, _ = evaluate_read(spec, ctx, arb)
        assert value == 0

    def test_inversion_counts_out_of_order_pairs(self):
        # View order follows the read's observed tuple order via the
        # arbitration ranks: seeing {m3, m1} only inverts one pair.
        arb = Arbitration.from_keyed([
            (1.0, 0, "m1"), (2.0, 1, "m2"), (3.0, 2, "m3"),
        ])
        spec = BUILTIN_SPECS["stale_read_inversions"]
        value, details = evaluate_read(
            spec,
            ReadContext(agent="tokyo", time=5.0,
                        observed=("m3", "m1")),
            arb,
        )
        assert value == 1
        assert details["inverted"] == (("m3", "m1"),)

    def test_unlogged_observed_ids_are_ignored(self):
        arb = Arbitration.from_keyed([(1.0, 0, "m1")])
        spec = BUILTIN_SPECS["stale_read_inversions"]
        value, _ = evaluate_read(
            spec,
            ReadContext(agent="tokyo", time=5.0,
                        observed=("ghost", "m1")),
            arb,
        )
        assert value == 0


class TestAggregate:
    def test_count_sum_max(self):
        samples = (
            MetricSample(agent="a", time=1.0, value=2),
            MetricSample(agent="b", time=2.0, value=5),
        )
        count_spec = BUILTIN_SPECS["read_your_writes"]
        sum_spec = BUILTIN_SPECS["stale_read_inversions"]
        max_spec = BUILTIN_SPECS["relaxed_consistency"]
        assert aggregate(count_spec, samples) == 2
        assert aggregate(sum_spec, samples) == 7
        assert aggregate(max_spec, samples) == 5

    def test_empty_samples_are_zero(self):
        for spec in BUILTIN_SPECS.values():
            assert aggregate(spec, ()) == 0


class TestDeriveRelations:
    def test_arbitration_follows_corrected_invoke_order(self):
        trace = make_trace([
            write("oregon", "m1", at=1.0),
            write("tokyo", "m2", at=2.0),
            read("ireland", ["m1", "m2"], at=3.0),
        ])
        arbitration, contexts = derive_relations(trace)
        assert arbitration.order == ("m1", "m2")
        assert len(contexts) == 1
        assert contexts[0].observed == ("m1", "m2")

    def test_contexts_carry_session_state(self):
        trace = make_trace([
            write("oregon", "m1", at=1.0),
            read("oregon", [], at=2.0),
            read("oregon", ["m1"], at=3.0),
            read("oregon", [], at=4.0),
        ])
        _, contexts = derive_relations(trace)
        # First read: m1 completed (response 1.1 <= invoke 2.0) but
        # nothing seen yet; third read regresses on the second.
        assert contexts[0].own_completed == ("m1",)
        assert contexts[0].seen_before == frozenset()
        assert contexts[2].seen_before == frozenset({"m1"})


class TestEvaluateMetrics:
    def test_read_your_writes_spec_on_violating_trace(self):
        trace = make_trace([
            write("oregon", "m1", at=1.0),
            read("oregon", [], at=2.0),
            read("oregon", ["m1"], at=3.0),
        ])
        (result,) = evaluate_metrics(
            trace, resolve_metrics(("read_your_writes",)))
        assert result.metric == "read_your_writes"
        assert result.value == 1
        (sample,) = result.samples
        assert sample.agent == "oregon"
        assert sample.details["missing"] == ("m1",)

    def test_results_follow_spec_order_and_keep_zero_values(self):
        trace = make_trace([
            write("oregon", "m1", at=1.0),
            read("tokyo", ["m1"], at=2.0),
        ])
        results = evaluate_metrics(
            trace, resolve_metrics(("monotonic_reads",
                                    "relaxed_consistency")))
        assert [r.metric for r in results] == \
            ["monotonic_reads", "relaxed_consistency"]
        assert all(r.value == 0 and r.samples == () for r in results)

    def test_samples_only_for_violating_reads(self):
        trace = make_trace([
            write("oregon", "m1", at=1.0),
            read("ireland", ["m1"], at=2.0),
            read("ireland", [], at=3.0),
            read("ireland", ["m1"], at=4.0),
        ])
        (result,) = evaluate_metrics(
            trace, resolve_metrics(("monotonic_reads",)))
        assert result.value == 1
        (sample,) = result.samples
        assert sample.time == read("ireland", [], at=3.0).response_local


class TestRecordCodec:
    def _record(self, metrics):
        trace = make_trace([
            write("oregon", "m1", at=1.0),
            read("oregon", [], at=2.0),
        ])
        return analyze_trace(trace, metrics=metrics)

    def test_metrics_round_trip(self):
        record = self._record(resolve_metrics(("read_your_writes",
                                               "monotonic_reads")))
        data = record_to_dict(record)
        restored = record_from_dict(data, "unit")
        assert restored.metrics == record.metrics
        assert isinstance(restored.metrics[0], MetricResult)
        assert isinstance(restored.metrics[0].samples[0], MetricSample)

    def test_metrics_key_absent_when_unused(self):
        # Records from metric-less campaigns must serialize to the
        # exact bytes they did before the relation layer existed, or
        # every golden fleet signature would shift.
        record = self._record(())
        assert "metrics" not in record_to_dict(record)
