"""Integration contracts of the relation layer.

Three equalities make spec-defined metrics trustworthy:

* **streaming == batch** — the bounded-memory evaluator must agree
  element-for-element (values, samples, details) with the batch
  evaluator on every trace;
* **spec == legacy** — the two paper predicates re-expressed as
  metric specs must flag the same (agent, time, evidence) reads as
  the original checkers;
* **serial == parallel** — a fleet run with metrics enabled must
  produce byte-identical records at any job count.

Plus the end-to-end surfaces: scenario files, campaign save/load, the
CLI flag, and the deprecation shim.
"""

import dataclasses
import warnings

import pytest

from repro.errors import ConfigurationError
from repro.io import load_campaign, save_campaign
from repro.methodology import CampaignConfig, run_campaign
from repro.relations import (
    legacy_verdict_mismatches,
    metric_mismatches,
    resolve_metrics,
    streaming_metrics,
)
from repro.relations.registry import metric_names
from repro.stream import record_mismatches, verify_trace
from tests.helpers import make_trace, read, write
from tests.test_stream_parity import random_trace

ALL_METRICS = metric_names()

SMALL = CampaignConfig(num_tests=3, inter_test_gap=5.0,
                       keep_traces=True, metrics=ALL_METRICS)


def campaign_traces(service: str, seed: int = 11):
    config = dataclasses.replace(SMALL, seed=seed)
    result = run_campaign(service, config)
    return [record.trace for record in result.records]


class TestStreamingBatchParity:
    @pytest.mark.parametrize("service", [
        "blogger", "googleplus", "facebook_feed", "facebook_group",
        "quorum_kv",
    ])
    def test_campaign_traces_agree(self, service):
        specs = resolve_metrics(ALL_METRICS)
        for trace in campaign_traces(service):
            assert metric_mismatches(trace, specs) == []

    @pytest.mark.parametrize("seed", range(25))
    def test_adversarial_random_traces_agree(self, seed):
        specs = resolve_metrics(ALL_METRICS)
        assert metric_mismatches(random_trace(seed), specs) == []

    def test_streaming_state_drains_after_close(self):
        specs = resolve_metrics(ALL_METRICS)
        trace = campaign_traces("facebook_feed")[0]
        _, retained = streaming_metrics(trace, specs)
        assert retained == 0

    def test_verify_trace_covers_metrics(self):
        specs = resolve_metrics(ALL_METRICS)
        for trace in campaign_traces("facebook_feed"):
            assert verify_trace(trace, metrics=specs) == []

    def test_stream_engine_exports_relation_counters(self):
        from repro.obs import ObsContext
        from repro.stream import StreamEngine, replay_trace

        specs = resolve_metrics(("stale_read_inversions",
                                 "read_your_writes"))
        obs = ObsContext()
        engine = StreamEngine(horizon=1, obs=obs, metrics=specs)
        traces = campaign_traces("facebook_feed")
        for trace in traces:
            replay_trace(trace, engine)
        service = traces[0].service
        samples = obs.metrics.counter(
            "relations.samples_total", service=service,
            metric="stale_read_inversions").value
        total = obs.metrics.counter(
            "relations.value_total", service=service,
            metric="stale_read_inversions").value
        assert samples > 0
        assert total >= samples

    def test_record_mismatches_reports_metric_field(self):
        trace = make_trace([
            write("oregon", "m1", at=1.0),
            read("oregon", [], at=2.0),
        ])
        from repro.methodology.runner import analyze_trace

        specs = resolve_metrics(("read_your_writes",))
        with_metrics = analyze_trace(trace, metrics=specs)
        without = analyze_trace(trace)
        mismatches = record_mismatches(without, with_metrics)
        assert any(m.startswith("metrics:") for m in mismatches)


class TestLegacyEquivalence:
    @pytest.mark.parametrize("service", [
        "googleplus", "facebook_feed", "facebook_group", "quorum_kv",
    ])
    def test_specs_match_checkers_on_campaigns(self, service):
        for trace in campaign_traces(service):
            assert legacy_verdict_mismatches(trace) == []

    @pytest.mark.parametrize("seed", range(25))
    def test_specs_match_checkers_on_random_traces(self, seed):
        assert legacy_verdict_mismatches(random_trace(seed)) == []


class TestFleetByteIdentity:
    def test_serial_and_parallel_signatures_match(self):
        from repro.fleet import FleetSpec, run_fleet

        config = dataclasses.replace(SMALL, keep_traces=False)
        spec = FleetSpec(services=("facebook_feed", "quorum_kv"),
                         base_config=config, seeds=(3, 5))
        serial = run_fleet(spec, jobs=1)
        parallel = run_fleet(spec, jobs=4)
        assert serial.signature() == parallel.signature()
        sample = parallel.results[0].records[0]
        assert sample.metrics, \
            "fleet records should carry metric results"

    def test_campaign_save_load_round_trip(self, tmp_path):
        result = run_campaign(
            "facebook_feed", dataclasses.replace(
                SMALL, keep_traces=False))
        path = save_campaign(result, tmp_path / "campaign.json")
        restored = load_campaign(path)
        assert restored.config.metrics == tuple(ALL_METRICS)
        assert [r.metrics for r in restored.records] == \
            [r.metrics for r in result.records]


class TestConfigValidation:
    def test_config_rejects_unknown_metric(self):
        with pytest.raises(ConfigurationError,
                           match="unknown consistency metric"):
            CampaignConfig(metrics=("bogus",))

    def test_config_normalizes_metrics_to_tuple(self):
        config = CampaignConfig(metrics=["monotonic_reads"])
        assert config.metrics == ("monotonic_reads",)


SCENARIO_WITH_METRICS = """
metrics = ["read_your_writes", "session_monotonicity_depth"]

[scenario]
schema_version = 1
name = "measured"
description = "gossip scenario with relation metrics"

[service]
archetype = "gossip"

[workload]
num_tests = 2
test_types = ["test1"]
"""


class TestScenarioMetrics:
    def _load(self, tmp_path, body):
        from repro.scenario import load_scenario

        path = tmp_path / "scenario.toml"
        path.write_text(body, encoding="utf-8")
        return load_scenario(path)

    def test_loader_parses_metrics_key(self, tmp_path):
        spec = self._load(tmp_path, SCENARIO_WITH_METRICS)
        assert spec.metrics == ("read_your_writes",
                                "session_monotonicity_depth")

    def test_loader_rejects_unknown_metric(self, tmp_path):
        bad = SCENARIO_WITH_METRICS.replace(
            "read_your_writes", "not_a_metric")
        with pytest.raises(ConfigurationError,
                           match="unknown consistency metric"):
            self._load(tmp_path, bad)

    def test_metrics_enter_scenario_digest(self, tmp_path):
        spec = self._load(tmp_path, SCENARIO_WITH_METRICS)
        plain = self._load(
            tmp_path,
            SCENARIO_WITH_METRICS.replace(
                'metrics = ["read_your_writes", '
                '"session_monotonicity_depth"]\n', ""))
        assert spec.metrics and not plain.metrics
        assert spec.digest() != plain.digest()

    def test_scenario_lowers_metrics_into_config(self, tmp_path):
        from repro.scenario import scenario_config

        spec = self._load(tmp_path, SCENARIO_WITH_METRICS)
        config = scenario_config(spec)
        assert config.metrics == spec.metrics

    def test_cli_metrics_flag_wins_over_scenario(self, tmp_path):
        from repro.scenario import scenario_config

        spec = self._load(tmp_path, SCENARIO_WITH_METRICS)
        base = CampaignConfig(metrics=("monotonic_reads",))
        config = scenario_config(spec, base)
        assert config.metrics == ("monotonic_reads",)

    def test_scenario_campaign_computes_metrics(self, tmp_path):
        from repro.scenario import scenario_campaign

        spec = self._load(tmp_path, SCENARIO_WITH_METRICS)
        service, config = scenario_campaign(spec)
        result = run_campaign(service, config)
        for record in result.records:
            assert [m.metric for m in record.metrics] == \
                ["read_your_writes", "session_monotonicity_depth"]


class TestCliSurface:
    def test_run_prints_metric_table(self, capsys):
        from repro.cli import main

        code = main([
            "run", "--service", "blogger", "--tests", "2",
            "--seed", "7", "--metrics",
            "relaxed_consistency,stale_read_inversions",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "relaxed_consistency" in out
        assert "stale_read_inversions" in out

    def test_run_rejects_unknown_metric(self, capsys):
        from repro.cli import main

        with pytest.raises(ConfigurationError):
            main(["run", "--service", "blogger", "--tests", "1",
                  "--metrics", "bogus"])


class TestDeprecationShim:
    def test_legacy_module_warns_and_reexports(self):
        import importlib
        import sys

        sys.modules.pop("repro.relations.legacy", None)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            legacy = importlib.import_module("repro.relations.legacy")
        assert any(issubclass(w.category, DeprecationWarning)
                   for w in caught)
        from repro.core import ALL_ANOMALIES

        assert legacy.ALL_ANOMALIES is ALL_ANOMALIES


class TestStoreDigestMessages:
    def test_spec_mismatch_names_scenario_digests(self, tmp_path):
        from repro.errors import FleetError
        from repro.fleet import FleetSpec
        from repro.fleet.store import ArtifactStore
        from repro.scenario.loader import scenario_from_mapping

        def spec_for(description):
            scenario = scenario_from_mapping({
                "scenario": {
                    "schema_version": 1,
                    "name": "measured",
                    "description": description,
                },
                "service": {"archetype": "gossip"},
                "workload": {"num_tests": 1,
                             "test_types": ["test1"]},
            }, "inline")
            return FleetSpec(services=("measured",),
                             base_config=CampaignConfig(num_tests=1),
                             seeds=(1,), scenarios=(scenario,))

        store = ArtifactStore(tmp_path)
        store.initialize(spec_for("one"))
        changed = spec_for("two")
        with pytest.raises(FleetError) as excinfo:
            ArtifactStore(tmp_path).initialize(changed)
        message = str(excinfo.value)
        assert "store scenario digests" in message
        assert changed.scenarios[0].digest() in message
