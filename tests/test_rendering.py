"""Tests for the ASCII CDF and timeline renderers."""

import pytest

from repro.analysis import CdfSeries, render_cdf, render_timeline
from repro.core import EmpiricalCDF
from repro.errors import AnalysisError

from tests.helpers import make_trace, read, write


class TestRenderCdf:
    def make_series(self, label="a", samples=(1.0, 2.0, 3.0)):
        return CdfSeries(label=label,
                         cdf=EmpiricalCDF.from_samples(samples))

    def test_basic_shape(self):
        text = render_cdf([self.make_series()], width=32, height=8)
        lines = text.splitlines()
        assert len(lines) == 8 + 3  # grid + axis + x labels + legend
        assert lines[0].startswith("1.00 |")
        assert lines[7].startswith("0.00 |")
        assert "o a" in lines[-1]

    def test_multiple_series_get_distinct_markers(self):
        text = render_cdf(
            [self.make_series("first"), self.make_series("second")],
            width=32, height=8,
        )
        assert "o first" in text
        assert "x second" in text

    def test_x_axis_spans_max_sample(self):
        text = render_cdf(
            [self.make_series(samples=(0.5, 12.5))], width=32, height=8
        )
        assert "12.50 seconds" in text

    def test_monotone_curve(self):
        # Marker rows must be non-increasing left to right (CDF rises).
        text = render_cdf([self.make_series()], width=32, height=8)
        rows = [line[6:] for line in text.splitlines()[:8]]
        first_marker_rows = []
        for column in range(32):
            for row_index, row in enumerate(rows):
                if row[column] == "o":
                    first_marker_rows.append(row_index)
                    break
        assert first_marker_rows == sorted(first_marker_rows,
                                           reverse=True)

    def test_validation(self):
        with pytest.raises(AnalysisError):
            render_cdf([], width=32, height=8)
        with pytest.raises(AnalysisError):
            render_cdf([self.make_series()], width=4, height=2)

    def test_custom_x_label(self):
        text = render_cdf([self.make_series()], width=32, height=8,
                          x_label="ms")
        assert "ms" in text


class TestRenderTimeline:
    def make_test_trace(self):
        return make_trace([
            write("oregon", "t.M1", 0.0, response=0.5),
            write("oregon", "t.M2", 0.5, response=1.0),
            read("tokyo", ("t.M1",), 1.0),
            read("tokyo", ("t.M1", "t.M2"), 2.0),
            write("ireland", "t.M3", 3.0, response=3.5),
            read("oregon", ("t.M1", "t.M2", "t.M3"), 4.0),
        ], test_id="demo")

    def test_all_agents_have_lanes(self):
        text = render_timeline(self.make_test_trace(), width=60)
        assert "oregon " in text
        assert "tokyo " in text
        assert "ireland " in text

    def test_writes_are_labelled_boxes(self):
        text = render_timeline(self.make_test_trace(), width=80)
        assert "[M1" in text
        assert "[M2" in text
        assert "[M3" in text

    def test_reads_are_ticks(self):
        text = render_timeline(self.make_test_trace(), width=60)
        tokyo_lane = next(line for line in text.splitlines()
                          if line.lstrip().startswith("tokyo"))
        assert tokyo_lane.count("|") == 2

    def test_header_mentions_test(self):
        text = render_timeline(self.make_test_trace(), width=60)
        assert text.splitlines()[0].startswith("demo (test1")

    def test_clock_deltas_shift_columns(self):
        # A large delta moves an agent's operations on the shared
        # reference timeline (here: tokyo's read to the far left).
        trace = make_trace(
            [
                write("oregon", "t.M1", 0.0, response=0.5),
                read("tokyo", ("t.M1",), 100.0),
            ],
            clock_deltas={"tokyo": 100.0},
        )
        text = render_timeline(trace, width=60)
        tokyo_lane = next(line for line in text.splitlines()
                          if line.lstrip().startswith("tokyo"))
        tick_position = tokyo_lane.index("|")
        assert tick_position < 25  # corrected back near t=0

    def test_validation(self):
        with pytest.raises(AnalysisError):
            render_timeline(self.make_test_trace(), width=8)
        with pytest.raises(AnalysisError):
            render_timeline(make_trace([]), width=60)
