"""Author sharding: the placement map and the substrates' sharded
fanout paths (``author_shards > 1``).

The default ``author_shards = 1`` paths are pinned byte-for-byte by
the golden-signature suite; these tests cover the opt-in sharded
behavior the world engine's §II scale story is built on.
"""

import pytest

from repro.errors import ConfigurationError
from repro.net import (
    IRELAND,
    OREGON,
    TOKYO,
    JitterParams,
    LatencyModel,
    Network,
    paper_topology,
)
from repro.replication import (
    AuthorShardMap,
    EventualGroup,
    EventualParams,
    GossipGroup,
    GossipParams,
    RankedFeedParams,
    RankedFeedStore,
    author_shard,
)
from repro.sim import RandomSource, Simulator


def same_shard_authors(shards, want=2):
    """First ``want`` author names that all land on shard 0."""
    found = []
    index = 0
    while len(found) < want:
        name = f"author-{index}"
        if author_shard(name, shards) == 0:
            found.append(name)
        index += 1
    return found


def make_ring(seed=3):
    sim = Simulator()
    topo = paper_topology()
    for host, region in (
        ("g-0", OREGON),
        ("g-1", TOKYO),
        ("g-2", IRELAND),
        ("dc-us", OREGON),
        ("dc-eu", IRELAND),
    ):
        topo.place_host(host, region)
    rng = RandomSource(seed=seed)
    net = Network(sim, LatencyModel(topo, rng.child("net"),
                                    JitterParams(sigma=0.1)))
    return sim, net, rng


class TestAuthorShardMap:
    def test_author_shard_is_stable_and_in_range(self):
        for shards in (1, 2, 7):
            for name in ("alice", "bob", "帯域"):
                shard = author_shard(name, shards)
                assert 0 <= shard < shards
                assert shard == author_shard(name, shards)

    def test_author_shard_rejects_zero_shards(self):
        with pytest.raises(ValueError):
            author_shard("alice", 0)
        with pytest.raises(ValueError):
            AuthorShardMap(0)

    def test_group_orders_shards_and_preserves_intra_order(self):
        shard_map = AuthorShardMap(4)
        items = [("alice", 1), ("bob", 2), ("alice", 3), ("carol", 4)]
        groups = shard_map.group(items, lambda item: item[0])
        shards = [shard for shard, _members in groups]
        assert shards == sorted(shards)
        flattened = [item for _shard, members in groups
                     for item in members]
        assert sorted(flattened, key=lambda item: item[1]) == items
        for shard, members in groups:
            positions = [items.index(item) for item in members]
            assert positions == sorted(positions)

    def test_ring_targets_walk_and_clamp(self):
        shard_map = AuthorShardMap(2)
        assert list(shard_map.ring_targets(1, 4, 2)) == [2, 3]
        assert list(shard_map.ring_targets(3, 4, 9)) == [0, 1, 2]
        assert list(shard_map.ring_targets(0, 1, 3)) == []


class TestShardedGossip:
    def params(self):
        return GossipParams(fanout=1, author_shards=3)

    def run_world(self, seed):
        sim, net, rng = make_ring(seed)
        hosts = ["g-0", "g-1", "g-2"]
        group = GossipGroup(sim, net, rng.child("gossip"),
                            self.params(), hosts)
        for index, author in enumerate(
            ("alice", "bob", "carol", "dave")
        ):
            group.write_at(hosts[index % 3], f"M{index}", author)
        sim.run_until(30.0)
        return tuple(group.read_from(host) for host in hosts)

    def test_sharded_fanout_converges_and_is_deterministic(self):
        first = self.run_world(seed=11)
        second = self.run_world(seed=11)
        assert first == second
        expected = ("M0", "M1", "M2", "M3")
        for feed in first:
            assert feed == expected

    def test_sharded_targets_are_a_pure_ring_walk(self):
        sim, net, rng = make_ring()
        group = GossipGroup(sim, net, rng.child("gossip"),
                            GossipParams(fanout=2, author_shards=4),
                            ["g-0", "g-1", "g-2"])
        replica = group.replica("g-0")
        peers = ["g-1", "g-2"]
        assert replica._sharded_targets(0) == peers
        assert replica._sharded_targets(1) == ["g-2", "g-1"]
        # Shard index wraps modulo the peer count.
        assert replica._sharded_targets(2) == replica._sharded_targets(0)
        assert replica._sharded_targets(3) == replica._sharded_targets(1)

    def test_author_shards_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            GossipParams(author_shards=0)


class TestShardedEventual:
    def test_shard_grouped_shipping_replicates_everything(self):
        sim, net, rng = make_ring(seed=5)
        params = EventualParams(author_shards=2)
        group = EventualGroup(sim, net, rng.child("dc"), params,
                              ["dc-us", "dc-eu"])
        messages = []
        for index, author in enumerate(
            ("alice", "bob", "carol", "dave", "erin")
        ):
            message_id = f"W{index}"
            group.replica("dc-us").accept_write(message_id, author)
            messages.append(message_id)
        sim.run_until(60.0)
        remote = group.replica("dc-eu").store
        for message_id in messages:
            assert remote.contains(message_id)

    def test_author_shards_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            EventualParams(author_shards=0)


class TestShardedRanking:
    def make_store(self, author_shards):
        sim = Simulator()
        rng = RandomSource(seed=9)
        params = RankedFeedParams(drop_prob=0.0, noise_sd=0.0,
                                  author_shards=author_shards)
        return sim, RankedFeedStore(sim, rng, params)

    def test_floor_is_per_shard_when_sharded(self):
        shards = 2
        first, second = same_shard_authors(shards)
        sim, store = self.make_store(shards)
        store.write(first, "M1")
        store.write(second, "M2")
        store.read("reader")
        assert set(store._index_floor) == {("reader", "shard:0")}
        # Same pipeline: the shard-mate's post can never be indexed
        # before its predecessor in the shard.
        assert (store._visible_at[("M2", "reader")]
                >= store._visible_at[("M1", "reader")])

    def test_floor_stays_per_author_by_default(self):
        first, second = same_shard_authors(2)
        sim, store = self.make_store(1)
        store.write(first, "M1")
        store.write(second, "M2")
        store.read("reader")
        assert set(store._index_floor) == {
            ("reader", first), ("reader", second)
        }

    def test_author_shards_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            RankedFeedParams(author_shards=0)
