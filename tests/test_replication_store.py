"""Unit tests for the versioned store and ordering policies."""

import pytest

from repro.errors import ConfigurationError
from repro.replication import (
    VersionedStore,
    arrival_key,
    second_truncated_key,
    timestamp_key,
)
from repro.sim import Simulator


class TestOrderingPolicies:
    def test_timestamp_key_orders_by_time_then_id(self):
        assert timestamp_key(1.0, 9, "A") < timestamp_key(2.0, 0, "B")
        assert timestamp_key(1.0, 0, "A") < timestamp_key(1.0, 0, "B")

    def test_arrival_key_ignores_timestamps(self):
        assert arrival_key(100.0, 0, "A") < arrival_key(1.0, 1, "B")

    def test_second_truncated_reverses_same_second(self):
        # Two writes 0.4s apart within one second: later sorts first.
        first = second_truncated_key(10.1, 1, "M1")
        second = second_truncated_key(10.5, 2, "M2")
        assert second < first

    def test_second_truncated_preserves_cross_second_order(self):
        first = second_truncated_key(10.9, 1, "M1")
        second = second_truncated_key(11.1, 2, "M2")
        assert first < second


class TestVersionedStore:
    def make_store(self, sim=None, retention=600.0):
        sim = sim or Simulator()
        return sim, VersionedStore(now_fn=lambda: sim.now,
                                   retention=retention)

    def test_retention_must_be_positive(self):
        sim = Simulator()
        with pytest.raises(ConfigurationError):
            VersionedStore(now_fn=lambda: sim.now, retention=0.0)

    def test_insert_and_view_now(self):
        _sim, store = self.make_store()
        store.insert("M1", "a", 1.0)
        store.insert("M2", "b", 2.0)
        assert store.view_now() == ("M1", "M2")
        assert len(store) == 2

    def test_insert_is_idempotent(self):
        _sim, store = self.make_store()
        entry1 = store.insert("M1", "a", 1.0)
        entry2 = store.insert("M1", "a", 5.0)  # duplicate delivery
        assert entry1 is entry2
        assert len(store) == 1

    def test_sort_key_controls_order(self):
        _sim, store = self.make_store()
        store.insert("M1", "a", 10.4, sort_key=second_truncated_key(
            10.4, 1, "M1"))
        store.insert("M2", "a", 10.8, sort_key=second_truncated_key(
            10.8, 2, "M2"))
        assert store.view_now() == ("M2", "M1")  # reversed same-second

    def test_view_at_replays_history(self):
        sim, store = self.make_store()
        store.insert("M1", "a", 0.0)
        sim.run_until(5.0)
        store.insert("M2", "b", 5.0)
        assert store.view_at(0.0) == ("M1",)
        assert store.view_at(4.9) == ("M1",)
        assert store.view_at(5.0) == ("M1", "M2")
        assert store.view_at(-1.0) == ()

    def test_reorder_records_new_version(self):
        sim, store = self.make_store()
        store.insert("M1", "a", 10.0, sort_key=(10.0, "M1"))
        sim.run_until(1.0)
        store.insert("M2", "b", 5.0, sort_key=(11.0, "M2"))  # late write
        assert store.view_now() == ("M1", "M2")
        sim.run_until(2.0)
        store.reorder("M2", (5.0, "M2"))  # repair to canonical position
        assert store.view_now() == ("M2", "M1")
        assert store.view_at(1.5) == ("M1", "M2")  # history preserved

    def test_reorder_missing_or_same_key_is_noop(self):
        _sim, store = self.make_store()
        store.insert("M1", "a", 1.0, sort_key=(1.0, "M1"))
        versions_before = store.version_count
        store.reorder("ghost", (0.0,))
        store.reorder("M1", (1.0, "M1"))
        assert store.version_count == versions_before

    def test_same_instant_mutations_collapse(self):
        _sim, store = self.make_store()
        store.insert("M1", "a", 0.0)
        store.insert("M2", "b", 0.0)
        assert store.version_count == 1
        assert store.view_now() == ("M1", "M2")

    def test_retention_prunes_old_entries(self):
        sim, store = self.make_store(retention=10.0)
        store.insert("old", "a", 0.0)
        sim.run_until(100.0)
        store.insert("new", "b", 100.0)
        assert not store.contains("old")
        assert store.view_now() == ("new",)

    def test_entries_sorted_by_key(self):
        _sim, store = self.make_store()
        store.insert("M2", "b", 2.0)
        store.insert("M1", "a", 1.0)
        assert [e.message_id for e in store.entries()] == ["M1", "M2"]

    def test_entry_lookup(self):
        _sim, store = self.make_store()
        store.insert("M1", "a", 1.0)
        assert store.entry("M1").author == "a"
        assert store.entry("nope") is None
