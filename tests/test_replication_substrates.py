"""Integration tests for the four replication substrates."""

import pytest

from repro.errors import ConfigurationError
from repro.net import (
    IRELAND,
    OREGON,
    TOKYO,
    VIRGINIA,
    FaultInjector,
    JitterParams,
    LatencyModel,
    Network,
    paper_topology,
)
from repro.replication import (
    EventualGroup,
    EventualParams,
    GeoGroupStore,
    GroupStoreParams,
    PrimaryBackupGroup,
    RankedFeedParams,
    RankedFeedStore,
)
from repro.sim import RandomSource, Simulator


def make_world(seed=1, faults=None):
    sim = Simulator()
    topo = paper_topology()
    for host, region in (
        ("dc-us", OREGON),
        ("dc-eu", IRELAND),
        ("primary", VIRGINIA),
        ("backup-1", OREGON),
        ("backup-2", IRELAND),
        ("follower", TOKYO),
    ):
        topo.place_host(host, region)
    rng = RandomSource(seed=seed)
    net = Network(sim, LatencyModel(topo, rng.child("net"),
                                    JitterParams(sigma=0.1)),
                  faults=faults)
    return sim, net, rng


class TestPrimaryBackup:
    def test_write_acks_after_all_backups_apply(self):
        sim, net, _rng = make_world()
        group = PrimaryBackupGroup(sim, net, "primary",
                                   ["backup-1", "backup-2"])
        done = group.write("alice", "M1")
        acked_at = []
        done.add_callback(lambda f: acked_at.append(sim.now))
        sim.run_until(5.0)
        assert done.done and not done.failed
        # The ack cannot beat the slowest backup RTT (~136ms to Oregon,
        # ~172ms to Ireland from Virginia).
        assert acked_at[0] >= 0.150
        assert group.read() == ("M1",)
        assert group.read_backup("backup-1") == ("M1",)
        assert group.read_backup("backup-2") == ("M1",)

    def test_reads_are_totally_ordered(self):
        sim, net, _rng = make_world()
        group = PrimaryBackupGroup(sim, net, "primary", ["backup-1"])
        group.write("alice", "M1")
        sim.run_until(1.0)
        group.write("bob", "M2")
        sim.run_until(2.0)
        assert group.read() == ("M1", "M2")

    def test_primary_cannot_be_backup(self):
        sim, net, _rng = make_world()
        with pytest.raises(ConfigurationError):
            PrimaryBackupGroup(sim, net, "primary", ["primary"])

    def test_no_backups_acks_immediately(self):
        sim, net, _rng = make_world()
        group = PrimaryBackupGroup(sim, net, "primary", [])
        done = group.write("alice", "M1")
        sim.run_until(0.001)
        assert done.value == pytest.approx(0.0)


class TestEventualGroup:
    def make_group(self, seed=2, faults=None, **overrides):
        sim, net, rng = make_world(seed=seed, faults=faults)
        params = EventualParams(**overrides)
        group = EventualGroup(sim, net, rng.child("gplus"), params,
                              ["dc-us", "dc-eu"])
        group.set_home("oregon", "dc-us")
        group.set_home("tokyo", "dc-us")
        group.set_home("ireland", "dc-eu")
        return sim, group

    def test_local_write_visible_at_home_dc(self):
        sim, group = self.make_group(backend_lag_prob=0.0)
        group.write("oregon", "M1")
        assert group.read("oregon") == ("M1",)

    def test_remote_write_arrives_after_replication_delay(self):
        sim, group = self.make_group(backend_lag_prob=0.0)
        group.write("oregon", "M1")
        assert group.read("ireland") == ()
        sim.run_until(30.0)
        assert group.read("ireland") == ("M1",)

    def test_same_dc_clients_share_order(self):
        sim, group = self.make_group(backend_lag_prob=0.0)
        group.write("oregon", "M1")
        sim.run_until(0.1)
        group.write("tokyo", "M2")
        sim.run_until(0.2)
        assert group.read("oregon") == group.read("tokyo") == ("M1", "M2")

    def test_late_write_appears_at_tail_then_repairs(self):
        sim, group = self.make_group(
            backend_lag_prob=0.0,
            tail_insert_prob=1.0,     # force the slow path
            repair_delay_mean=30.0,
        )
        # M1 written in EU at t=0; M2 written in US at t=0.05 (after
        # M1's origin but before M1's replica arrives).  M1 reaches the
        # US late and must first appear after M2 (tail), then move
        # before it once repaired.
        group.write("ireland", "M1")
        sim.run_until(0.05)
        group.write("oregon", "M2")
        # Wait until M1 is ingested in the US but (almost surely) not
        # yet repaired.
        deadline = 60.0
        while sim.now < deadline:
            sim.run_until(sim.now + 0.5)
            if "M1" in group.read("oregon"):
                break
        view = group.read("oregon")
        assert view == ("M2", "M1"), "late write should appear at tail"
        sim.run_until(sim.now + 400.0)
        assert group.read("oregon") == ("M1", "M2"), (
            "repair should restore canonical timestamp order"
        )

    def test_partition_blocks_replication_until_heal(self):
        faults = FaultInjector()
        faults.partition_pair("dc-us", "dc-eu", 0.0, 50.0)
        sim, group = self.make_group(faults=faults, backend_lag_prob=0.0)
        group.write("oregon", "M1")
        sim.run_until(49.0)
        assert group.read("ireland") == ()
        # Heal: anti-entropy keeps re-offering unsent writes... local
        # outbox was flushed during the partition, so this write was
        # lost from the EU's perspective until the next write batches.
        group.write("oregon", "M2")
        sim.run_until(120.0)
        assert "M2" in group.read("ireland")

    def test_stale_backends_can_miss_recent_writes(self):
        sim, group = self.make_group(
            seed=7,
            backend_lag_prob=1.0,            # every backend lags
            backend_lag_median=5.0,
            backend_lag_sigma=0.1,
        )
        group.write("oregon", "M1")
        assert group.read("oregon") == ()    # nothing visible yet
        sim.run_until(30.0)
        assert group.read("oregon") == ("M1",)

    def test_unrouted_client_rejected(self):
        sim, group = self.make_group()
        with pytest.raises(ConfigurationError):
            group.read("mars")

    def test_needs_at_least_one_dc(self):
        sim, net, rng = make_world()
        with pytest.raises(ConfigurationError):
            EventualGroup(sim, net, rng, EventualParams(), [])


class TestGeoGroupStore:
    def make_store(self, seed=3, faults=None, **overrides):
        sim, net, rng = make_world(seed=seed, faults=faults)
        params = GroupStoreParams(**overrides)
        store = GeoGroupStore(sim, net, rng.child("group"), params,
                              primary_host="primary",
                              follower_host="follower")
        store.route("oregon", to_follower=False)
        store.route("ireland", to_follower=False)
        store.route("tokyo", to_follower=True)
        return sim, store

    def test_write_visible_locally_once_acked(self):
        sim, store = self.make_store(stale_read_prob=0.0)
        ack = store.write("tokyo", "M1")
        assert store.read("tokyo") == ()  # not yet committed
        sim.run_until(5.0)
        assert ack.done and not ack.failed
        assert store.read("tokyo") == ("M1",)

    def test_commit_visibility_is_simultaneous_at_both_replicas(self):
        sim, store = self.make_store(stale_read_prob=0.0,
                                     lag_spike_prob=0.0,
                                     commit_delay=0.3)
        store.write("oregon", "M1")
        # Just before the commit instant: visible nowhere.
        sim.run_until(0.29)
        assert store.read("oregon") == ()
        assert store.read("tokyo") == ()
        # Just after: visible everywhere.
        sim.run_until(0.41)
        assert store.read("oregon") == ("M1",)
        assert store.read("tokyo") == ("M1",)

    def test_replication_converges_quickly(self):
        sim, store = self.make_store(stale_read_prob=0.0,
                                     lag_spike_prob=0.0)
        store.write("oregon", "M1")
        sim.run_until(5.0)
        assert store.read("tokyo") == ("M1",)

    def test_same_second_writes_observed_reversed_everywhere(self):
        sim, store = self.make_store(stale_read_prob=0.0,
                                     lag_spike_prob=0.0)
        sim.run_until(10.1)
        store.write("oregon", "M1")
        sim.run_until(10.5)          # same wall-clock second
        store.write("oregon", "M2")
        sim.run_until(15.0)
        assert store.read("oregon") == ("M2", "M1")
        assert store.read("tokyo") == ("M2", "M1")  # consistent reversal

    def test_cross_second_writes_keep_order(self):
        sim, store = self.make_store(stale_read_prob=0.0,
                                     lag_spike_prob=0.0)
        sim.run_until(10.2)
        store.write("oregon", "M1")
        sim.run_until(11.4)          # next second
        store.write("oregon", "M2")
        sim.run_until(15.0)
        assert store.read("oregon") == ("M1", "M2")

    def test_partition_diverges_then_antientropy_heals(self):
        faults = FaultInjector()
        faults.partition_pair("primary", "follower", 5.0, 60.0)
        sim, store = self.make_store(faults=faults, stale_read_prob=0.0,
                                     lag_spike_prob=0.0)
        sim.run_until(10.0)
        store.write("tokyo", "MT")
        store.write("oregon", "MO")
        sim.run_until(30.0)
        # Mid-partition: each side sees only its own write.
        assert store.read("tokyo") == ("MT",)
        assert store.read("oregon") == ("MO",)
        sim.run_until(120.0)
        # After heal, anti-entropy merges both sides into one order.
        assert set(store.read("tokyo")) == {"MT", "MO"}
        assert store.read("tokyo") == store.read("oregon")

    def test_unrouted_client_rejected(self):
        sim, store = self.make_store()
        with pytest.raises(ConfigurationError):
            store.read("mars")


class TestRankedFeed:
    def make_feed(self, seed=4, **overrides):
        sim = Simulator()
        rng = RandomSource(seed=seed)
        params = RankedFeedParams(**overrides)
        return sim, RankedFeedStore(sim, rng.child("feed"), params)

    def test_post_eventually_visible_to_reader(self):
        sim, feed = self.make_feed(drop_prob=0.0)
        feed.write("alice", "M1")
        sim.run_until(60.0)
        assert feed.read("alice") == ("M1",)

    def test_indexing_lag_hides_fresh_posts(self):
        sim, feed = self.make_feed(
            drop_prob=0.0, index_lag_median=5.0, index_lag_sigma=0.01
        )
        feed.write("alice", "M1")
        assert feed.read("alice") == ()  # own post not indexed yet
        sim.run_until(30.0)
        assert feed.read("alice") == ("M1",)

    def test_feed_size_caps_results(self):
        sim, feed = self.make_feed(drop_prob=0.0, feed_size=3,
                                   index_lag_median=0.001,
                                   index_lag_sigma=0.01)
        for i in range(6):
            feed.write("alice", f"M{i}")
        sim.run_until(10.0)
        assert len(feed.read("bob")) == 3

    def test_ranking_noise_reorders_across_epochs(self):
        sim, feed = self.make_feed(drop_prob=0.0, noise_sd=10.0,
                                   index_lag_median=0.001,
                                   index_lag_sigma=0.01,
                                   noise_period=1.0)
        for i in range(4):
            feed.write("alice", f"M{i}")
        orders = set()
        for _ in range(30):
            sim.run_until(sim.now + 1.1)  # cross an epoch boundary
            orders.add(feed.read("bob"))
        assert len(orders) > 1, "high noise must produce varying orders"

    def test_order_is_stable_within_a_noise_epoch(self):
        sim, feed = self.make_feed(drop_prob=0.0, noise_sd=10.0,
                                   index_lag_median=0.001,
                                   index_lag_sigma=0.01,
                                   noise_period=100.0)
        for i in range(4):
            feed.write("alice", f"M{i}")
        sim.run_until(10.0)
        first = feed.read("bob")
        sim.run_until(10.5)  # same epoch
        assert feed.read("bob") == first

    def test_zero_noise_orders_by_recency(self):
        sim, feed = self.make_feed(drop_prob=0.0, noise_sd=0.0,
                                   index_lag_median=0.001,
                                   index_lag_sigma=0.01)
        feed.write("alice", "M1")
        sim.run_until(2.0)
        feed.write("alice", "M2")
        sim.run_until(10.0)
        assert feed.read("bob") == ("M2", "M1")  # newest first

    def test_selection_churn_drops_posts(self):
        sim, feed = self.make_feed(drop_prob=0.5, noise_sd=0.0,
                                   index_lag_median=0.001,
                                   index_lag_sigma=0.01)
        feed.write("alice", "M1")
        sim.run_until(10.0)
        results = [feed.read("bob") for _ in range(60)]
        assert any(r == () for r in results)
        assert any(r == ("M1",) for r in results)

    def test_different_readers_get_different_selections(self):
        sim, feed = self.make_feed(drop_prob=0.3, noise_sd=5.0,
                                   index_lag_median=0.2,
                                   index_lag_sigma=1.0)
        for i in range(5):
            feed.write("alice", f"M{i}")
        sim.run_until(0.5)
        views = {feed.read(reader) for reader in
                 ("bob", "carol", "dave", "erin")}
        assert len(views) > 1
