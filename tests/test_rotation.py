"""Agent-role rotation: the paper's artifact-isolation experiment.

§V, monotonic writes: the distribution asymmetries across locations
"might be a consequence of the way that our tests are designed, as in
test 1 Ireland is the last client to issue its sequence of two write
operations, terminating the test as soon as these become visible...
This observation is supported by ... additional experiments that we
have performed, where we rotated the location of each agent."

We replicate the rotation experiment on the Facebook Feed model: the
exposure of a writer's (M_a, M_b) pair to reordering observations is
set by its *role position* in the staggered chain (earlier writers'
pairs are visible for more of the test), so rotating which location
plays which role must move the asymmetry with the role, not the
location.
"""

from collections import Counter

import pytest

from repro.core import MONOTONIC_WRITES
from repro.errors import ConfigurationError
from repro.methodology import CampaignConfig, MeasurementWorld, run_campaign


def mw_observations_by_writer(result):
    """writer-agent -> total monotonic-writes observations."""
    counts = Counter()
    for record in result.of_type("test1"):
        for obs in record.report.observations.get(MONOTONIC_WRITES, []):
            counts[obs.details["writer"]] += 1
    return counts


class TestRoleOrderValidation:
    def test_default_order_is_papers(self):
        world = MeasurementWorld("blogger", seed=1)
        assert world.agent_names == ("oregon", "tokyo", "ireland")

    def test_rotation_reorders_roles(self):
        world = MeasurementWorld(
            "blogger", seed=1,
            role_order=("ireland", "oregon", "tokyo"),
        )
        assert world.agent_names == ("ireland", "oregon", "tokyo")

    def test_invalid_rotation_rejected(self):
        with pytest.raises(ConfigurationError):
            MeasurementWorld("blogger", seed=1,
                             role_order=("oregon", "oregon", "tokyo"))
        with pytest.raises(ConfigurationError):
            MeasurementWorld("blogger", seed=1,
                             role_order=("oregon",))


class TestRotationExperiment:
    def test_first_writer_role_accumulates_most_mw_observations(self):
        """The role artifact: earlier writers' pairs are exposed longer.

        Run the same Facebook Feed campaign under the paper's order
        and under a rotation; in both, the agent holding the *first*
        writer role must accumulate more monotonic-writes observations
        (as the reordered pair) than the agent holding the *last*
        role — regardless of which location holds the role.
        """
        orders = [
            ("oregon", "tokyo", "ireland"),   # the paper's default
            ("ireland", "oregon", "tokyo"),   # rotated
        ]
        for order in orders:
            result = run_campaign("facebook_feed", CampaignConfig(
                num_tests=25, seed=17, test_types=("test1",),
                role_order=order,
            ))
            counts = mw_observations_by_writer(result)
            first_role, last_role = order[0], order[-1]
            assert counts[first_role] > counts[last_role], (
                f"role order {order}: first writer "
                f"{first_role} ({counts[first_role]} observations) "
                f"should exceed last writer {last_role} "
                f"({counts[last_role]})"
            )

    def test_artifact_follows_role_not_location(self):
        """Ireland's low count disappears once Ireland writes first."""
        default = run_campaign("facebook_feed", CampaignConfig(
            num_tests=25, seed=17, test_types=("test1",),
        ))
        rotated = run_campaign("facebook_feed", CampaignConfig(
            num_tests=25, seed=17, test_types=("test1",),
            role_order=("ireland", "oregon", "tokyo"),
        ))
        default_counts = mw_observations_by_writer(default)
        rotated_counts = mw_observations_by_writer(rotated)
        # Ireland as last writer (default) sees the fewest of its own
        # pairs observed; Ireland as first writer sees the most.
        assert default_counts["ireland"] == min(default_counts.values())
        assert rotated_counts["ireland"] == max(rotated_counts.values())
