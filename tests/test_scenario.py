"""Tests for the scenario DSL: schema validation, loading, registry.

The loader contract under test: a malformed scenario file must raise
:class:`ConfigurationError` naming the offending file and table/key —
never silently fall back to a default — and the tomllib-free fallback
parser must agree byte-for-byte with :mod:`tomllib` on every example
file (that is what the 3.10 CI leg runs on).
"""

import dataclasses
import json
from pathlib import Path

import pytest

from repro.errors import ConfigurationError
from repro.methodology.config import CampaignConfig
from repro.methodology.nemesis import (
    CompositeNemesis,
    LinkLossNemesis,
    PeriodicPartitionNemesis,
)
from repro.scenario import (
    SCHEMA_VERSION,
    CalibrationSpec,
    NemesisSpec,
    PolicySpec,
    ScenarioSpec,
    ServiceSpec,
    WorkloadSpec,
    forget_scenario,
    get_scenario,
    load_scenario,
    load_scenarios,
    parse_scenario_toml,
    register_scenario,
    registered_scenarios,
    scenario_config,
    scenario_from_mapping,
    scenario_nemesis,
    scenario_objective,
    scenario_params,
    scenario_plan,
    scenario_space,
)

try:
    import tomllib
except ModuleNotFoundError:  # pragma: no cover - 3.10 leg
    tomllib = None

EXAMPLES = sorted(
    (Path(__file__).parent.parent / "examples" / "scenarios").glob(
        "*.toml"
    )
)

MINIMAL_GOSSIP = """\
[scenario]
schema_version = 1
name = "probe"

[service]
archetype = "gossip"
regions = ["oregon", "tokyo"]
"""


def gossip_spec(**overrides) -> ScenarioSpec:
    kwargs = {
        "name": "probe",
        "service": ServiceSpec(archetype="gossip",
                               regions=("oregon", "tokyo")),
    }
    kwargs.update(overrides)
    return ScenarioSpec(**kwargs)


class TestSchema:
    def test_minimal_specs_validate(self):
        spec = gossip_spec()
        assert spec.version == SCHEMA_VERSION
        assert spec.policy is None
        builtin = ScenarioSpec(
            name="my_blogger",
            service=ServiceSpec(archetype="builtin", base="blogger"),
        )
        assert builtin.service.base == "blogger"

    def test_digest_is_content_addressed(self):
        assert gossip_spec().digest() == gossip_spec().digest()
        other = gossip_spec(description="changed")
        assert other.digest() != gossip_spec().digest()

    def test_version_skew_is_rejected(self):
        with pytest.raises(ConfigurationError,
                           match="schema_version"):
            gossip_spec(version=SCHEMA_VERSION + 1)

    @pytest.mark.parametrize("name", ["", "2fast", "Probe", "a-b"])
    def test_bad_names_are_rejected(self, name):
        with pytest.raises(ConfigurationError, match="scenario.name"):
            gossip_spec(name=name)

    def test_name_may_not_shadow_builtin_service(self):
        with pytest.raises(ConfigurationError, match="collides"):
            gossip_spec(name="blogger")
        # ... unless it is that builtin, expressed as a scenario.
        spec = ScenarioSpec(
            name="blogger",
            service=ServiceSpec(archetype="builtin", base="blogger"),
        )
        assert spec.name == "blogger"

    def test_unknown_archetype(self):
        with pytest.raises(ConfigurationError, match="archetype"):
            ServiceSpec(archetype="paxos")

    def test_builtin_needs_known_base(self):
        with pytest.raises(ConfigurationError, match="service.base"):
            ServiceSpec(archetype="builtin", base="myspace")

    def test_builtin_rejects_regions(self):
        with pytest.raises(ConfigurationError, match="regions"):
            ServiceSpec(archetype="builtin", base="blogger",
                        regions=("oregon",))

    def test_engine_rejects_base(self):
        with pytest.raises(ConfigurationError, match="service.base"):
            ServiceSpec(archetype="gossip", base="blogger")

    def test_engine_rejects_unknown_regions(self):
        with pytest.raises(ConfigurationError, match="unknown"):
            ServiceSpec(archetype="gossip", regions=("mars",))

    def test_engine_rejects_duplicate_regions(self):
        with pytest.raises(ConfigurationError, match="duplicates"):
            ServiceSpec(archetype="gossip",
                        regions=("oregon", "oregon"))

    def test_duplicate_param_paths(self):
        with pytest.raises(ConfigurationError, match="repeats"):
            ServiceSpec(archetype="gossip",
                        params=(("store.fanout", 1),
                                ("store.fanout", 2)))

    def test_nemesis_validation(self):
        with pytest.raises(ConfigurationError, match="kind"):
            NemesisSpec(kind="asteroid")
        with pytest.raises(ConfigurationError, match="host_a"):
            NemesisSpec(kind="periodic_partition", host_a="a")
        with pytest.raises(ConfigurationError, match="differ"):
            NemesisSpec(kind="periodic_partition", host_a="a",
                        host_b="a")
        with pytest.raises(ConfigurationError, match="period"):
            NemesisSpec(kind="periodic_partition", host_a="a",
                        host_b="b", period=0)
        with pytest.raises(ConfigurationError, match="link"):
            NemesisSpec(kind="link_loss")
        with pytest.raises(ConfigurationError, match="probability"):
            NemesisSpec(kind="link_loss", links=(("a", "b"),),
                        probability=1.5)

    def test_workload_validation(self):
        with pytest.raises(ConfigurationError, match="num_tests"):
            WorkloadSpec(num_tests=0)
        with pytest.raises(ConfigurationError, match="test_types"):
            WorkloadSpec(test_types=("test3",))
        with pytest.raises(ConfigurationError, match="gap"):
            WorkloadSpec(inter_test_gap=-1.0)
        with pytest.raises(ConfigurationError, match="test1"):
            WorkloadSpec(test1=(("warp_speed", 9),))

    def test_calibration_validation(self):
        with pytest.raises(ConfigurationError, match="repeats"):
            CalibrationSpec(axes=(("p", (1,)), ("p", (2,))))
        with pytest.raises(ConfigurationError, match="non-empty"):
            CalibrationSpec(axes=(("p", ()),))
        with pytest.raises(ConfigurationError, match="anomaly"):
            CalibrationSpec(prevalence=(("stale_everything", 0.5),))
        with pytest.raises(ConfigurationError, match="fraction"):
            CalibrationSpec(prevalence=(("read_your_writes", 1.5),))


class TestLoader:
    def write(self, tmp_path, text, name="scenario.toml"):
        path = tmp_path / name
        path.write_text(text, encoding="utf-8")
        return path

    def test_loads_minimal_file(self, tmp_path):
        spec = load_scenario(self.write(tmp_path, MINIMAL_GOSSIP))
        assert spec.name == "probe"
        assert spec.service.regions == ("oregon", "tokyo")

    def test_error_names_the_file(self, tmp_path):
        path = self.write(tmp_path, MINIMAL_GOSSIP.replace(
            "schema_version = 1", "schema_version = 99"))
        with pytest.raises(ConfigurationError) as err:
            load_scenario(path)
        assert str(path) in str(err.value)
        assert "99" in str(err.value)

    def test_unknown_top_level_table(self, tmp_path):
        path = self.write(tmp_path,
                          MINIMAL_GOSSIP + "\n[chaos]\nlevel = 9\n")
        with pytest.raises(ConfigurationError,
                           match=r"unknown key \[top level\].chaos"):
            load_scenario(path)

    def test_unknown_key_cites_table_and_key(self, tmp_path):
        path = self.write(tmp_path, MINIMAL_GOSSIP.replace(
            'archetype = "gossip"',
            'archetype = "gossip"\nflavour = "mild"'))
        with pytest.raises(ConfigurationError,
                           match=r"unknown key \[service\].flavour"):
            load_scenario(path)

    def test_missing_required_keys(self, tmp_path):
        with pytest.raises(ConfigurationError,
                           match=r"\[scenario\].name is required"):
            load_scenario(self.write(
                tmp_path, MINIMAL_GOSSIP.replace('name = "probe"\n',
                                                 "")))
        with pytest.raises(ConfigurationError,
                           match=r"missing \[service\]"):
            load_scenario(self.write(
                tmp_path,
                '[scenario]\nschema_version = 1\nname = "probe"\n'))

    def test_wrong_types_are_rejected(self, tmp_path):
        path = self.write(tmp_path, MINIMAL_GOSSIP.replace(
            'name = "probe"', "name = 7"))
        with pytest.raises(ConfigurationError, match="wrong type"):
            load_scenario(path)
        # bool is an int subclass; numeric fields must still reject it.
        path = self.write(tmp_path, MINIMAL_GOSSIP +
                          "\n[workload]\nnum_tests = true\n")
        with pytest.raises(ConfigurationError, match="wrong type"):
            load_scenario(path)

    def test_out_of_range_values_cite_the_file(self, tmp_path):
        path = self.write(tmp_path, MINIMAL_GOSSIP +
                          "\n[workload]\nnum_tests = 0\n")
        with pytest.raises(ConfigurationError) as err:
            load_scenario(path)
        assert str(path) in str(err.value)
        assert "num_tests" in str(err.value)

    def test_explicit_zero_probability_survives(self, tmp_path):
        path = self.write(tmp_path, MINIMAL_GOSSIP + (
            '\n[[nemesis]]\nkind = "link_loss"\n'
            'links = [["a", "b"]]\nprobability = 0.0\n'))
        spec = load_scenario(path)
        assert spec.nemeses[0].probability == 0.0

    def test_duplicate_scenario_names_across_files(self, tmp_path):
        first = self.write(tmp_path, MINIMAL_GOSSIP, "one.toml")
        second = self.write(tmp_path, MINIMAL_GOSSIP, "two.toml")
        with pytest.raises(ConfigurationError) as err:
            load_scenarios([first, second])
        assert "one.toml" in str(err.value)
        assert "two.toml" in str(err.value)

    def test_json_scenarios_load_too(self, tmp_path):
        data = {
            "scenario": {"schema_version": 1, "name": "probe"},
            "service": {"archetype": "gossip",
                        "regions": ["oregon", "tokyo"]},
        }
        path = tmp_path / "scenario.json"
        path.write_text(json.dumps(data), encoding="utf-8")
        toml_spec = load_scenario(
            self.write(tmp_path, MINIMAL_GOSSIP))
        assert load_scenario(path) == toml_spec

    def test_key_order_does_not_change_the_digest(self):
        base = {
            "scenario": {"schema_version": 1, "name": "probe"},
            "service": {
                "archetype": "gossip",
                "regions": ["oregon", "tokyo"],
                "params": {"store.fanout": 2,
                           "store.read_lb_prob": 0.1},
            },
        }
        flipped = json.loads(json.dumps(base))
        flipped["service"]["params"] = {
            "store.read_lb_prob": 0.1, "store.fanout": 2,
        }
        assert scenario_from_mapping(base, "a").digest() == \
            scenario_from_mapping(flipped, "b").digest()


class TestFallbackParser:
    @pytest.mark.parametrize(
        "path", EXAMPLES, ids=[p.stem for p in EXAMPLES])
    def test_matches_tomllib_on_every_example(self, path):
        if tomllib is None:  # pragma: no cover - 3.10 leg
            pytest.skip("tomllib missing; the fallback is the parser")
        text = path.read_text(encoding="utf-8")
        assert parse_scenario_toml(text, str(path)) == \
            tomllib.loads(text)

    @pytest.mark.parametrize(
        "path", EXAMPLES, ids=[p.stem for p in EXAMPLES])
    def test_examples_validate_under_the_fallback(self, path):
        data = parse_scenario_toml(
            path.read_text(encoding="utf-8"), str(path))
        spec = scenario_from_mapping(data, str(path))
        assert spec.name == path.stem

    def test_parse_errors_carry_line_numbers(self):
        with pytest.raises(ConfigurationError, match="f.toml:2"):
            parse_scenario_toml("[scenario]\nname\n", "f.toml")
        with pytest.raises(ConfigurationError, match="duplicate"):
            parse_scenario_toml('[s]\na = 1\na = 2\n', "f.toml")
        with pytest.raises(ConfigurationError, match="array"):
            parse_scenario_toml('[s]\na = [1, 2\n', "f.toml")


class TestRegistry:
    @pytest.fixture(autouse=True)
    def clean(self):
        yield
        forget_scenario("probe")

    def test_register_and_resolve(self):
        spec = register_scenario(gossip_spec())
        assert get_scenario("probe") is spec
        assert "probe" in registered_scenarios()
        # Same content re-registers silently; new content must be
        # explicit about replacing.
        register_scenario(gossip_spec())
        with pytest.raises(ConfigurationError, match="replace"):
            register_scenario(gossip_spec(description="v2"))
        register_scenario(gossip_spec(description="v2"),
                          replace=True)
        assert get_scenario("probe").description == "v2"

    def test_unknown_name(self):
        with pytest.raises(ConfigurationError, match="registered"):
            get_scenario("nothing_here")

    def test_params_stay_none_without_overrides(self):
        # None keeps builtin scenarios byte-equivalent to plain runs.
        assert scenario_params(gossip_spec()) is None

    def test_param_overrides_replace_nested_fields(self):
        spec = gossip_spec(service=ServiceSpec(
            archetype="gossip", regions=("oregon",),
            params=(("store.fanout", 3),
                    ("rate_limit.max_requests", 5)),
        ))
        params = scenario_params(spec)
        assert params.store.fanout == 3
        assert params.rate_limit.max_requests == 5

    def test_unknown_param_path_cites_the_path(self):
        spec = gossip_spec(service=ServiceSpec(
            archetype="gossip", regions=("oregon",),
            params=(("store.viscosity", 3),),
        ))
        with pytest.raises(
                ConfigurationError,
                match=r"service\.params\.store\.viscosity"):
            scenario_params(spec)

    def test_config_lowering_applies_workload(self):
        spec = gossip_spec(
            workload=WorkloadSpec(num_tests=7,
                                  test_types=("test1",),
                                  mask_sessions=True),
            policy=PolicySpec(retry_attempts=1),
        )
        config = scenario_config(spec, CampaignConfig(seed=9))
        assert config.seed == 9
        assert config.num_tests == 7
        assert config.test_types == ("test1",)
        assert config.mask_sessions is True
        assert config.scenario is spec
        assert config.client_policy == PolicySpec(retry_attempts=1)

    def test_explicit_base_params_win(self):
        # Calibrate sweeps a scenario by pinning service_params on the
        # base config; the scenario's own overrides must not stomp it.
        spec = gossip_spec(service=ServiceSpec(
            archetype="gossip", regions=("oregon",),
            params=(("store.fanout", 3),),
        ))
        pinned = scenario_params(spec)
        pinned = dataclasses.replace(
            pinned, store=dataclasses.replace(pinned.store, fanout=8))
        config = scenario_config(
            spec, CampaignConfig(service_params=pinned))
        assert config.service_params.store.fanout == 8

    def test_workload_overrides_reach_the_plan(self):
        spec = gossip_spec(workload=WorkloadSpec(
            test2=(("fast_reads", 5),)))
        plan = scenario_plan(spec)
        assert plan.test2.fast_reads == 5

    def test_nemesis_instances_are_fresh_per_campaign(self):
        spec = gossip_spec(nemeses=(
            NemesisSpec(kind="periodic_partition", host_a="a",
                        host_b="b", period=3),
            NemesisSpec(kind="link_loss", links=(("a", "b"),),
                        probability=0.2),
        ))
        first = scenario_nemesis(spec)
        second = scenario_nemesis(spec)
        assert isinstance(first, CompositeNemesis)
        assert isinstance(first.parts[0], PeriodicPartitionNemesis)
        assert isinstance(first.parts[1], LinkLossNemesis)
        # Nemeses carry arming state; instances must not be shared.
        assert first is not second
        assert first.parts[0] is not second.parts[0]
        assert scenario_nemesis(gossip_spec()) is None

    def test_calibrate_hooks_require_declarations(self):
        with pytest.raises(ConfigurationError, match="axes"):
            scenario_space(gossip_spec())
        with pytest.raises(ConfigurationError, match="prevalence"):
            scenario_objective(gossip_spec())

    def test_declared_space_and_objective(self):
        spec = gossip_spec(calibration=CalibrationSpec(
            axes=(("store.fanout", (1, 2)),),
            prevalence=(("read_your_writes", 0.5),),
        ))
        space = scenario_space(spec)
        assert space.service == "probe"
        assert [axis.path for axis in space.axes] == ["store.fanout"]
        objective = scenario_objective(spec)
        assert objective.targets.service == "probe"
        assert objective.targets.prevalence == {
            "read_your_writes": 0.5,
        }
