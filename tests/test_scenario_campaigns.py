"""End-to-end scenario campaigns: equivalence, goldens, fleet parity.

Three load-bearing properties of the scenario DSL:

* **equivalence** — a builtin-archetype scenario file is byte-for-byte
  the service it names: identical ``campaign_signature`` to a plain
  ``run_campaign`` at the same config (the scenario spec rides in the
  config but never enters record bytes);
* **golden signatures** — the gossip engine and the resilience-policy
  layer are deterministic, and the policy measurably shifts anomaly
  prevalence versus its policy-free twin;
* **fleet parity** — scenarios ride pickled shard configs, so a
  parallel fleet over a scenario merges bit-identical to the serial
  path, and the scenario's content (not just its name) binds
  ``spec_hash``.
"""

import dataclasses
from pathlib import Path

import pytest

from repro.fleet import FleetSpec, run_fleet
from repro.fleet.digest import campaign_signature
from repro.methodology import CampaignConfig, run_campaign
from repro.methodology.nemesis import CompositeNemesis
from repro.scenario import (
    forget_scenario,
    load_scenario,
    register_scenario,
    scenario_campaign,
    scenario_nemesis,
)

SCENARIO_DIR = Path(__file__).parent.parent / "examples" / "scenarios"

BUILTIN_FILES = ("googleplus", "blogger", "facebook_feed",
                 "facebook_group", "quorum_kv")

GOSSIP_MESH_SIGNATURE = (
    "b557c0aae4958a0b43de50dfbcb864e6441cfb85b29515ff25b90314c144b2d0"
)
RESILIENT_SIGNATURE = (
    "a1392403272cfa366cc6a44b27200b840c1902a84dddba51383c2e139d4a8c87"
)
POLICY_FREE_SIGNATURE = (
    "a6a24a9469ade97ca2e8bccb20607356cda8bbe3ff09724f7aebddc1dc1e7fc5"
)


def load(stem):
    return load_scenario(SCENARIO_DIR / f"{stem}.toml")


class TestBuiltinEquivalence:
    @pytest.mark.parametrize("stem", BUILTIN_FILES)
    def test_scenario_file_equals_plain_service(self, stem):
        config = CampaignConfig(num_tests=2, seed=3)
        spec = load(stem)
        assert spec.service.archetype == "builtin"
        via_scenario = run_campaign(*scenario_campaign(spec, config))
        plain = run_campaign(spec.service.base, config)
        assert campaign_signature(via_scenario) == \
            campaign_signature(plain)


class TestGossipGolden:
    def test_mesh_campaign_signature(self):
        spec = load("gossip_mesh")
        config = CampaignConfig(num_tests=2, seed=5)
        result = run_campaign(*scenario_campaign(spec, config))
        assert len(result.records) == 4
        summary = result.summary()
        # Read load-balancing across gossip replicas produces session
        # anomalies; local-region writes keep write order intact.
        assert summary["read_your_writes"] == 1.0
        assert summary["monotonic_reads"] == 1.0
        assert summary["monotonic_writes"] == 0.0
        assert campaign_signature(result) == GOSSIP_MESH_SIGNATURE

    def test_mesh_campaign_is_deterministic(self):
        spec = load("gossip_mesh")
        config = CampaignConfig(num_tests=2, seed=11)
        first = run_campaign(*scenario_campaign(spec, config))
        second = run_campaign(*scenario_campaign(spec, config))
        assert campaign_signature(first) == \
            campaign_signature(second)

    def test_partitioned_scenario_composes_nemeses(self):
        spec = load("gossip_partitioned")
        nemesis = scenario_nemesis(spec)
        assert isinstance(nemesis, CompositeNemesis)
        assert len(nemesis.parts) == 2
        config = CampaignConfig(num_tests=3, seed=2)
        faulted = run_campaign(*scenario_campaign(spec, config))
        calm = run_campaign(*scenario_campaign(
            dataclasses.replace(spec, nemeses=()), config))
        assert campaign_signature(faulted) == campaign_signature(
            run_campaign(*scenario_campaign(spec, config)))
        assert campaign_signature(faulted) != \
            campaign_signature(calm)


class TestResiliencePolicyGolden:
    @pytest.fixture(scope="class")
    def twins(self):
        spec = load("gossip_resilient")
        config = CampaignConfig(num_tests=3, seed=5)
        with_policy = run_campaign(*scenario_campaign(spec, config))
        bare = dataclasses.replace(spec, policy=None)
        without = run_campaign(*scenario_campaign(bare, config))
        return with_policy, without

    def test_golden_signatures(self, twins):
        with_policy, without = twins
        assert campaign_signature(with_policy) == \
            RESILIENT_SIGNATURE
        assert campaign_signature(without) == POLICY_FREE_SIGNATURE

    def test_policy_shifts_anomaly_prevalence(self, twins):
        with_policy, without = twins
        policy_summary = with_policy.summary()
        bare_summary = without.summary()
        # Retrying throttled reads changes what the probe observes:
        # under the policy some sessions recover their own writes.
        assert bare_summary["read_your_writes"] == 1.0
        assert policy_summary["read_your_writes"] < 1.0
        assert bare_summary["monotonic_reads"] == 1.0
        assert policy_summary["monotonic_reads"] < 1.0
        assert policy_summary != bare_summary


class TestScenarioFleets:
    @pytest.fixture(autouse=True)
    def registered(self):
        register_scenario(load("gossip_mesh"), replace=True)
        yield
        forget_scenario("gossip_mesh")

    def fleet_spec(self, **kwargs):
        kwargs.setdefault("services", ("blogger", "gossip_mesh"))
        kwargs.setdefault("seeds", (0, 7))
        kwargs.setdefault(
            "base_config",
            CampaignConfig(num_tests=2, test_types=("test1",)))
        return FleetSpec(**kwargs)

    def test_parallel_fleet_matches_serial(self):
        serial = run_fleet(self.fleet_spec(), jobs=1)
        parallel = run_fleet(self.fleet_spec(), jobs=4)
        assert parallel.signature() == serial.signature()

    def test_spec_hash_binds_scenario_content(self):
        baseline = self.fleet_spec().spec_hash()
        assert self.fleet_spec().spec_hash() == baseline
        spec = load("gossip_mesh")
        tweaked = dataclasses.replace(
            spec, service=dataclasses.replace(
                spec.service,
                params=(("store.fanout", 2),
                        ("store.gossip_interval", 0.25),
                        ("store.read_lb_prob", 0.3))))
        register_scenario(tweaked, replace=True)
        assert self.fleet_spec().spec_hash() != baseline

    def test_unregistered_scenario_name_is_an_error(self):
        forget_scenario("gossip_mesh")
        with pytest.raises(Exception, match="unknown services"):
            self.fleet_spec()
        register_scenario(load("gossip_mesh"), replace=True)


class TestScenarioCli:
    def test_fleet_scenario_parallel_matches_serial(self, capsys):
        from repro.cli import main

        path = str(SCENARIO_DIR / "gossip_mesh.toml")
        argv = ["fleet", "--scenario", path, "--tests", "2",
                "--seeds", "1,2", "--quiet"]
        assert main(argv) == 0
        serial = capsys.readouterr().out
        assert main(argv + ["--jobs", "4"]) == 0
        assert capsys.readouterr().out == serial
        assert "gossip_mesh" in serial
