"""Tests for the campaign service: hunts, scheduling, and the API.

The load-bearing assertions mirror the fleet suite's: a hunt executed
through the service — whatever the pool width, stealing policy, or
pause/resume history — must produce an artifact store and merged
``fleet_signature`` byte-identical to a direct ``run_fleet`` of the
same spec.  Around that sit the lifecycle state machine, the
digest-validated hunt store, bounded crash retry, and the HTTP-shaped
API surface (auth, pagination, event-feed cursors).

Worker-failure runners are module-level (they cross the process
boundary) and coordinate through marker files in a directory passed
via an environment variable, as in ``test_fleet``.
"""

import os
from pathlib import Path

import pytest

from repro.errors import (
    ConfigurationError,
    FleetError,
    InvalidRequestError,
    NotFoundError,
)
from repro.fleet import FleetSpec, run_fleet
from repro.fleet.executor import execute_shard
from repro.methodology import CampaignConfig
from repro.serve import (
    ACTIVE_STATUSES,
    TERMINAL_STATUSES,
    CampaignService,
    HuntServer,
    HuntSpec,
    HuntState,
    HuntStore,
    check_transition,
    follow_events,
)

MARKER_ENV = "REPRO_SERVE_TEST_MARKERS"

TINY = dict(num_tests=1, test_types=("test1",))


def _marker(job) -> Path:
    return Path(os.environ[MARKER_ENV]) / job.shard_id


def crash_once_runner(job):
    """Die without a result on each shard's first attempt."""
    marker = _marker(job)
    if not marker.exists():
        marker.write_text("crashed")
        os._exit(3)
    return execute_shard(job)


def crash_blogger_runner(job):
    """Every attempt at a blogger shard dies; others run normally."""
    if job.service == "blogger":
        os._exit(3)
    return execute_shard(job)


def failing_runner(job):
    raise ValueError("deterministic campaign failure")


@pytest.fixture
def markers(tmp_path, monkeypatch):
    marker_dir = tmp_path / "markers"
    marker_dir.mkdir()
    monkeypatch.setenv(MARKER_ENV, str(marker_dir))
    return marker_dir


class TestHuntModel:
    def test_lifecycle_tables_are_consistent(self):
        assert ACTIVE_STATUSES | TERMINAL_STATUSES == {
            "queued", "running", "paused", "done", "cancelled",
            "failed",
        }
        check_transition("queued", "running")
        check_transition("running", "paused")
        check_transition("paused", "queued")
        for terminal in TERMINAL_STATUSES:
            with pytest.raises(InvalidRequestError):
                check_transition(terminal, "running")
        with pytest.raises(InvalidRequestError):
            check_transition("queued", "done")  # must pass running

    def test_spec_round_trip_and_fleet_spec(self):
        spec = HuntSpec(services=("blogger", "quorum_kv"),
                        seeds=(1, 2), num_tests=5,
                        test_types=("test1",))
        assert HuntSpec.from_dict(spec.to_dict()) == spec
        fleet = spec.fleet_spec()
        assert isinstance(fleet, FleetSpec)
        assert fleet.total_shards == spec.total_shards == 4
        assert fleet.base_config.num_tests == 5

    def test_spec_validation(self):
        with pytest.raises(ConfigurationError):
            HuntSpec(services=())
        with pytest.raises(ConfigurationError):
            HuntSpec(services=("blogger",), num_tests=0)
        with pytest.raises(InvalidRequestError):
            HuntSpec.from_dict({})
        with pytest.raises(InvalidRequestError):
            HuntSpec.from_dict({"services": "blogger"})

    def test_state_round_trip_and_advance(self):
        spec = HuntSpec(services=("blogger",), **TINY)
        state = HuntState(hunt_id="h0000", spec=spec,
                          shards_total=1, owner="alice")
        assert HuntState.from_dict(state.to_dict()) == state
        running = state.advance("running")
        assert running.status == "running"
        assert not running.is_terminal
        done = running.advance("done", shards_done=1,
                               fleet_signature="f" * 64)
        assert done.is_terminal
        assert done.shards_remaining == 0
        with pytest.raises(InvalidRequestError):
            done.advance("running")
        with pytest.raises(ConfigurationError):
            HuntState(hunt_id="x", spec=spec, status="bogus")


class TestHuntStore:
    def test_save_load_round_trip(self, tmp_path):
        store = HuntStore(tmp_path)
        spec = HuntSpec(services=("blogger",), **TINY)
        state = HuntState(hunt_id="h0000", spec=spec, shards_total=1)
        store.save(state)
        assert store.exists("h0000")
        assert store.load("h0000") == state
        assert store.hunt_ids() == ["h0000"]
        assert store.next_seq() == 1

    def test_load_missing_hunt_raises(self, tmp_path):
        with pytest.raises(NotFoundError):
            HuntStore(tmp_path).load("h9999")

    def test_corrupt_state_fails_digest_validation(self, tmp_path):
        store = HuntStore(tmp_path)
        spec = HuntSpec(services=("blogger",), **TINY)
        store.save(HuntState(hunt_id="h0000", spec=spec))
        path = store.state_path("h0000")
        path.write_text(
            path.read_text().replace('"queued"', '"running"')
        )
        with pytest.raises(FleetError, match="digest"):
            store.load("h0000")

    def test_event_seq_is_monotonic_and_cursorable(self, tmp_path):
        store = HuntStore(tmp_path)
        spec = HuntSpec(services=("blogger",), **TINY)
        store.save(HuntState(hunt_id="h0000", spec=spec))
        for index in range(4):
            record = store.append_event("h0000", "tick", index=index)
            assert record["seq"] == index
        tail = list(store.events("h0000", after=1))
        assert [record["seq"] for record in tail] == [2, 3]
        assert [record["index"] for record in tail] == [2, 3]

    def test_artifact_bytes_is_traversal_safe(self, tmp_path):
        store = HuntStore(tmp_path)
        spec = HuntSpec(services=("blogger",), **TINY)
        store.save(HuntState(hunt_id="h0000", spec=spec))
        (tmp_path / "secret.txt").write_text("nope")
        with pytest.raises(NotFoundError):
            store.artifact_bytes("h0000", "../../secret.txt")


class TestServiceLifecycle:
    def test_submit_runs_to_done_and_matches_direct_fleet(
            self, tmp_path):
        service = CampaignService(tmp_path / "serve")
        spec = HuntSpec(services=("blogger",), seeds=(1, 2), **TINY)
        state = service.submit(spec, owner="alice")
        assert state.status == "queued"
        assert state.shards_total == 2
        outcomes = service.run_pending()
        assert [outcome.status for outcome in outcomes] == ["done"]

        direct = run_fleet(spec.fleet_spec(), jobs=1,
                           out_dir=tmp_path / "direct")
        final = service.hunt(state.hunt_id)
        assert final.status == "done"
        assert final.shards_done == 2
        assert final.fleet_signature == direct.signature()

        # Byte-identical artifact stores, file for file.
        direct_root = tmp_path / "direct"
        names = service.artifact_names(state.hunt_id)
        direct_names = sorted(
            str(path.relative_to(direct_root))
            for path in direct_root.rglob("*") if path.is_file()
        )
        assert names == direct_names
        for name in names:
            assert service.artifact_bytes(state.hunt_id, name) == \
                (direct_root / name).read_bytes()

    def test_hunt_obs_matches_the_offline_merge(self, tmp_path):
        from repro.obs import merge_obs_snapshots

        service = CampaignService(tmp_path)
        spec = HuntSpec(services=("blogger",), seeds=(1, 2), **TINY)
        state = service.submit(spec)
        # Pre-pass: no artifact store yet, so the merge is empty.
        before = service.hunt_obs(state.hunt_id)
        assert before["shards"] == [] and before["missing"] == []
        service.run_pending()

        served = service.hunt_obs(state.hunt_id)
        artifact_store = service.store.artifact_store(state.hunt_id)
        jobs = spec.fleet_spec().jobs()
        offline = merge_obs_snapshots(
            artifact_store.load_shard_obs(job.shard_id)
            for job in jobs
        )
        assert served["shards"] == [job.shard_id for job in jobs]
        assert served["missing"] == []
        # Byte-identical to merging the artifact directory offline.
        assert served["snapshot"] == offline

        # A damaged obs export degrades to "missing", never an error.
        artifact_store.obs_path(jobs[0].shard_id).write_text(
            "not json", encoding="utf-8"
        )
        degraded = service.hunt_obs(state.hunt_id)
        assert degraded["missing"] == [jobs[0].shard_id]
        assert degraded["shards"] == [jobs[1].shard_id]

    def test_pause_checkpoints_and_resume_completes(self, tmp_path):
        service = CampaignService(tmp_path)
        spec = HuntSpec(services=("blogger",), seeds=(1, 2, 3), **TINY)
        hunt_id = service.submit(spec).hunt_id

        def pause_after_first(job):
            result = execute_shard(job)
            service._control[hunt_id] = "pause"
            return result

        outcomes = service.run_pending(shard_runner=pause_after_first)
        assert outcomes[0].status == "paused"
        paused = service.hunt(hunt_id)
        assert paused.status == "paused"
        assert 1 <= paused.shards_done < 3

        # Paused hunts are not runnable; a pass is a no-op.
        assert service.runnable_hunts() == []
        assert service.run_pending() == []

        executed = []

        def counting_runner(job):
            executed.append(job.shard_id)
            return execute_shard(job)

        service.resume(hunt_id)
        outcomes = service.run_pending(shard_runner=counting_runner)
        assert outcomes[0].status == "done"
        final = service.hunt(hunt_id)
        assert final.shards_done == 3
        # Checkpoint/resume: completed shards were never re-run.
        assert len(executed) == 3 - paused.shards_done
        direct = run_fleet(spec.fleet_spec(), jobs=1)
        assert final.fleet_signature == direct.signature()

    def test_cancel_discards_remaining_shards(self, tmp_path):
        service = CampaignService(tmp_path)
        hunt_id = service.submit(
            HuntSpec(services=("blogger",), **TINY)
        ).hunt_id
        cancelled = service.cancel(hunt_id)
        assert cancelled.status == "cancelled"
        assert service.run_pending() == []
        with pytest.raises(InvalidRequestError):
            service.resume(hunt_id)

    def test_resume_requires_paused(self, tmp_path):
        service = CampaignService(tmp_path)
        hunt_id = service.submit(
            HuntSpec(services=("blogger",), **TINY)
        ).hunt_id
        with pytest.raises(InvalidRequestError):
            service.resume(hunt_id)

    def test_campaign_exception_fails_only_that_hunt(self, tmp_path):
        service = CampaignService(tmp_path)
        bad = service.submit(
            HuntSpec(services=("blogger",), **TINY)
        ).hunt_id
        good = service.submit(
            HuntSpec(services=("quorum_kv",), **TINY)
        ).hunt_id

        def runner(job):
            if job.service == "blogger":
                raise ValueError("deterministic campaign failure")
            return execute_shard(job)

        outcomes = {outcome.hunt_id: outcome
                    for outcome in service.run_pending(
                        shard_runner=runner)}
        assert outcomes[bad].status == "failed"
        assert "campaign failed" in outcomes[bad].error
        assert outcomes[good].status == "done"
        assert service.hunt(bad).status == "failed"
        assert service.hunt(good).fleet_signature is not None

    def test_crashed_pass_resumes_from_store(self, tmp_path):
        """A 'running' hunt left by a dead pass is picked up again."""
        service = CampaignService(tmp_path)
        spec = HuntSpec(services=("blogger",), seeds=(1, 2), **TINY)
        hunt_id = service.submit(spec).hunt_id
        # Simulate a pass that died mid-hunt: state says running, one
        # shard's artifacts are on disk.
        state = service.hunt(hunt_id)
        service.store.save(state.advance("running"))
        artifact_store = service.store.artifact_store(hunt_id)
        fleet_spec = spec.fleet_spec()
        artifact_store.initialize(fleet_spec)
        first_job = fleet_spec.jobs()[0]
        result = execute_shard(first_job)
        from repro.fleet.executor import _records_to_jsonable
        artifact_store.write_shard(
            first_job, _records_to_jsonable(result), obs=result.obs)

        assert [s.hunt_id for s in service.runnable_hunts()] == \
            [hunt_id]
        outcomes = service.run_pending()
        assert outcomes[0].status == "done"
        assert outcomes[0].skipped == (first_job.shard_id,)
        direct = run_fleet(spec.fleet_spec(), jobs=1)
        assert service.hunt(hunt_id).fleet_signature == \
            direct.signature()


class TestStreamingHunts:
    def _checked_events(self, service, hunt_id):
        return [record for record in service.events(hunt_id)
                if record["event"] == "test.checked"]

    def test_stream_hunt_feeds_window_verdicts(self, tmp_path):
        spec = HuntSpec(services=("blogger",), seeds=(1,),
                        stream=True, **TINY)
        service = CampaignService(tmp_path / "stream")
        state = service.submit(spec)
        outcomes = service.run_pending()
        assert [outcome.status for outcome in outcomes] == ["done"]

        checked = self._checked_events(service, state.hunt_id)
        assert len(checked) == 1  # num_tests=1, one shard
        event = checked[0]
        assert event["shard_id"] and event["test_id"]
        assert set(event["windows"]) == {"content", "order"}
        for results in event["windows"].values():
            for result in results:
                assert set(result) == {"pair", "intervals",
                                       "converged"}

        # Streaming is an execution detail: the merged signature is
        # the batch hunt's, byte for byte.
        batch = CampaignService(tmp_path / "batch")
        batch_state = batch.submit(
            HuntSpec(services=("blogger",), seeds=(1,), **TINY)
        )
        batch.run_pending()
        assert service.hunt(state.hunt_id).fleet_signature == \
            batch.hunt(batch_state.hunt_id).fleet_signature

    def test_stream_hunt_pool_path_emits_interim_verdicts(
            self, tmp_path):
        spec = HuntSpec(services=("blogger",), seeds=(1, 2),
                        stream=True, **TINY)
        service = CampaignService(tmp_path, workers=2)
        state = service.submit(spec)
        outcomes = service.run_pending()
        assert [outcome.status for outcome in outcomes] == ["done"]

        checked = self._checked_events(service, state.hunt_id)
        assert len(checked) == 2  # one per shard at num_tests=1
        assert {record["shard_id"] for record in checked} == {
            job.shard_id for job in spec.fleet_spec().jobs()
        }
        direct = run_fleet(spec.fleet_spec(), jobs=1)
        assert service.hunt(state.hunt_id).fleet_signature == \
            direct.signature()


class TestSchedulerPool:
    def test_stealing_and_sequential_agree_with_serial(self, tmp_path):
        spec = HuntSpec(services=("blogger", "quorum_kv"),
                        seeds=(1,), **TINY)
        signatures = {}
        for policy in ("stealing", "sequential"):
            service = CampaignService(tmp_path / policy, workers=2,
                                      policy=policy)
            hunt_id = service.submit(spec).hunt_id
            outcomes = service.run_pending()
            assert outcomes[0].status == "done"
            signatures[policy] = service.hunt(hunt_id).fleet_signature
        direct = run_fleet(spec.fleet_spec(), jobs=1)
        assert signatures["stealing"] == direct.signature()
        assert signatures["sequential"] == direct.signature()

    def test_concurrent_hunts_all_complete(self, tmp_path):
        service = CampaignService(tmp_path, workers=2)
        specs = [
            HuntSpec(services=("blogger",), seeds=(1, 2), **TINY),
            HuntSpec(services=("quorum_kv",), **TINY),
            HuntSpec(services=("googleplus",), **TINY),
        ]
        ids = [service.submit(spec).hunt_id for spec in specs]
        outcomes = {outcome.hunt_id: outcome
                    for outcome in service.run_pending()}
        for hunt_id, spec in zip(ids, specs):
            assert outcomes[hunt_id].status == "done"
            direct = run_fleet(spec.fleet_spec(), jobs=1)
            assert service.hunt(hunt_id).fleet_signature == \
                direct.signature()

    def test_worker_crash_is_retried(self, tmp_path, markers):
        service = CampaignService(tmp_path, workers=2)
        spec = HuntSpec(services=("blogger",), seeds=(1, 2), **TINY)
        hunt_id = service.submit(spec).hunt_id
        outcomes = service.run_pending(shard_runner=crash_once_runner)
        assert outcomes[0].status == "done"
        assert outcomes[0].retries == 2  # one crash per shard
        final = service.hunt(hunt_id)
        assert final.retries == 2
        direct = run_fleet(spec.fleet_spec(), jobs=1)
        assert final.fleet_signature == direct.signature()

    def test_retry_budget_exhaustion_fails_hunt_only(self, tmp_path):
        service = CampaignService(tmp_path, workers=2, max_retries=1)
        bad = service.submit(
            HuntSpec(services=("blogger",), **TINY)
        ).hunt_id
        good = service.submit(
            HuntSpec(services=("quorum_kv",), **TINY)
        ).hunt_id
        outcomes = {outcome.hunt_id: outcome
                    for outcome in service.run_pending(
                        shard_runner=crash_blogger_runner)}
        assert outcomes[bad].status == "failed"
        assert "attempts" in outcomes[bad].error
        assert outcomes[good].status == "done"


class TestHuntServerApi:
    @pytest.fixture
    def server(self, tmp_path):
        return HuntServer(tmp_path)

    @pytest.fixture
    def token(self, server):
        return server.issue_token()

    def _submit(self, server, token, **overrides):
        params = {"services": ["blogger"], "seeds": [1],
                  "num_tests": 1, "test_types": ["test1"]}
        params.update(overrides)
        response = server.handle("POST", "/v1/hunts", params=params,
                                 token=token)
        assert response.status == 200
        return response.body["hunt_id"]

    def test_requires_auth(self, server):
        assert server.handle("GET", "/v1/hunts").status == 401
        assert server.handle("GET", "/v1/hunts",
                             token="bogus").status == 401

    def test_unknown_route_is_404(self, server, token):
        assert server.handle("GET", "/v1/nope",
                             token=token).status == 404
        assert server.handle("GET", "/v2/hunts",
                             token=token).status == 404

    def test_unknown_hunt_is_404(self, server, token):
        response = server.handle("GET", "/v1/hunts/h9999",
                                 token=token)
        assert response.status == 404

    def test_submit_validates_params(self, server, token):
        response = server.handle("POST", "/v1/hunts",
                                 params={}, token=token)
        assert response.status == 400

    def test_submit_status_and_owner(self, server, token):
        hunt_id = self._submit(server, token)
        body = server.handle("GET", f"/v1/hunts/{hunt_id}",
                             token=token).body
        assert body["status"] == "queued"
        assert body["shards_total"] == 1
        assert server.service.hunt(hunt_id).owner == "operator"

    def test_illegal_transition_is_400(self, server, token):
        hunt_id = self._submit(server, token)
        assert server.handle(
            "POST", f"/v1/hunts/{hunt_id}/resume", token=token,
        ).status == 400

    def test_list_paginates(self, server, token):
        ids = [self._submit(server, token) for _ in range(3)]
        first = server.handle("GET", "/v1/hunts",
                              params={"limit": 2}, token=token).body
        assert [item["hunt_id"] for item in first["hunts"]] == ids[:2]
        rest = server.handle(
            "GET", "/v1/hunts",
            params={"limit": 2, "cursor": first["next_cursor"]},
            token=token,
        ).body
        assert [item["hunt_id"] for item in rest["hunts"]] == ids[2:]
        assert rest["next_cursor"] is None

    def test_results_page_through_records(self, server, token):
        hunt_id = self._submit(server, token, seeds=[1, 2])
        server.run_pending()
        page = server.handle(
            "GET", f"/v1/hunts/{hunt_id}/results",
            params={"limit": 1}, token=token,
        ).body
        assert len(page["items"]) == 1
        assert page["next_cursor"] is not None
        keys = [page["items"][0]["key"]]
        while page["next_cursor"] is not None:
            page = server.handle(
                "GET", f"/v1/hunts/{hunt_id}/results",
                params={"limit": 1, "cursor": page["next_cursor"]},
                token=token,
            ).body
            keys += [item["key"] for item in page["items"]]
        assert len(keys) == len(set(keys)) == 2
        assert all("record" in item for item in page["items"])

    def test_event_feed_cursor_and_done(self, server, token):
        hunt_id = self._submit(server, token)
        body = server.handle(
            "GET", f"/v1/hunts/{hunt_id}/events", token=token,
        ).body
        assert body["events"][0]["event"] == "hunt.submitted"
        assert not body["done"]
        server.run_pending()
        body = server.handle(
            "GET", f"/v1/hunts/{hunt_id}/events",
            params={"after": body["last_seq"]}, token=token,
        ).body
        kinds = [record["event"] for record in body["events"]]
        assert "shard.completed" in kinds
        assert kinds[-1] == "hunt.state"
        # Feed drained on a terminal hunt: done flips on the empty page.
        final = server.handle(
            "GET", f"/v1/hunts/{hunt_id}/events",
            params={"after": body["last_seq"]}, token=token,
        ).body
        assert final["events"] == []
        assert final["done"]

    def test_follow_events_drives_scheduling(self, server, token):
        hunt_id = self._submit(server, token)
        records = list(follow_events(server, hunt_id, token,
                                     poll=server.run_pending))
        kinds = [record["event"] for record in records]
        assert kinds[0] == "hunt.submitted"
        assert kinds[-1] == "hunt.state"
        assert server.service.hunt(hunt_id).status == "done"
        # seq is strictly monotonic across the whole feed.
        seqs = [record["seq"] for record in records]
        assert seqs == sorted(set(seqs))

    def test_artifact_browse_and_content(self, server, token):
        hunt_id = self._submit(server, token)
        server.run_pending()
        names = server.handle(
            "GET", f"/v1/hunts/{hunt_id}/artifacts", token=token,
        ).body["artifacts"]
        assert "manifest.json" in names
        body = server.handle(
            "GET", f"/v1/hunts/{hunt_id}/artifact",
            params={"name": "manifest.json"}, token=token,
        ).body
        assert '"spec_hash"' in body["content"]
        assert server.handle(
            "GET", f"/v1/hunts/{hunt_id}/artifact",
            params={"name": "../hunt.json"}, token=token,
        ).status == 404

    def test_rate_limit_applies_to_api(self, tmp_path):
        from repro.webapi import RateLimit

        server = HuntServer(tmp_path, rate_limit=RateLimit(
            max_requests=2, window=60.0))
        token = server.issue_token()
        assert server.handle("GET", "/v1/hunts",
                             token=token).status == 200
        assert server.handle("GET", "/v1/hunts",
                             token=token).status == 200
        throttled = server.handle("GET", "/v1/hunts", token=token)
        assert throttled.status == 429
        assert "retry_after" in throttled.body

    def test_stats_account_requests_and_statuses(self, server, token):
        server.handle("GET", "/v1/hunts", token=token)
        server.handle("GET", "/v1/nope", token=token)
        stats = server.api.stats
        assert stats.requests_total == 2
        assert stats.responses_by_status[200] == 1
        assert stats.responses_by_status[404] == 1
