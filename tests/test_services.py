"""Integration tests for the four service models through their APIs."""

import pytest

from repro.errors import ConfigurationError
from repro.net import (
    IRELAND,
    OREGON,
    TOKYO,
    JitterParams,
    LatencyModel,
    Network,
    paper_topology,
)
from repro.services import (
    SERVICE_NAMES,
    BloggerService,
    FacebookFeedParams,
    FacebookFeedService,
    FacebookGroupService,
    GooglePlusService,
    build_service,
)
from repro.replication import RankedFeedParams
from repro.sim import RandomSource, Simulator

AGENT_HOSTS = {
    "oregon": ("agent-oregon", OREGON),
    "tokyo": ("agent-tokyo", TOKYO),
    "ireland": ("agent-ireland", IRELAND),
}


def make_world(seed=1):
    sim = Simulator()
    topo = paper_topology()
    rng = RandomSource(seed=seed)
    net = Network(sim, LatencyModel(topo, rng.child("net"),
                                    JitterParams(sigma=0.1)))
    for host, region in AGENT_HOSTS.values():
        topo.place_host(host, region)
        net.attach(host)
    return sim, topo, net, rng


def await_value(sim, future, timeout=120.0):
    """Advance the simulation just until ``future`` resolves."""
    deadline = sim.now + timeout
    while not future.done and sim.now < deadline:
        sim.run_until(min(sim.now + 0.05, deadline))
    assert future.done, "future never resolved"
    return future.value


class TestBlogger:
    def test_post_then_read_sees_everything(self):
        sim, topo, net, rng = make_world()
        service = BloggerService(sim, topo, net, rng)
        oregon = service.create_session("oregon", "agent-oregon")
        tokyo = service.create_session("tokyo", "agent-tokyo")

        await_value(sim, oregon.post_message("M1"))
        await_value(sim, tokyo.post_message("M2"))
        assert await_value(sim, oregon.fetch_messages()) == ("M1", "M2")
        assert await_value(sim, tokyo.fetch_messages()) == ("M1", "M2")

    def test_each_agent_is_a_distinct_user(self):
        sim, topo, net, rng = make_world()
        service = BloggerService(sim, topo, net, rng)
        a = service.create_session("oregon", "agent-oregon")
        b = service.create_session("tokyo", "agent-tokyo")
        assert a.account.user_id != b.account.user_id
        assert a.account.token != b.account.token

    def test_write_latency_includes_sync_replication(self):
        sim, topo, net, rng = make_world()
        service = BloggerService(sim, topo, net, rng)
        session = service.create_session("oregon", "agent-oregon")
        future = session.post_message("M1")
        resolved_at = []
        future.add_callback(lambda f: resolved_at.append(sim.now))
        sim.run_until(60.0)
        # Agent->API (~68ms one-way) + processing + backup round trips.
        assert resolved_at[0] > 0.25


class TestGooglePlus:
    def test_agents_share_one_account(self):
        sim, topo, net, rng = make_world()
        service = GooglePlusService(sim, topo, net, rng)
        a = service.create_session("oregon", "agent-oregon")
        b = service.create_session("ireland", "agent-ireland")
        assert a.account is b.account

    def test_home_datacenter_mapping_matches_paper_inference(self):
        sim, topo, net, rng = make_world()
        service = GooglePlusService(sim, topo, net, rng)
        assert service.home_datacenter("agent-oregon") == "gplus-dc-us"
        assert service.home_datacenter("agent-tokyo") == "gplus-dc-us"
        assert service.home_datacenter("agent-ireland") == "gplus-dc-eu"

    def test_write_propagates_across_datacenters(self):
        sim, topo, net, rng = make_world()
        service = GooglePlusService(sim, topo, net, rng)
        oregon = service.create_session("oregon", "agent-oregon")
        ireland = service.create_session("ireland", "agent-ireland")
        await_value(sim, oregon.post_message("M1"))
        sim.run_until(sim.now + 120.0)
        view = await_value(sim, ireland.fetch_messages())
        assert view == ("M1",)

    def test_cross_dc_read_is_initially_stale(self):
        sim, topo, net, rng = make_world()
        service = GooglePlusService(sim, topo, net, rng)
        oregon = service.create_session("oregon", "agent-oregon")
        ireland = service.create_session("ireland", "agent-ireland")
        await_value(sim, oregon.post_message("M1"), timeout=2.0)
        view = await_value(sim, ireland.fetch_messages(), timeout=2.0)
        assert view == ()


class TestFacebookFeed:
    def fast_params(self):
        return FacebookFeedParams(
            ranking=RankedFeedParams(
                index_lag_median=0.01, index_lag_sigma=0.01,
                drop_prob=0.0, noise_sd=0.0,
            ),
        )

    def test_friends_see_each_others_posts(self):
        sim, topo, net, rng = make_world()
        service = FacebookFeedService(sim, topo, net, rng,
                                      params=self.fast_params())
        oregon = service.create_session("oregon", "agent-oregon")
        tokyo = service.create_session("tokyo", "agent-tokyo")
        await_value(sim, oregon.post_message("M1"))
        sim.run_until(sim.now + 10.0)
        view = await_value(sim, tokyo.fetch_messages())
        assert view == ("M1",)

    def test_session_normalizes_feed_to_chronological_order(self):
        # The API lists newest first; the session reverses it into the
        # chronological event sequence the anomaly model expects.
        sim, topo, net, rng = make_world()
        service = FacebookFeedService(sim, topo, net, rng,
                                      params=self.fast_params())
        oregon = service.create_session("oregon", "agent-oregon")
        await_value(sim, oregon.post_message("M1"))
        sim.run_until(sim.now + 5.0)
        await_value(sim, oregon.post_message("M2"))
        sim.run_until(sim.now + 10.0)
        view = await_value(sim, oregon.fetch_messages())
        assert view == ("M1", "M2")


class TestFacebookGroup:
    def test_tokyo_routes_to_follower(self):
        sim, topo, net, rng = make_world()
        service = FacebookGroupService(sim, topo, net, rng)
        tokyo = service.create_session("tokyo", "agent-tokyo")
        oregon = service.create_session("oregon", "agent-oregon")
        assert tokyo._client.service_host == "fbgroup-api-tokyo"
        assert oregon._client.service_host == "fbgroup-api-us"

    def test_group_feed_converges_across_replicas(self):
        sim, topo, net, rng = make_world()
        service = FacebookGroupService(sim, topo, net, rng)
        tokyo = service.create_session("tokyo", "agent-tokyo")
        oregon = service.create_session("oregon", "agent-oregon")
        await_value(sim, tokyo.post_message("MT"))
        await_value(sim, oregon.post_message("MO"))
        sim.run_until(sim.now + 30.0)
        view_t = await_value(sim, tokyo.fetch_messages())
        view_o = await_value(sim, oregon.fetch_messages())
        assert set(view_t) == {"MT", "MO"}
        assert view_t == view_o


class TestRegistry:
    def test_all_services_buildable(self):
        for name in SERVICE_NAMES:
            sim, topo, net, rng = make_world()
            service = build_service(name, sim, topo, net, rng)
            assert service.name == name
            session = service.create_session("oregon", "agent-oregon")
            value = await_value(sim, session.post_message("M1"))
            assert value["id"] == "M1"

    def test_unknown_service_rejected(self):
        sim, topo, net, rng = make_world()
        with pytest.raises(ConfigurationError):
            build_service("myspace", sim, topo, net, rng)
