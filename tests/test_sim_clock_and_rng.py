"""Unit + property tests for drifting clocks and random streams."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigurationError
from repro.sim import DriftingClock, PerfectClock, RandomSource, Simulator
from repro.sim.clock import make_host_clock
from repro.sim.random_source import derive_seed


class TestDriftingClock:
    def test_offset_shifts_reading(self):
        sim = Simulator()
        clock = DriftingClock(sim, offset=3.0)
        sim.run_until(10.0)
        assert clock.now() == pytest.approx(13.0)

    def test_drift_accumulates_with_time(self):
        sim = Simulator()
        clock = DriftingClock(sim, drift_ppm=100.0)  # 100 ppm fast
        sim.run_until(10_000.0)
        assert clock.now() == pytest.approx(10_001.0)

    def test_perfect_clock_reads_ground_truth(self):
        sim = Simulator()
        clock = PerfectClock(sim)
        sim.run_until(123.456)
        assert clock.now() == pytest.approx(123.456)

    def test_round_trip_conversion(self):
        sim = Simulator()
        clock = DriftingClock(sim, offset=-2.5, drift_ppm=42.0)
        true_time = 5_000.0
        assert clock.to_true(clock.to_local(true_time)) == pytest.approx(
            true_time
        )

    def test_error_at_matches_definition(self):
        sim = Simulator()
        clock = DriftingClock(sim, offset=1.0, drift_ppm=10.0)
        assert clock.error_at(0.0) == pytest.approx(1.0)
        assert clock.error_at(100_000.0) == pytest.approx(2.0)

    def test_step_adjustment(self):
        sim = Simulator()
        clock = DriftingClock(sim, offset=1.0)
        clock.step(-1.0)
        assert clock.now() == pytest.approx(0.0)

    def test_absurd_drift_rejected(self):
        sim = Simulator()
        with pytest.raises(ConfigurationError):
            DriftingClock(sim, drift_ppm=2e6)

    @given(
        offset=st.floats(-10, 10),
        drift=st.floats(-500, 500),
        true_time=st.floats(0, 1e6),
    )
    def test_conversion_is_inverse_property(self, offset, drift, true_time):
        sim = Simulator()
        clock = DriftingClock(sim, offset=offset, drift_ppm=drift)
        local = clock.to_local(true_time)
        assert clock.to_true(local) == pytest.approx(true_time, abs=1e-6)

    def test_make_host_clock_within_bounds_and_deterministic(self):
        sim = Simulator()
        rng = RandomSource(seed=1)
        clock = make_host_clock(sim, rng, "agent-oregon",
                                max_offset=2.0, max_drift_ppm=30.0)
        assert -2.0 <= clock.offset <= 2.0
        assert -30.0 <= clock.drift_ppm <= 30.0
        again = make_host_clock(Simulator(), RandomSource(seed=1),
                                "agent-oregon", max_offset=2.0,
                                max_drift_ppm=30.0)
        assert again.offset == clock.offset
        assert again.drift_ppm == clock.drift_ppm


class TestRandomSource:
    def test_same_name_returns_same_stream(self):
        rng = RandomSource(seed=7)
        assert rng.stream("a") is rng.stream("a")

    def test_streams_are_independent_of_each_other(self):
        # Draw from stream "a", then check "b" is unaffected.
        rng1 = RandomSource(seed=7)
        rng1.stream("a").random()
        b_after_a = rng1.stream("b").random()

        rng2 = RandomSource(seed=7)
        b_fresh = rng2.stream("b").random()
        assert b_after_a == b_fresh

    def test_different_seeds_differ(self):
        a = RandomSource(seed=1).stream("x").random()
        b = RandomSource(seed=2).stream("x").random()
        assert a != b

    def test_derive_seed_is_stable(self):
        assert derive_seed(42, "net") == derive_seed(42, "net")
        assert derive_seed(42, "net") != derive_seed(42, "neu")

    def test_child_namespacing(self):
        rng = RandomSource(seed=3)
        child = rng.child("google")
        # A child's stream must differ from the parent's same-named one.
        assert child.stream("lag").random() != rng.stream("lag").random()

    def test_spawn_seeds_unique(self):
        rng = RandomSource(seed=9)
        seeds = rng.spawn_seeds("agents", 10)
        assert len(set(seeds)) == 10

    def test_spawn_seeds_negative_count_rejected(self):
        with pytest.raises(ValueError):
            RandomSource(seed=0).spawn_seeds("x", -1)

    def test_lognormal_median_parameterization(self):
        rng = RandomSource(seed=11)
        draws = sorted(
            rng.lognormal("lat", median=10.0, sigma=0.2) for _ in range(4001)
        )
        median = draws[len(draws) // 2]
        assert 9.0 < median < 11.0

    def test_bernoulli_respects_probability(self):
        rng = RandomSource(seed=13)
        hits = sum(rng.bernoulli("coin", 0.25) for _ in range(8000))
        assert 0.21 < hits / 8000 < 0.29

    def test_validation_errors(self):
        rng = RandomSource(seed=0)
        with pytest.raises(ValueError):
            rng.exponential("x", mean=0.0)
        with pytest.raises(ValueError):
            rng.lognormal("x", median=-1.0, sigma=0.1)
        with pytest.raises(ValueError):
            rng.bernoulli("x", 1.5)
        with pytest.raises(ValueError):
            rng.choice("x", [])

    @given(st.integers(min_value=0, max_value=2**31), st.text(max_size=20))
    def test_derive_seed_always_in_64_bit_range(self, seed, name):
        value = derive_seed(seed, name)
        assert 0 <= value < 2**64
