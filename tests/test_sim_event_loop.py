"""Unit tests for the discrete-event simulator kernel."""

import pytest

from repro.errors import DeadlockError, SimulationError
from repro.sim import Simulator


class TestScheduling:
    def test_starts_at_configured_time(self):
        assert Simulator().now == 0.0
        assert Simulator(start_time=100.0).now == 100.0

    def test_schedule_after_fires_at_right_time(self):
        sim = Simulator()
        fired_at = []
        sim.schedule_after(2.5, lambda: fired_at.append(sim.now))
        sim.run()
        assert fired_at == [2.5]

    def test_schedule_at_absolute_time(self):
        sim = Simulator(start_time=10.0)
        fired_at = []
        sim.schedule_at(12.0, lambda: fired_at.append(sim.now))
        sim.run()
        assert fired_at == [12.0]

    def test_callback_args_are_passed(self):
        sim = Simulator()
        seen = []
        sim.schedule_after(1.0, seen.append, "payload")
        sim.run()
        assert seen == ["payload"]

    def test_events_fire_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule_after(3.0, order.append, "c")
        sim.schedule_after(1.0, order.append, "a")
        sim.schedule_after(2.0, order.append, "b")
        sim.run()
        assert order == ["a", "b", "c"]

    def test_simultaneous_events_fire_fifo(self):
        sim = Simulator()
        order = []
        for label in ("first", "second", "third"):
            sim.schedule_after(1.0, order.append, label)
        sim.run()
        assert order == ["first", "second", "third"]

    def test_scheduling_in_the_past_raises(self):
        sim = Simulator(start_time=5.0)
        with pytest.raises(SimulationError):
            sim.schedule_at(4.0, lambda: None)

    def test_negative_delay_raises(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule_after(-0.1, lambda: None)

    def test_events_can_schedule_more_events(self):
        sim = Simulator()
        fired_at = []

        def chain(depth):
            fired_at.append(sim.now)
            if depth > 0:
                sim.schedule_after(1.0, chain, depth - 1)

        sim.schedule_after(1.0, chain, 2)
        sim.run()
        assert fired_at == [1.0, 2.0, 3.0]


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        fired = []
        handle = sim.schedule_after(1.0, fired.append, "x")
        handle.cancel()
        sim.run()
        assert fired == []
        assert handle.cancelled and not handle.fired

    def test_cancel_after_fire_is_noop(self):
        sim = Simulator()
        handle = sim.schedule_after(1.0, lambda: None)
        sim.run()
        assert handle.fired
        handle.cancel()  # must not raise

    def test_cancelled_events_do_not_stall_run_until(self):
        sim = Simulator()
        handle = sim.schedule_after(1.0, lambda: None)
        handle.cancel()
        sim.run_until(5.0)
        assert sim.now == 5.0


class TestRunUntil:
    def test_advances_clock_even_with_no_events(self):
        sim = Simulator()
        sim.run_until(42.0)
        assert sim.now == 42.0

    def test_does_not_execute_future_events(self):
        sim = Simulator()
        fired = []
        sim.schedule_after(10.0, fired.append, "late")
        sim.schedule_after(1.0, fired.append, "early")
        sim.run_until(5.0)
        assert fired == ["early"]
        assert sim.now == 5.0
        sim.run()
        assert fired == ["early", "late"]

    def test_boundary_event_is_executed(self):
        sim = Simulator()
        fired = []
        sim.schedule_after(5.0, fired.append, "edge")
        sim.run_until(5.0)
        assert fired == ["edge"]

    def test_running_backwards_raises(self):
        sim = Simulator(start_time=10.0)
        with pytest.raises(SimulationError):
            sim.run_until(9.0)

    def test_strict_mode_detects_deadlock(self):
        sim = Simulator()
        sim.schedule_after(1.0, lambda: None)
        with pytest.raises(DeadlockError):
            sim.run_until(10.0, strict=True)

    def test_strict_mode_passes_when_events_persist(self):
        sim = Simulator()

        def heartbeat():
            sim.schedule_after(1.0, heartbeat)

        heartbeat()
        sim.run_until(10.0, strict=True)
        assert sim.now == 10.0


class TestAccounting:
    def test_events_processed_counts_only_fired(self):
        sim = Simulator()
        sim.schedule_after(1.0, lambda: None)
        cancelled = sim.schedule_after(2.0, lambda: None)
        cancelled.cancel()
        sim.run()
        assert sim.events_processed == 1

    def test_max_events_bounds_run(self):
        sim = Simulator()
        for _ in range(10):
            sim.schedule_after(1.0, lambda: None)
        sim.run(max_events=3)
        assert sim.events_processed == 3

    def test_reentrant_run_raises(self):
        sim = Simulator()
        errors = []

        def reenter():
            try:
                sim.run()
            except SimulationError as exc:
                errors.append(exc)

        sim.schedule_after(1.0, reenter)
        sim.run()
        assert len(errors) == 1
