"""Unit tests for futures and their combinators."""

import pytest

from repro.errors import FutureError
from repro.sim import AllOf, AnyOf, Future, gather


class TestFuture:
    def test_starts_pending(self):
        future = Future()
        assert not future.done
        assert not future.failed

    def test_resolve_sets_value(self):
        future = Future()
        future.resolve(42)
        assert future.done
        assert future.value == 42

    def test_value_before_resolution_raises(self):
        with pytest.raises(FutureError):
            Future(name="pending").value

    def test_double_resolve_raises(self):
        future = Future()
        future.resolve(1)
        with pytest.raises(FutureError):
            future.resolve(2)

    def test_fail_then_resolve_raises(self):
        future = Future()
        future.fail(ValueError("boom"))
        with pytest.raises(FutureError):
            future.resolve(1)

    def test_failed_value_reraises_original(self):
        future = Future()
        future.fail(ValueError("boom"))
        assert future.failed
        with pytest.raises(ValueError, match="boom"):
            future.value

    def test_callback_fires_on_resolution(self):
        future = Future()
        seen = []
        future.add_callback(lambda f: seen.append(f.value))
        assert seen == []
        future.resolve("done")
        assert seen == ["done"]

    def test_callback_on_done_future_fires_immediately(self):
        future = Future()
        future.resolve("done")
        seen = []
        future.add_callback(lambda f: seen.append(f.value))
        assert seen == ["done"]

    def test_callbacks_fire_in_registration_order(self):
        future = Future()
        order = []
        future.add_callback(lambda f: order.append(1))
        future.add_callback(lambda f: order.append(2))
        future.resolve(None)
        assert order == [1, 2]


class TestAllOf:
    def test_resolves_with_values_in_input_order(self):
        a, b = Future(), Future()
        combined = AllOf([a, b])
        b.resolve("b")
        assert not combined.done
        a.resolve("a")
        assert combined.value == ["a", "b"]

    def test_empty_input_resolves_immediately(self):
        assert AllOf([]).value == []

    def test_fails_on_first_component_failure(self):
        a, b = Future(), Future()
        combined = AllOf([a, b])
        a.fail(RuntimeError("dead"))
        assert combined.failed
        b.resolve("late")  # must not disturb the failed combinator

    def test_already_resolved_components(self):
        a = Future()
        a.resolve(1)
        assert AllOf([a]).value == [1]

    def test_gather_is_allof(self):
        a, b = Future(), Future()
        combined = gather(a, b)
        a.resolve(1)
        b.resolve(2)
        assert combined.value == [1, 2]


class TestAnyOf:
    def test_resolves_with_first_winner(self):
        a, b = Future(), Future()
        combined = AnyOf([a, b])
        b.resolve("fast")
        assert combined.value == (1, "fast")
        a.resolve("slow")  # late resolution is ignored

    def test_tolerates_failures_until_one_succeeds(self):
        a, b = Future(), Future()
        combined = AnyOf([a, b])
        a.fail(RuntimeError("down"))
        assert not combined.done
        b.resolve("up")
        assert combined.value == (1, "up")

    def test_fails_only_when_all_fail(self):
        a, b = Future(), Future()
        combined = AnyOf([a, b])
        a.fail(RuntimeError("one"))
        b.fail(RuntimeError("two"))
        assert combined.failed

    def test_empty_input_raises(self):
        with pytest.raises(FutureError):
            AnyOf([])
