"""Unit tests for generator-based simulated processes."""

import pytest

from repro.errors import ProcessError
from repro.sim import Future, Process, Simulator, spawn


class TestBasicExecution:
    def test_process_sleeps_for_yielded_delay(self):
        sim = Simulator()
        timestamps = []

        def worker():
            timestamps.append(sim.now)
            yield 2.0
            timestamps.append(sim.now)
            yield 3.0
            timestamps.append(sim.now)

        spawn(sim, worker)
        sim.run()
        assert timestamps == [0.0, 2.0, 5.0]

    def test_return_value_resolves_completion(self):
        sim = Simulator()

        def worker():
            yield 1.0
            return "result"

        proc = spawn(sim, worker)
        sim.run()
        assert proc.completion.value == "result"
        assert not proc.alive

    def test_start_delay_defers_first_step(self):
        sim = Simulator()
        started_at = []

        def worker():
            started_at.append(sim.now)
            yield 0.0

        spawn(sim, worker, start_delay=4.0)
        sim.run()
        assert started_at == [4.0]

    def test_non_generator_raises(self):
        sim = Simulator()
        with pytest.raises(ProcessError, match="generator"):
            Process(sim, lambda: None, name="bad")  # type: ignore[arg-type]

    def test_spawn_passes_arguments(self):
        sim = Simulator()

        def worker(a, b, scale=1):
            yield 0.0
            return (a + b) * scale

        proc = spawn(sim, worker, 2, 3, scale=10)
        sim.run()
        assert proc.completion.value == 50


class TestFutureInteraction:
    def test_yielding_future_suspends_until_resolved(self):
        sim = Simulator()
        gate = Future()
        result = []

        def waiter():
            value = yield gate
            result.append((sim.now, value))

        spawn(sim, waiter)
        sim.schedule_after(5.0, gate.resolve, "opened")
        sim.run()
        assert result == [(5.0, "opened")]

    def test_failed_future_raises_inside_generator(self):
        sim = Simulator()
        gate = Future()
        caught = []

        def waiter():
            try:
                yield gate
            except RuntimeError as exc:
                caught.append(str(exc))

        spawn(sim, waiter)
        sim.schedule_after(1.0, gate.fail, RuntimeError("broken"))
        sim.run()
        assert caught == ["broken"]

    def test_yielding_already_done_future_continues_promptly(self):
        sim = Simulator()
        done = Future()
        done.resolve("ready")
        values = []

        def waiter():
            values.append((yield done))

        spawn(sim, waiter)
        sim.run()
        assert values == ["ready"]


class TestComposition:
    def test_yielding_process_waits_for_its_return(self):
        sim = Simulator()

        def child():
            yield 3.0
            return "child-result"

        def parent():
            value = yield spawn(sim, child)
            return (sim.now, value)

        proc = spawn(sim, parent)
        sim.run()
        assert proc.completion.value == (3.0, "child-result")


class TestFailureAndInterrupt:
    def test_exception_fails_completion_with_cause(self):
        sim = Simulator()

        def worker():
            yield 1.0
            raise ValueError("inner")

        proc = spawn(sim, worker)
        sim.run()
        assert proc.completion.failed
        exc = proc.completion.exception
        assert isinstance(exc, ProcessError)
        assert isinstance(exc.__cause__, ValueError)

    def test_yielding_garbage_fails_process(self):
        sim = Simulator()

        def worker():
            yield "not a delay"

        proc = spawn(sim, worker)
        sim.run()
        assert proc.completion.failed

    def test_negative_delay_fails_process(self):
        sim = Simulator()

        def worker():
            yield -1.0

        proc = spawn(sim, worker)
        sim.run()
        assert proc.completion.failed

    def test_interrupt_stops_process(self):
        sim = Simulator()
        steps = []

        def worker():
            while True:
                steps.append(sim.now)
                yield 1.0

        proc = spawn(sim, worker)
        sim.run_until(2.5)
        proc.interrupt()
        sim.run()
        assert not proc.alive
        assert proc.completion.value is None
        assert steps == [0.0, 1.0, 2.0]

    def test_interrupt_finished_process_is_noop(self):
        sim = Simulator()

        def worker():
            yield 0.0
            return "ok"

        proc = spawn(sim, worker)
        sim.run()
        proc.interrupt()
        assert proc.completion.value == "ok"

    def test_generator_cleanup_runs_on_interrupt(self):
        sim = Simulator()
        cleaned = []

        def worker():
            try:
                while True:
                    yield 1.0
            finally:
                cleaned.append(True)

        proc = spawn(sim, worker)
        sim.run_until(0.5)
        proc.interrupt()
        assert cleaned == [True]
