"""Unit coverage for the repro.stream engine and its plumbing.

Parity with the batch pipeline is proven in
``tests/test_stream_parity.py``; these tests pin the *streaming-side*
behaviors that parity alone cannot see — canonical ordering, live
emission timing, window open/close events, the watermark sequencer's
buffering, the eviction horizon, telemetry accounting, and the
trace-event JSONL round trip.
"""

import io as stdio

import pytest

from repro.core.anomalies import AnomalyObservation, TraceReport
from repro.core.windows import content_divergence_windows
from repro.errors import AnalysisError
from repro.io import (
    TRACE_EVENT_SCHEMA_VERSION,
    TraceEventWriter,
    iter_trace_events,
    operation_from_dict,
    operation_to_dict,
)
from repro.methodology.runner import analyze_trace
from repro.stream import (
    OpIngest,
    StreamEngine,
    TestMeta,
    record_mismatches,
    replay_trace,
    stream_order,
)
from repro.stream.ingest import feed_events
from tests.helpers import make_trace, read, write


def ryw_trace(test_id="t-ryw"):
    """oregon's second read misses its own completed write m2."""
    return make_trace([
        write("oregon", "m1", 0.0),
        read("oregon", ("m1",), 0.2),
        write("oregon", "m2", 0.4),
        read("oregon", ("m1",), 0.6),
        read("tokyo", ("m1", "m2"), 0.8),
    ], test_id=test_id)


def divergent_trace(test_id="t-div"):
    """oregon and tokyo each miss a message the other sees (content
    divergence is cross-missing), then reconverge."""
    return make_trace([
        write("ireland", "m1", 0.0),
        write("ireland", "m2", 0.2),
        read("oregon", ("m1",), 0.5),
        read("tokyo", ("m2",), 0.6),
        read("oregon", ("m1", "m2"), 1.0),
        read("tokyo", ("m1", "m2"), 1.4),
        read("oregon", ("m1", "m2"), 1.8),
        read("tokyo", ("m1", "m2"), 1.9),
    ], test_id=test_id)


class TestStreamOrder:
    def test_sorted_by_corrected_response(self):
        trace = make_trace([
            write("oregon", "m1", 1.0),
            read("tokyo", ("m1",), 0.0),
            write("tokyo", "m2", 0.5),
        ], clock_deltas={"oregon": 2.0})
        ordered = stream_order(trace)
        assert [sop.time for sop in ordered] == sorted(
            sop.time for sop in ordered
        )
        # oregon's write responds locally at 1.1 but its clock runs
        # two seconds ahead (corrected = local - delta = -0.9), so it
        # streams first.
        assert ordered[0].op.message_id == "m1"

    def test_writes_precede_reads_on_ties(self):
        trace = make_trace([
            read("tokyo", (), 0.0, response=0.1),
            write("oregon", "m1", 0.0, response=0.1),
        ])
        ordered = stream_order(trace)
        assert ordered[0].is_write
        assert not ordered[1].is_write

    def test_read_seq_numbers_reads_in_stream_order(self):
        ordered = stream_order(divergent_trace())
        read_seqs = [sop.read_seq for sop in ordered
                     if not sop.is_write]
        assert read_seqs == list(range(6))
        assert all(sop.read_seq == -1 for sop in ordered
                   if sop.is_write)

    def test_restriction_to_one_agent_is_session_order(self):
        """The invariant the session checkers lean on."""
        trace = divergent_trace()
        ordered = stream_order(trace)
        for agent in trace.agents:
            local = [sop.op for sop in ordered
                     if sop.agent == agent]
            assert local == sorted(
                local, key=lambda op: op.response_local
            )


class TestStreamEngine:
    def test_live_emission_at_violating_read(self):
        """The RYW observation surfaces the moment the read streams,
        not at close — the whole point of the online engine."""
        trace = ryw_trace()
        engine = StreamEngine()
        meta = TestMeta.from_trace(trace)
        engine.open_test(meta)
        live = []
        for sop in stream_order(trace, meta):
            emission = engine.observe(meta, sop)
            live.extend(emission.observations)
        assert [obs.anomaly for obs in live] == ["read_your_writes"]
        assert live[0].details["missing"] == ("m2",)
        record = engine.close_test(meta)
        assert record.report.count("read_your_writes") == 1
        assert engine.anomaly_counts["read_your_writes"] == 1

    def test_horizon_bounds_retained_records(self):
        engine = StreamEngine(horizon=2)
        for index in range(5):
            replay_trace(ryw_trace(f"t-{index}"), engine)
        assert engine.tests_closed == 5
        assert [r.test_id for r in engine.results] == ["t-3", "t-4"]
        # Counts are authoritative even after eviction.
        assert engine.anomaly_counts["read_your_writes"] == 5

    def test_state_drops_at_close(self):
        engine = StreamEngine(horizon=1)
        trace = ryw_trace()
        meta = TestMeta.from_trace(trace)
        engine.open_test(meta)
        for sop in stream_order(trace, meta):
            engine.observe(meta, sop)
        assert engine.open_tests == 1
        mid_state = engine.state_size()
        assert mid_state > 0
        engine.close_test(meta)
        assert engine.open_tests == 0
        # All that remains is the one retained record.
        assert engine.state_size() < mid_state

    def test_stats_snapshot(self):
        engine = StreamEngine()
        replay_trace(ryw_trace(), engine)
        stats = engine.stats()
        assert stats["tests_closed"] == 1
        assert stats["open_tests"] == 0
        assert stats["operations"] == 5
        assert stats["anomalies"]["read_your_writes"] == 1


class TestWindowEvents:
    def test_events_mirror_batch_windows(self):
        trace = divergent_trace()
        engine = StreamEngine()
        meta = TestMeta.from_trace(trace)
        engine.open_test(meta)
        events = []
        for sop in stream_order(trace, meta):
            events.extend(engine.observe(meta, sop).window_events)
        record = engine.close_test(meta)

        pair = ("oregon", "tokyo")
        batch = content_divergence_windows(trace, "oregon", "tokyo")
        assert record.content_windows[pair] == batch
        assert not batch.converged or batch.intervals

        content = [e for e in events
                   if e.kind == "content" and e.pair == pair]
        # Live transitions replay exactly the batch intervals: one
        # opened (matching each interval start) and, once the pair
        # reconverges, one closed carrying that start.
        opened = [e.time for e in content if e.action == "opened"]
        closed = [(e.start, e.time) for e in content
                  if e.action == "closed"]
        assert opened == [start for start, _ in batch.intervals]
        assert closed == list(batch.intervals)

    def test_no_events_for_agreeing_pair(self):
        trace = make_trace([
            write("ireland", "m1", 0.0),
            read("oregon", ("m1",), 0.5),
            read("tokyo", ("m1",), 0.6),
        ])
        engine = StreamEngine()
        meta = TestMeta.from_trace(trace)
        engine.open_test(meta)
        events = []
        for sop in stream_order(trace, meta):
            events.extend(engine.observe(meta, sop).window_events)
        record = engine.close_test(meta)
        assert events == []
        assert all(result.intervals == ()
                   for result in record.content_windows.values())


class TestOpIngest:
    def feed(self, ingest, trace):
        ingest.test_opened(trace)
        for op in trace.operations:
            ingest.operation(trace, op)
        ingest.test_closed(trace)

    def test_watermark_holds_ops_until_all_agents_logged(self):
        trace = ryw_trace()
        ingest = OpIngest()
        ingest.test_opened(trace)
        # Only oregon has logged: everything buffers behind the
        # watermark (tokyo could still deliver an earlier op).
        for op in trace.operations[:4]:
            ingest.operation(trace, op)
        assert ingest.state_size() == 4
        assert ingest.engine.operations_seen == 0
        ingest.operation(trace, trace.operations[4])
        ingest.test_closed(trace)
        assert ingest.state_size() == 0
        assert ingest.engine.operations_seen == 5

    def test_analyzer_record_matches_batch(self):
        trace = ryw_trace()
        ingest = OpIngest()
        self.feed(ingest, trace)
        record = ingest.analyzer(trace)
        assert record_mismatches(analyze_trace(trace), record) == []

    def test_interleaved_tests_stay_independent(self):
        first, second = ryw_trace("t-a"), divergent_trace("t-b")
        ingest = OpIngest()
        ingest.test_opened(first)
        ingest.test_opened(second)
        for op in first.operations:
            ingest.operation(first, op)
        for op in second.operations:
            ingest.operation(second, op)
        assert ingest.engine.open_tests == 2
        ingest.test_closed(first)
        ingest.test_closed(second)
        for trace in (first, second):
            assert record_mismatches(
                analyze_trace(trace), ingest.analyzer(trace)
            ) == []


class TestTraceEventRoundTrip:
    def write_events(self, traces):
        sink = stdio.StringIO()
        writer = TraceEventWriter(sink)
        for trace in traces:
            writer.test_opened(trace)
            for op in trace.operations:
                writer.operation(trace, op)
            writer.test_closed(trace)
        return sink.getvalue()

    def test_replay_reproduces_batch_records(self):
        traces = [ryw_trace(), divergent_trace()]
        payload = self.write_events(traces)
        ingest = OpIngest()
        events = list(feed_events(
            iter_trace_events(payload.splitlines()), ingest
        ))
        assert [e["event"] for e in events] == [
            "test_open", *(["op"] * 5), "test_close",
            "test_open", *(["op"] * 8), "test_close",
        ]
        for trace in traces:
            assert record_mismatches(
                analyze_trace(trace), ingest.analyzer(trace)
            ) == []

    def test_operation_dict_round_trip(self):
        for op in ryw_trace().operations:
            assert operation_from_dict(operation_to_dict(op)) == op

    def test_schema_version_mismatch_rejected(self):
        line = ('{"event": "test_open", "schema_version": '
                f'{TRACE_EVENT_SCHEMA_VERSION + 1}, "test_id": "t"}}')
        with pytest.raises(AnalysisError):
            list(iter_trace_events([line]))

    def test_op_for_unknown_test_rejected(self):
        trace = ryw_trace()
        op_line = [
            line for line in self.write_events([trace]).splitlines()
            if '"event": "op"' in line
        ][0]
        with pytest.raises(AnalysisError):
            list(feed_events(
                iter_trace_events([op_line]), OpIngest()
            ))


class TestTraceReportCombinators:
    def obs(self, anomaly, agent="oregon", time=1.0):
        return AnomalyObservation(anomaly=anomaly, agent=agent,
                                  time=time)

    def test_from_observations_prefills_all_kinds(self):
        report = TraceReport.from_observations(
            "t", "unit", "test1", ("oregon",),
            [self.obs("monotonic_reads")],
        )
        assert report.has("monotonic_reads")
        assert not report.has("read_your_writes")
        assert "content_divergence" in report.observations

    def test_merge_concatenates_in_argument_order(self):
        base = TraceReport.from_observations(
            "t", "unit", "test1", ("oregon",),
            [self.obs("monotonic_reads", time=1.0)],
        )
        extra = TraceReport.from_observations(
            "t", "unit", "test1", ("oregon",),
            [self.obs("monotonic_reads", time=2.0)],
        )
        merged = base.merge(extra)
        assert [o.time for o in
                merged.observations["monotonic_reads"]] == [1.0, 2.0]

    def test_merge_rejects_identity_mismatch(self):
        base = TraceReport.from_observations(
            "t", "unit", "test1", ("oregon",), [],
        )
        other = TraceReport.from_observations(
            "t2", "unit", "test1", ("oregon",), [],
        )
        with pytest.raises(ValueError):
            base.merge(other)
