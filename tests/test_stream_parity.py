"""Streaming/batch differential parity (the repro.stream anchor).

The streaming engine is only trustworthy because it is *provably* the
batch pipeline re-ordered: every checker, every window, every record
field must come out element-for-element identical.  These tests drive
that contract three ways:

* randomized synthetic traces from a seeded
  :class:`~repro.sim.random_source.RandomSource` — adversarial
  orderings (concurrent zero-gap ops, skewed clocks, partial and
  reordered observations) that no single service plan exercises;
* real simulator campaigns across services, including masked sessions
  (``mask_sessions=True``) and the Facebook-group partition nemesis
  whose partition-era reads stress divergence windows;
* the *live* path: a campaign analyzed by :class:`OpIngest` online
  must produce records indistinguishable from the batch analyzer's.
"""

import pytest

from repro.methodology import CampaignConfig, run_campaign
from repro.methodology.runner import analyze_trace
from repro.sim.random_source import RandomSource
from repro.stream import OpIngest, record_mismatches, verify_trace
from tests.helpers import make_trace, read, write

AGENTS = ("oregon", "tokyo", "ireland")


def random_trace(seed: int):
    """One adversarial trace drawn from a seeded stream.

    Ops get small random gaps (often zero → heavy time ties), each
    agent a random clock delta, reads observe a random-order sample of
    the issued message ids (omitting freely), and about half the
    traces carry explicit WFR triggers.  Reads may be zero-duration
    (stressing the writes-first tie-break); writes always take
    positive time, as every real trace's do — a zero-duration write
    is the one documented degenerate case outside the streaming
    order's contract (see :mod:`repro.stream.base`).
    """
    rng = RandomSource(seed=seed).stream("parity.trace")
    deltas = {agent: rng.uniform(-0.5, 0.5) for agent in AGENTS}
    operations = []
    issued: list[str] = []
    triggers: dict[str, frozenset[str]] = {}
    clock = {agent: rng.uniform(0.0, 0.2) for agent in AGENTS}
    for index in range(rng.randrange(12, 40)):
        agent = AGENTS[rng.randrange(0, len(AGENTS))]
        at = clock[agent]
        if issued and rng.random() < 0.55:
            latency = rng.choice((0.0, 0.0, 0.01, 0.05, 0.2))
            count = rng.randrange(0, len(issued) + 1)
            observed = rng.sample(issued, count)
            operations.append(
                read(agent, tuple(observed), at, response=at + latency)
            )
        else:
            latency = rng.choice((0.01, 0.05, 0.2))
            mid = f"m{index}"
            operations.append(
                write(agent, mid, at, response=at + latency)
            )
            if issued and rng.random() < 0.5:
                triggers[mid] = frozenset(
                    issued[rng.randrange(0, len(issued))]
                    for _ in range(rng.randrange(1, 3))
                )
            issued.append(mid)
        clock[agent] = at + latency + rng.choice((0.0, 0.01, 0.3))
    return make_trace(
        operations,
        agents=AGENTS,
        test_id=f"rand-{seed}",
        clock_deltas=deltas,
        wfr_triggers=triggers if seed % 2 else {},
    )


class TestRandomizedParity:
    @pytest.mark.parametrize("seed", range(30))
    def test_streaming_equals_batch(self, seed):
        assert verify_trace(random_trace(seed)) == []

    def test_random_traces_are_not_trivially_clean(self):
        """The fuzz corpus actually exercises the anomaly paths."""
        seen = set()
        for seed in range(30):
            record = analyze_trace(random_trace(seed))
            seen.update(kind for kind, obs
                        in record.report.observations.items() if obs)
        assert {"read_your_writes", "monotonic_writes",
                "monotonic_reads", "content_divergence",
                "order_divergence"} <= seen


def campaign_traces(service, **overrides):
    config = CampaignConfig(num_tests=3, seed=29, keep_traces=True,
                            **overrides)
    result = run_campaign(service, config)
    traces = [record.trace for record in result.records]
    assert traces and all(t is not None for t in traces)
    return traces


class TestCampaignParity:
    @pytest.mark.parametrize("service", ["blogger", "googleplus"])
    def test_paper_services(self, service):
        for trace in campaign_traces(service):
            assert verify_trace(trace) == []

    def test_masked_sessions(self):
        """Client-side masking rewrites observations; parity holds."""
        for trace in campaign_traces("facebook_feed",
                                     mask_sessions=True):
            assert verify_trace(trace) == []

    def test_partition_nemesis_reads(self):
        """Facebook-group test2 runs under the partition nemesis, so
        partition-era reads produce real divergence windows."""
        traces = campaign_traces("facebook_group",
                                 test_types=("test2",))
        divergent = 0
        for trace in traces:
            assert verify_trace(trace) == []
            report = analyze_trace(trace).report
            divergent += bool(report.has("content_divergence")
                              or report.has("order_divergence"))
        assert divergent, "nemesis campaign produced no divergence"


class TestLiveIngestParity:
    def test_campaign_records_identical_online(self):
        """A campaign analyzed live by OpIngest (watermark sequencer,
        per-op observe) equals the batch analyzer record-for-record."""
        config = CampaignConfig(num_tests=4, seed=17)
        batch = run_campaign("googleplus", config)
        ingest = OpIngest()
        live = run_campaign("googleplus", config,
                            observer=ingest, analyzer=ingest.analyzer)
        assert len(live.records) == len(batch.records)
        for expected, actual in zip(batch.records, live.records):
            assert record_mismatches(expected, actual) == []
        # Everything closed and drained: no open tests, no buffered
        # ops waiting on the watermark.
        assert ingest.engine.open_tests == 0
        assert ingest.state_size() == 0
