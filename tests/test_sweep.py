"""Tests for campaign replication and parameter sweeps."""

import pytest

from repro.core import READ_YOUR_WRITES
from repro.errors import ConfigurationError
from repro.methodology import (
    CampaignConfig,
    prevalence_statistics,
    replicate,
    sweep,
)
from repro.replication import QuorumParams
from repro.services import QuorumKvParams

SMALL = CampaignConfig(num_tests=3, seed=0, test_types=("test1",))


class TestReplicate:
    def test_runs_one_campaign_per_seed(self):
        results = replicate("blogger", SMALL, seeds=[1, 2, 3])
        assert len(results) == 3
        assert [r.config.seed for r in results] == [1, 2, 3]

    def test_same_seed_reproduces(self):
        (a,) = replicate("googleplus", SMALL, seeds=[5])
        (b,) = replicate("googleplus", SMALL, seeds=[5])
        assert a.summary() == b.summary()

    def test_empty_seeds_rejected(self):
        with pytest.raises(ConfigurationError):
            replicate("blogger", SMALL, seeds=[])

    def test_duplicate_seeds_rejected(self):
        # A duplicated seed re-runs the identical campaign and skews
        # prevalence_statistics sample counts.
        with pytest.raises(ConfigurationError,
                           match=r"duplicate seeds \[5\]"):
            replicate("googleplus", SMALL, seeds=[5, 5])

    def test_parallel_replicate_matches_serial(self):
        serial = replicate("blogger", SMALL, seeds=[1, 2])
        parallel = replicate("blogger", SMALL, seeds=[1, 2], jobs=2)
        assert [r.summary() for r in parallel] == \
            [r.summary() for r in serial]


class TestSweep:
    def test_one_result_per_configuration(self):
        grid = {
            "weak": QuorumKvParams(
                quorum=QuorumParams(read_quorum=1, write_quorum=1)
            ),
            "strict": QuorumKvParams(
                quorum=QuorumParams(read_quorum=2, write_quorum=2)
            ),
        }
        results = sweep("quorum_kv", SMALL, grid)
        assert set(results) == {"weak", "strict"}
        weak = results["weak"].prevalence(READ_YOUR_WRITES)
        strict = results["strict"].prevalence(READ_YOUR_WRITES)
        assert strict == 0.0
        assert weak >= strict

    def test_empty_grid_rejected(self):
        with pytest.raises(ConfigurationError):
            sweep("blogger", SMALL, {})


class TestPrevalenceStatistics:
    def test_aggregates_across_seeds(self):
        results = replicate("googleplus",
                            CampaignConfig(num_tests=5, seed=0,
                                           test_types=("test1",)),
                            seeds=[1, 2, 3])
        stats = prevalence_statistics(results, test_type="test1")
        ryw = stats[READ_YOUR_WRITES]
        assert ryw.samples == 3
        assert ryw.minimum <= ryw.mean <= ryw.maximum
        assert 0.0 <= ryw.spread <= 1.0

    def test_blogger_is_zero_everywhere(self):
        results = replicate("blogger", SMALL, seeds=[1, 2])
        stats = prevalence_statistics(results)
        assert all(entry.mean == 0.0 for entry in stats.values())

    def test_empty_results_rejected(self):
        with pytest.raises(ConfigurationError):
            prevalence_statistics([])
