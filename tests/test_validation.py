"""Tests for ground-truth (white-box) validation of the methodology."""

import pytest

from repro.analysis import (
    ground_truth_trace,
    summarize_window_errors,
    window_measurement_errors,
)
from repro.core import ReadOp, TestTrace, WriteOp, check_all
from repro.errors import AnalysisError
from repro.methodology import CampaignConfig, run_campaign


def op_with_truth(cls, agent, t_local, t_true, **kwargs):
    return cls(agent=agent, invoke_local=t_local,
               response_local=t_local + 0.1,
               true_invoke=t_true, true_response=t_true + 0.1,
               **kwargs)


class TestGroundTruthTrace:
    def make_trace(self):
        trace = TestTrace(test_id="t", service="s", test_type="test1",
                          agents=("oregon", "tokyo", "ireland"),
                          clock_deltas={"oregon": 5.0})
        trace.record(op_with_truth(WriteOp, "oregon", 15.0, 10.0,
                                   message_id="M1"))
        trace.record(op_with_truth(ReadOp, "oregon", 16.0, 11.0,
                                   observed=("M1",)))
        return trace

    def test_oracle_uses_true_times_and_no_deltas(self):
        oracle = ground_truth_trace(self.make_trace())
        (write,) = oracle.writes()
        assert write.invoke_local == pytest.approx(10.0)
        assert oracle.clock_deltas == {}
        assert oracle.corrected_invoke(write) == pytest.approx(10.0)

    def test_oracle_preserves_content_and_triggers(self):
        trace = self.make_trace()
        trace.wfr_triggers = {"M1": frozenset({"M0"})}
        oracle = ground_truth_trace(trace)
        assert oracle.message_ids() == {"M1"}
        assert oracle.wfr_triggers == trace.wfr_triggers
        # Anomaly verdicts are clock-independent for same-session
        # checks; this trace is clean in both frames.
        assert check_all(oracle).summary() == check_all(trace).summary()

    def test_missing_truth_rejected(self):
        trace = TestTrace(test_id="t", service="s", test_type="test1",
                          agents=("oregon", "tokyo", "ireland"))
        trace.record(WriteOp(agent="oregon", message_id="M1",
                             invoke_local=0.0, response_local=0.1))
        with pytest.raises(AnalysisError, match="ground-truth"):
            ground_truth_trace(trace)


class TestWindowErrors:
    @pytest.fixture(scope="class")
    def campaign(self):
        return run_campaign("googleplus", CampaignConfig(
            num_tests=10, seed=13, test_types=("test2",),
            keep_traces=True,
        ))

    def test_black_box_windows_track_ground_truth(self, campaign):
        report = window_measurement_errors(campaign, kind="content")
        errors = report.errors()
        assert errors, "campaign should produce divergence windows"
        # §IV: each correction is within RTT/2, a window involves two
        # agents' corrections plus detection granularity.
        assert report.within_bound_fraction() >= 0.9
        stats = summarize_window_errors(report)
        assert stats["median"] <= report.bound

    def test_order_kind_supported(self, campaign):
        report = window_measurement_errors(campaign, kind="order")
        assert report.kind == "order"

    def test_requires_kept_traces(self):
        result = run_campaign("blogger", CampaignConfig(
            num_tests=1, seed=1, test_types=("test2",),
        ))
        with pytest.raises(AnalysisError, match="keep_traces"):
            window_measurement_errors(result)

    def test_invalid_kind_rejected(self, campaign):
        with pytest.raises(AnalysisError):
            window_measurement_errors(campaign, kind="chaos")

    def test_summary_handles_empty(self):
        result = run_campaign("blogger", CampaignConfig(
            num_tests=1, seed=1, test_types=("test2",),
            keep_traces=True,
        ))
        report = window_measurement_errors(result)
        stats = summarize_window_errors(report)
        assert stats["count"] == 0.0
