"""Unit tests for the web-API façade: http types, auth, rate limits,
endpoints, and the client."""

import pytest

from repro.errors import (
    AuthenticationError,
    ConfigurationError,
    InvalidRequestError,
    RateLimitExceededError,
    ServiceError,
)
from repro.net import JitterParams, LatencyModel, Network, Region, Topology
from repro.sim import Future, RandomSource, Simulator
from repro.webapi import (
    AccountRegistry,
    ApiClient,
    ApiRequest,
    ApiResponse,
    RateLimit,
    ServiceEndpoint,
    SlidingWindowRateLimiter,
    error_response,
    ok,
)


class TestHttpTypes:
    def test_request_validates_method(self):
        with pytest.raises(ServiceError):
            ApiRequest(method="BREW", path="/coffee")

    def test_require_param(self):
        request = ApiRequest(method="GET", path="/x", params={"a": 1})
        assert request.require_param("a") == 1
        with pytest.raises(InvalidRequestError):
            request.require_param("b")

    def test_param_default(self):
        request = ApiRequest(method="GET", path="/x")
        assert request.param("missing", "fallback") == "fallback"

    def test_ok_and_success(self):
        response = ok({"x": 1})
        assert response.is_success
        assert response.raise_for_status() is response

    def test_raise_for_status_maps_codes(self):
        with pytest.raises(AuthenticationError):
            ApiResponse(status=401, body={"error": "no"}).raise_for_status()
        with pytest.raises(RateLimitExceededError) as info:
            ApiResponse(status=429, body={
                "error": "slow down", "retry_after": 2.5,
            }).raise_for_status()
        assert info.value.retry_after == 2.5
        with pytest.raises(InvalidRequestError):
            ApiResponse(status=400, body={}).raise_for_status()
        with pytest.raises(ServiceError):
            ApiResponse(status=500, body={}).raise_for_status()

    def test_error_response_round_trip(self):
        response = error_response(RateLimitExceededError(retry_after=1.0))
        assert response.status == 429
        assert response.body["retry_after"] == 1.0


class TestAccounts:
    def test_create_and_authenticate(self):
        registry = AccountRegistry("svc")
        account = registry.create_account("alice")
        assert registry.authenticate(account.token) is account

    def test_create_is_idempotent_per_user(self):
        registry = AccountRegistry("svc")
        assert registry.create_account("a") is registry.create_account("a")

    def test_tokens_are_service_scoped(self):
        token_a = AccountRegistry("svc-a").create_account("u").token
        token_b = AccountRegistry("svc-b").create_account("u").token
        assert token_a != token_b

    def test_bad_tokens_rejected(self):
        registry = AccountRegistry("svc")
        with pytest.raises(AuthenticationError):
            registry.authenticate(None)
        with pytest.raises(AuthenticationError):
            registry.authenticate("tok_bogus")

    def test_accounts_listing(self):
        registry = AccountRegistry("svc")
        registry.create_account("b")
        registry.create_account("a")
        assert [a.user_id for a in registry.accounts()] == ["a", "b"]


class TestRateLimiter:
    def test_allows_within_limit(self):
        sim = Simulator()
        limiter = SlidingWindowRateLimiter(
            RateLimit(max_requests=3, window=1.0), now_fn=lambda: sim.now
        )
        for _ in range(3):
            limiter.check("tok")
        assert limiter.remaining("tok") == 0

    def test_blocks_over_limit_with_retry_after(self):
        sim = Simulator()
        limiter = SlidingWindowRateLimiter(
            RateLimit(max_requests=2, window=1.0), now_fn=lambda: sim.now
        )
        limiter.check("tok")
        limiter.check("tok")
        with pytest.raises(RateLimitExceededError) as info:
            limiter.check("tok")
        assert 0.0 <= info.value.retry_after <= 1.0

    def test_window_slides(self):
        sim = Simulator()
        limiter = SlidingWindowRateLimiter(
            RateLimit(max_requests=1, window=1.0), now_fn=lambda: sim.now
        )
        limiter.check("tok")
        sim.run_until(1.5)
        limiter.check("tok")  # must not raise

    def test_tokens_are_independent(self):
        sim = Simulator()
        limiter = SlidingWindowRateLimiter(
            RateLimit(max_requests=1, window=1.0), now_fn=lambda: sim.now
        )
        limiter.check("a")
        limiter.check("b")  # must not raise

    def test_limit_validation(self):
        with pytest.raises(ConfigurationError):
            RateLimit(max_requests=0, window=1.0)
        with pytest.raises(ConfigurationError):
            RateLimit(max_requests=1, window=0.0)

    def test_request_exactly_one_window_old_is_evicted(self):
        # Eviction is `history[0] <= now - window`: a request made
        # exactly `window` seconds ago no longer counts.
        sim = Simulator()
        limiter = SlidingWindowRateLimiter(
            RateLimit(max_requests=1, window=1.0), now_fn=lambda: sim.now
        )
        limiter.check("tok")
        sim.run_until(1.0)
        limiter.check("tok")  # must not raise
        assert limiter.remaining("tok") == 0

    def test_request_just_inside_window_still_counts(self):
        sim = Simulator()
        limiter = SlidingWindowRateLimiter(
            RateLimit(max_requests=1, window=1.0), now_fn=lambda: sim.now
        )
        limiter.check("tok")
        sim.run_until(0.999)
        with pytest.raises(RateLimitExceededError) as info:
            limiter.check("tok")
        # The oldest request expires at t=1.0, i.e. 0.001s from now.
        assert info.value.retry_after == pytest.approx(0.001)

    def test_denied_request_does_not_consume_budget(self):
        # A 429'd call must not extend the caller's penalty: only
        # admitted requests are recorded in the window.
        sim = Simulator()
        limiter = SlidingWindowRateLimiter(
            RateLimit(max_requests=1, window=1.0), now_fn=lambda: sim.now
        )
        limiter.check("tok")
        sim.run_until(0.5)
        with pytest.raises(RateLimitExceededError):
            limiter.check("tok")
        sim.run_until(1.1)
        limiter.check("tok")  # the denied call at 0.5 left no trace

    def test_window_refills_one_slot_at_a_time(self):
        sim = Simulator()
        limiter = SlidingWindowRateLimiter(
            RateLimit(max_requests=2, window=1.0), now_fn=lambda: sim.now
        )
        limiter.check("tok")          # t=0.0
        sim.run_until(0.6)
        limiter.check("tok")          # t=0.6
        sim.run_until(1.0)            # t=0.0 slot has just expired
        limiter.check("tok")          # t=1.0, occupies the freed slot
        with pytest.raises(RateLimitExceededError) as info:
            limiter.check("tok")      # t=0.6 slot still live
        assert info.value.retry_after == pytest.approx(0.6)


def make_endpoint_world(processing=0.0):
    sim = Simulator()
    topo = Topology()
    topo.add_region(Region("east"))
    topo.place_host("client", "east")
    topo.place_host("api", "east")
    rng = RandomSource(seed=1)
    net = Network(sim, LatencyModel(topo, rng.child("net"),
                                    JitterParams(sigma=0.0)))
    net.attach("client")
    accounts = AccountRegistry("svc")
    endpoint = ServiceEndpoint(
        sim, net, "api", accounts=accounts,
        rng=rng.child("endpoint"),
        processing_delay_median=processing,
    )
    account = accounts.create_account("alice")
    client = ApiClient(net, "client", "api", account.token)
    return sim, endpoint, client, account


def run_and_get(sim, future):
    sim.run_until(sim.now + 60.0)
    return future.value


class TestEndpointAndClient:
    def test_round_trip(self):
        sim, endpoint, client, _ = make_endpoint_world()
        endpoint.router.add("GET", "/hello",
                       lambda request, account: {"who": account.user_id})
        response = run_and_get(sim, client.get("/hello"))
        assert response.status == 200
        assert response.body == {"who": "alice"}
        assert client.requests_sent == 1

    def test_unknown_route_is_400(self):
        sim, endpoint, client, _ = make_endpoint_world()
        response = run_and_get(sim, client.get("/nowhere"))
        assert response.status == 400

    def test_bad_token_is_401(self):
        sim, endpoint, client, _ = make_endpoint_world()
        endpoint.router.add("GET", "/hello", lambda r, a: {})
        bad_client = ApiClient(client._network, "client", "api",
                               "tok_invalid")
        response = run_and_get(sim, bad_client.get("/hello"))
        assert response.status == 401

    def test_rate_limited_is_429(self):
        sim, endpoint, client, account = make_endpoint_world()
        limiter = SlidingWindowRateLimiter(
            RateLimit(max_requests=1, window=10.0), now_fn=lambda: sim.now
        )
        endpoint._rate_limiter = limiter
        endpoint.router.add("GET", "/hello", lambda r, a: {})
        first = client.get("/hello")
        second = client.get("/hello")
        sim.run_until(60.0)
        statuses = sorted([first.value.status, second.value.status])
        assert statuses == [200, 429]

    def test_service_error_in_handler_maps_to_status(self):
        sim, endpoint, client, _ = make_endpoint_world()

        def handler(request, account):
            raise InvalidRequestError("nope")

        endpoint.router.add("GET", "/hello", handler)
        response = run_and_get(sim, client.get("/hello"))
        assert response.status == 400
        assert response.body["error"] == "nope"

    def test_processing_delay_defers_response(self):
        sim, endpoint, client, _ = make_endpoint_world(processing=0.5)
        endpoint.router.add("GET", "/slow", lambda r, a: {})
        future = client.get("/slow")
        resolved_at = []
        future.add_callback(lambda f: resolved_at.append(sim.now))
        sim.run_until(60.0)
        # ~1ms RTT (intra-region) plus the >=0.4s processing delay.
        assert resolved_at[0] >= 0.4

    def test_handler_returning_future(self):
        sim, endpoint, client, _ = make_endpoint_world()
        pending = Future()

        def handler(request, account):
            sim.schedule_after(1.0, pending.resolve, {"late": True})
            return pending

        endpoint.router.add("GET", "/async", handler)
        response = run_and_get(sim, client.get("/async"))
        assert response.status == 200
        assert response.body == {"late": True}

    def test_handler_error_in_future_maps_to_status(self):
        sim, endpoint, client, _ = make_endpoint_world()
        pending = Future()

        def handler(request, account):
            sim.schedule_after(
                1.0, pending.fail, InvalidRequestError("late fail")
            )
            return pending

        endpoint.router.add("GET", "/async", handler)
        response = run_and_get(sim, client.get("/async"))
        assert response.status == 400

    def test_non_request_payload_is_400(self):
        sim, endpoint, client, _ = make_endpoint_world()
        response_future = client._network.rpc("client", "api", "garbage")
        response = run_and_get(sim, response_future)
        assert response.status == 400

    def test_post_requests_work(self):
        sim, endpoint, client, _ = make_endpoint_world()
        endpoint.router.add(
            "POST", "/items",
            lambda request, account: {"id": request.require_param("id")},
        )
        response = run_and_get(sim, client.post("/items", {"id": "M1"}))
        assert response.body == {"id": "M1"}
