"""Tests for the declarative routing layer (repro.webapi.router).

The redesign's guarantees under test: exact routes keep the historical
dict dispatch, ``{param}`` segments bind path parameters with
most-literal-first precedence, shape conflicts fail at registration
time, prefixes compose through ``include``, and the deprecated
``endpoint.route(...)`` shim still registers (with a warning) without
disturbing stats accounting.
"""

import pytest

from repro.errors import ConfigurationError
from repro.webapi import Resource, RouteSpec, Router
from repro.webapi.router import split_path


def handler(request, account=None):
    return {"ok": True}


class TestRouteSpec:
    def test_default_name_is_method_and_pattern(self):
        spec = RouteSpec("GET", "/posts", handler)
        assert spec.name == "GET /posts"
        named = RouteSpec("GET", "/posts", handler, name="posts.list")
        assert named.name == "posts.list"

    def test_rejects_unknown_method_and_relative_pattern(self):
        with pytest.raises(ConfigurationError):
            RouteSpec("PATCH", "/posts", handler)
        with pytest.raises(ConfigurationError):
            RouteSpec("GET", "posts", handler)

    def test_param_detection_and_binding(self):
        spec = RouteSpec("GET", "/hunts/{hunt_id}/results", handler)
        assert spec.has_params
        assert spec.param_names() == ("hunt_id",)
        assert spec.match(split_path("/hunts/h0001/results")) == {
            "hunt_id": "h0001"
        }
        assert spec.match(split_path("/hunts/h0001")) is None
        assert spec.match(split_path("/posts/h0001/results")) is None


class TestRouterRegistration:
    def test_exact_routes_resolve_by_dict_lookup(self):
        router = Router()
        spec = router.add("GET", "/feed", handler)
        match = router.resolve("GET", "/feed")
        assert match is not None
        assert match.route is spec
        assert match.path_params == {}
        assert router.resolve("POST", "/feed") is None
        assert router.resolve("GET", "/feed/extra") is None

    def test_param_routes_bind_path_params(self):
        router = Router()
        router.add("GET", "/hunts/{hunt_id}", handler)
        match = router.resolve("GET", "/hunts/h0042")
        assert match is not None
        assert match.path_params == {"hunt_id": "h0042"}

    def test_most_literal_pattern_wins(self):
        router = Router()
        # Registration order is deliberately the wrong way around.
        wildcard = router.add("GET", "/hunts/{hunt_id}", handler)
        literal = router.add("GET", "/hunts/all",
                             lambda request, account=None: {})
        assert router.resolve("GET", "/hunts/all").route is literal
        assert router.resolve("GET", "/hunts/h1").route is wildcard

    def test_same_shape_conflict_raises(self):
        router = Router()
        router.add("GET", "/hunts/{hunt_id}", handler)
        with pytest.raises(ConfigurationError):
            router.add("GET", "/hunts/{other}", handler)
        # A different method is a different shape.
        router.add("POST", "/hunts/{hunt_id}", handler)

    def test_duplicate_name_raises(self):
        router = Router()
        router.add("GET", "/a", handler, name="thing")
        with pytest.raises(ConfigurationError):
            router.add("GET", "/b", handler, name="thing")

    def test_route_named_lookup(self):
        router = Router()
        spec = router.add("GET", "/a", handler, name="thing")
        assert router.route_named("thing") is spec
        with pytest.raises(ConfigurationError):
            router.route_named("missing")

    def test_len_and_routes_enumeration(self):
        router = Router()
        router.add("GET", "/b", handler)
        router.add("GET", "/a", handler)
        router.add("GET", "/a/{x}", handler)
        assert len(router) == 3
        assert [spec.pattern for spec in router.routes()] == [
            "/a", "/a/{x}", "/b"
        ]


class TestPrefixAndMounting:
    def test_prefix_applies_to_registration_and_resolution(self):
        router = Router(prefix="/v1")
        router.add("GET", "/hunts", handler)
        assert router.resolve("GET", "/v1/hunts") is not None
        assert router.resolve("GET", "/hunts") is None

    def test_prefix_must_be_absolute(self):
        with pytest.raises(ConfigurationError):
            Router(prefix="v1")

    def test_include_composes_prefixes(self):
        inner = Router()
        inner.add("GET", "/status", handler, name="inner.status")
        outer = Router(prefix="/v1")
        outer.include(inner, prefix="/admin")
        match = outer.resolve("GET", "/v1/admin/status")
        assert match is not None
        assert match.route.name == "inner.status"

    def test_resource_registration(self):
        class Hunts:
            def routes(self):
                return (
                    RouteSpec("GET", "/hunts", handler,
                              name="hunts.list"),
                    RouteSpec("GET", "/hunts/{hunt_id}", handler,
                              name="hunts.status"),
                )

        assert isinstance(Hunts(), Resource)
        router = Router(prefix="/v1")
        specs = router.add_resource(Hunts())
        assert [spec.pattern for spec in specs] == [
            "/v1/hunts", "/v1/hunts/{hunt_id}"
        ]
        assert router.resolve("GET", "/v1/hunts/h9") is not None

    def test_delay_overrides_survive_prefixing(self):
        router = Router(prefix="/v1")
        spec = router.add("POST", "/posts", handler,
                          processing_delay_median=0.08,
                          processing_delay_sigma=0.3)
        assert spec.processing_delay_median == 0.08
        assert spec.processing_delay_sigma == 0.3


class TestEndpointShim:
    def test_route_shim_warns_and_still_registers(self):
        from repro.net import (
            JitterParams,
            LatencyModel,
            Network,
            Region,
            Topology,
        )
        from repro.sim import RandomSource, Simulator
        from repro.webapi import AccountRegistry, ServiceEndpoint

        sim = Simulator()
        topo = Topology()
        topo.add_region(Region("east"))
        topo.place_host("api", "east")
        rng = RandomSource(seed=1)
        net = Network(sim, LatencyModel(topo, rng.child("net"),
                                        JitterParams(sigma=0.0)))
        endpoint = ServiceEndpoint(
            sim, net, "api", accounts=AccountRegistry("svc"),
            rng=rng.child("endpoint"),
        )
        with pytest.warns(DeprecationWarning):
            endpoint.route("GET", "/ping", handler)
        assert endpoint.router.resolve("GET", "/ping") is not None
