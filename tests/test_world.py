"""Tests for repro.world: the partitioned simulated-world engine.

The load-bearing property throughout is byte-identity across physical
topology: a world spec run on 1 shard and the same spec run on N
shards (on any lane packing) must produce identical signatures,
because every ordering decision keys on logical replica identities and
simulated times, never on the shard cut.  The suite checks the parts
(spec placement, bus total order, columnar buffer value-key
materialization, lane planning) and then the whole — including a
hypothesis sweep over randomized topologies and a regression for a
partition nemesis spanning the shard cut.
"""

from dataclasses import replace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError, SimulationError
from repro.fleet.topology import lane_loads, plan_assignment
from repro.scenario import load_scenario
from repro.scenario.schema import ServiceSpec
from repro.sim import Simulator
from repro.world import (
    CohortBuffer,
    WorldBus,
    WorldPartition,
    WorldSpec,
    run_world,
    world_from_scenario,
)

SCENARIO = "examples/scenarios/gossip_world.toml"

#: A world small enough to run in milliseconds but big enough that
#: every cohort spans replicas (and, at shards > 1, the shard cut).
SMALL = dict(
    sessions=40, replicas=6, cohort_size=4,
    writes_per_session=1, reads_per_session=1,
    arrival_window=30.0, think_median=20.0, hop_median=15.0,
    epoch=10.0,
)


def small_spec(**overrides) -> WorldSpec:
    return WorldSpec(name="w", **{**SMALL, **overrides})


class TestWorldSpec:
    def test_rejects_degenerate_scale(self):
        with pytest.raises(SimulationError):
            small_spec(sessions=0)
        with pytest.raises(SimulationError):
            small_spec(replicas=1)
        with pytest.raises(SimulationError):
            small_spec(cohort_size=1)
        with pytest.raises(SimulationError):
            small_spec(epoch=0.0)
        with pytest.raises(SimulationError):
            small_spec(fanout=0)

    def test_shards_bounded_by_replicas(self):
        with pytest.raises(SimulationError):
            small_spec(shards=7)
        with pytest.raises(SimulationError):
            small_spec(shards=0)
        assert small_spec(shards=6).shards == 6

    def test_partition_validation(self):
        with pytest.raises(SimulationError):
            WorldPartition(start=5.0, end=5.0, side=(0,))
        with pytest.raises(SimulationError):
            WorldPartition(start=0.0, end=10.0, side=())
        with pytest.raises(SimulationError):
            small_spec(partitions=(
                WorldPartition(start=0.0, end=10.0, side=(0, 6)),
            ))
        cut = WorldPartition(start=0.0, end=10.0, side=(3, 1, 1))
        assert cut.side == (1, 3)  # normalized: sorted, deduped
        assert cut.crosses(1, 2) and not cut.crosses(1, 3)
        assert cut.active_at(0.0) and not cut.active_at(10.0)

    def test_cohort_arithmetic_covers_every_session(self):
        spec = small_spec(sessions=10, cohort_size=4)
        assert spec.cohort_count == 3
        sizes = [spec.cohort_sessions(c)
                 for c in range(spec.cohort_count)]
        assert sizes == [4, 4, 2]
        assert sum(sizes) == spec.sessions

    def test_readers_never_share_the_writer_replica(self):
        spec = small_spec()
        for cohort in range(spec.cohort_count):
            home = spec.home_replica(cohort)
            for member in range(1, spec.cohort_sessions(cohort)):
                assert spec.reader_replica(cohort, member) != home

    def test_replica_shard_is_a_contiguous_onto_cut(self):
        spec = small_spec(shards=4)
        shards = [spec.replica_shard(r) for r in range(spec.replicas)]
        assert shards == sorted(shards)          # contiguous blocks
        assert set(shards) == set(range(4))      # every shard used
        # The cut is placement only: logical placement is unchanged.
        serial = small_spec()
        for cohort in range(spec.cohort_count):
            assert spec.home_replica(cohort) == \
                serial.home_replica(cohort)

    def test_with_topology_changes_placement_only(self):
        spec = small_spec()
        moved = spec.with_topology(3, lanes=2)
        assert (moved.shards, moved.lanes) == (3, 2)
        assert replace(moved, shards=1, lanes=None) == spec


class TestWorldBus:
    def test_floor_latency_and_total_order(self):
        bus = WorldBus(epoch=10.0)
        bus.send(origin=1, target=0, send_time=0.0, latency=2.0,
                 kind="rumor", payload=("k", "m1"))
        bus.send(origin=0, target=1, send_time=0.0, latency=25.0,
                 kind="rumor", payload=("k", "m0"))
        bus.send(origin=0, target=2, send_time=0.0, latency=2.0,
                 kind="rumor", payload=("k", "m0"))
        assert bus.earliest() == 10.0  # floor: latency 2 -> one epoch
        due = bus.drain_until(30.0)
        assert [m.key for m in due] == sorted(m.key for m in due)
        # Same deliver time: origin then per-origin seq break the tie.
        assert [(m.origin, m.target) for m in due[:2]] == \
            [(0, 2), (1, 0)]
        assert bus.pending_count == 0 and bus.earliest() is None

    def test_self_send_is_a_protocol_error(self):
        bus = WorldBus(epoch=10.0)
        with pytest.raises(SimulationError):
            bus.send(origin=2, target=2, send_time=0.0, latency=1.0,
                     kind="rumor")

    def test_partition_defers_with_original_latency(self):
        cut = WorldPartition(start=0.0, end=40.0, side=(0,))
        bus = WorldBus(epoch=10.0, partitions=(cut,))
        bus.send(origin=0, target=1, send_time=5.0, latency=12.0,
                 kind="rumor")           # crosses while active
        bus.send(origin=1, target=2, send_time=5.0, latency=12.0,
                 kind="rumor")           # same side: unaffected
        bus.send(origin=0, target=1, send_time=40.0, latency=12.0,
                 kind="rumor")           # healed: unaffected
        times = sorted(m.deliver_time for m in bus.drain_until(1e9))
        assert times == [17.0, 52.0, 52.0]
        assert bus.deferred_total == 1 and bus.sent_total == 3


class TestCohortBuffer:
    def test_materialization_orders_by_value_key(self):
        def filled(order):
            buffer = CohortBuffer(0, expected=3)
            ops = {
                "w": lambda: buffer.add_write("s0", "m0", 1.0, 3.0),
                "r1": lambda: buffer.add_read("s1", ("m0",), 2.0, 4.0),
                "r2": lambda: buffer.add_read("s2", (), 2.0, 4.0),
            }
            for name in order:
                ops[name]()
            return buffer.materialize(test_id="t/c0", service="w")

        first = filled(["w", "r1", "r2"])
        second = filled(["r2", "r1", "w"])  # scrambled arrival
        assert [(op.agent, op.invoke_local)
                for op in first.operations] == \
            [(op.agent, op.invoke_local) for op in second.operations]
        assert first.agents == ("s0", "s1", "s2")

    def test_completion_tracks_expected_count(self):
        buffer = CohortBuffer(3, expected=2)
        assert not buffer.complete and len(buffer) == 0
        buffer.add_write("s0", "m0", 0.0, 1.0)
        buffer.add_read("s1", ("m0",), 2.0, 3.0)
        assert buffer.complete and len(buffer) == 2


class TestPlanAssignment:
    def test_lpt_greedy_with_index_tiebreaks(self):
        plan = plan_assignment([5.0, 4.0, 3.0, 3.0], lanes=2)
        assert plan == ((0, 3), (1, 2))
        assert lane_loads([5.0, 4.0, 3.0, 3.0], plan) == [8.0, 7.0]

    def test_fewer_items_than_lanes_leaves_empty_lanes(self):
        plan = plan_assignment([1.0, 1.0], lanes=4)
        assert plan == ((0,), (1,), (), ())

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            plan_assignment([1.0], lanes=0)
        with pytest.raises(ValueError):
            plan_assignment([-1.0], lanes=1)


class TestSimulatorPeek:
    def test_next_event_time_tracks_the_live_head(self):
        sim = Simulator()
        assert sim.next_event_time() is None
        handle = sim.schedule_at(5.0, lambda: None)
        sim.schedule_at(9.0, lambda: None)
        assert sim.next_event_time() == 5.0
        handle.cancel()
        assert sim.next_event_time() == 9.0  # cancelled head skipped
        sim.run_until(10.0)
        assert sim.next_event_time() is None


class TestWorldParity:
    def test_every_shard_count_is_byte_identical(self):
        serial = run_world(small_spec(), seed=7)
        assert serial.tests == small_spec().cohort_count
        assert serial.ops == small_spec().sessions  # 1 op/session here
        for shards in (2, 3, 6):
            sharded = run_world(
                small_spec().with_topology(shards), seed=7)
            assert sharded.signature == serial.signature
            assert sharded.anomalies == serial.anomalies
            assert sharded.tests == serial.tests

    def test_lane_packing_is_result_neutral(self):
        spec = small_spec(shards=3)
        signatures = {
            run_world(spec.with_topology(3, lanes=lanes),
                      seed=1).signature
            for lanes in (1, 2, 3)
        }
        assert len(signatures) == 1

    def test_same_seed_repeats_and_seeds_differ(self):
        spec = small_spec(shards=2)
        assert run_world(spec, seed=3).signature == \
            run_world(spec, seed=3).signature
        assert run_world(spec, seed=3).signature != \
            run_world(spec, seed=4).signature

    def test_partition_spanning_the_shard_cut_stays_identical(self):
        """Regression: a nemesis whose side straddles shards must not
        break parity — deferral is a pure function of endpoints and
        times, so where the endpoints physically live is invisible."""
        cut = WorldPartition(start=10.0, end=60.0, side=(0, 3))
        spanning = small_spec(partitions=(cut,))
        serial = run_world(spanning, seed=7)
        assert serial.bus_deferred > 0  # the nemesis actually bit
        for shards in (2, 3, 6):
            sharded = run_world(spanning.with_topology(shards), seed=7)
            assert sharded.signature == serial.signature
            assert sharded.bus_deferred == serial.bus_deferred
        # And the nemesis changes history relative to a calm world.
        assert serial.signature != \
            run_world(small_spec(), seed=7).signature

    def test_result_accounting(self):
        spec = small_spec(shards=2)
        result = run_world(spec, seed=0)
        assert result.shards == 2 and result.replicas == spec.replicas
        assert result.epochs > 0 and result.events_processed > 0
        assert result.bus_messages > 0
        assert sorted(index for lane in result.lanes
                      for index in lane) == [0, 1]
        assert result.max_stream_state > 0
        assert result.summary()["signature"] == result.signature

    def test_an_engine_runs_once(self):
        from repro.world import WorldEngine

        engine = WorldEngine(small_spec(), seed=0)
        engine.run()
        with pytest.raises(SimulationError):
            engine.run()


@settings(max_examples=12, deadline=None)
@given(
    replicas=st.integers(min_value=2, max_value=7),
    shard_pick=st.integers(min_value=2, max_value=7),
    sessions=st.integers(min_value=6, max_value=40),
    cohort_size=st.integers(min_value=2, max_value=5),
    fanout=st.integers(min_value=1, max_value=3),
    seed=st.integers(min_value=0, max_value=2),
)
def test_randomized_topologies_match_serial(replicas, shard_pick,
                                            sessions, cohort_size,
                                            fanout, seed):
    """Property: whatever the (shards, lanes) cut drawn, the signature
    equals the serial (shards=1) run of the same logical world."""
    shards = 1 + shard_pick % replicas
    spec = small_spec(
        sessions=sessions, replicas=replicas, cohort_size=cohort_size,
        fanout=fanout,
    )
    serial = run_world(spec, seed=seed)
    sharded = run_world(
        spec.with_topology(shards, lanes=max(1, shards - 1)),
        seed=seed,
    )
    assert sharded.signature == serial.signature
    assert sharded.anomalies == serial.anomalies


class TestScenarioLowering:
    def test_example_scenario_lowers_and_rescales(self):
        scenario = load_scenario(SCENARIO)
        assert scenario.topology is not None
        assert scenario.topology.shards == 4
        spec = world_from_scenario(scenario, shards=2, sessions=48)
        assert (spec.shards, spec.sessions) == (2, 48)
        assert spec.replicas == scenario.topology.replicas
        assert spec.name == scenario.name

    def test_scenario_world_parity_across_shard_overrides(self):
        scenario = load_scenario(SCENARIO)
        runs = [
            run_world(world_from_scenario(scenario, shards=shards,
                                          sessions=36), seed=5)
            for shards in (1, 4)
        ]
        assert runs[0].signature == runs[1].signature

    def test_missing_topology_is_a_configuration_error(self):
        scenario = load_scenario(SCENARIO)
        with pytest.raises(ConfigurationError):
            world_from_scenario(replace(scenario, topology=None))

    def test_non_gossip_archetype_refuses_to_lower(self):
        scenario = load_scenario(SCENARIO)
        builtin = replace(
            scenario,
            service=ServiceSpec(archetype="builtin", base="blogger"),
        )
        with pytest.raises(ConfigurationError):
            world_from_scenario(builtin)


class TestWorldCli:
    def test_world_command_prints_the_signature(self, capsys):
        from repro.cli import main as repro_main

        code = repro_main([
            "world", "--scenario", SCENARIO,
            "--sessions", "36", "--shards", "2", "--seed", "5",
        ])
        out = capsys.readouterr().out
        assert code == 0
        expected = run_world(
            world_from_scenario(load_scenario(SCENARIO), shards=2,
                                sessions=36), seed=5)
        assert expected.signature in out

    def test_world_command_json_summary(self, capsys):
        import json

        from repro.cli import main as repro_main

        code = repro_main([
            "world", "--scenario", SCENARIO,
            "--sessions", "36", "--json",
        ])
        assert code == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["sessions"] == 36
        assert summary["shards"] == 4  # the scenario's own cut
