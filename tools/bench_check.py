"""CI gate: benchmark results must match their checked-in baselines.

Each ``benchmarks/test_<name>.py`` that writes a machine-readable
``BENCH_<name>.json`` can check a baseline copy into
``benchmarks/baselines/``.  This gate re-runs those benchmarks into a
scratch directory and compares fresh against baseline field by field:

* **deterministic fields** (counts, totals, signatures, config echo)
  must match *exactly* — a drift means simulated behaviour changed
  and the baseline must be consciously regenerated;
* **performance fields** (named ``*_per_s``, ``*_seconds``,
  ``*_over_*``, ``*elapsed*``) get a tolerance band: CI machines are
  noisy, so only an order-of-magnitude regression fails the gate
  (``--min-ratio`` tightens or loosens it).

    python tools/bench_check.py [--update] [names...]

``--update`` regenerates the named (default: all) baselines in place;
run it after an intentional behaviour change and commit the diff.
Exit code 0 when every baseline matches, 1 with a diagnostic.
"""

import argparse
import json
import os
import shutil
import subprocess
import sys
import tempfile
from pathlib import Path

__all__ = ["compare_payloads", "run_benchmark", "main"]

REPO_ROOT = Path(__file__).resolve().parent.parent
BASELINE_DIR = REPO_ROOT / "benchmarks" / "baselines"

#: Substrings that mark a field as performance-dependent (banded)
#: rather than deterministic (exact).
PERF_MARKERS = ("_per_s", "_seconds", "_over_", "elapsed")

#: The REPRO_BENCH_TESTS scale baselines are recorded at.  Fixed so a
#: fresh run is comparable: deterministic fields depend on it.
BASELINE_BENCH_TESTS = "60"


def is_perf_field(key: str) -> bool:
    return any(marker in key for marker in PERF_MARKERS)


def compare_payloads(name, baseline, fresh, min_ratio, failures):
    """Append a failure line per mismatched field (recursing dicts)."""

    def walk(path, base_value, fresh_value):
        if isinstance(base_value, dict) and \
                isinstance(fresh_value, dict):
            for key in sorted(set(base_value) | set(fresh_value)):
                if key not in base_value:
                    failures.append(
                        f"{name}: {path}{key} is new (not in "
                        "baseline); run --update to record it")
                elif key not in fresh_value:
                    failures.append(
                        f"{name}: {path}{key} vanished from the "
                        "fresh run")
                else:
                    walk(f"{path}{key}.", base_value[key],
                         fresh_value[key])
            return
        leaf = path.rstrip(".")
        field = leaf.rsplit(".", 1)[-1]
        if is_perf_field(field):
            if not isinstance(base_value, (int, float)) or \
                    not isinstance(fresh_value, (int, float)):
                failures.append(
                    f"{name}: perf field {leaf} is not numeric "
                    f"({base_value!r} vs {fresh_value!r})")
            elif field.endswith("_per_s"):
                # Throughput: higher is better, only a collapse fails.
                if fresh_value < base_value * min_ratio:
                    failures.append(
                        f"{name}: {leaf} regressed "
                        f"{base_value:.1f} -> {fresh_value:.1f} "
                        f"(floor {base_value * min_ratio:.1f} at "
                        f"min-ratio {min_ratio})")
            else:
                # Cost ratio / duration: lower is better.
                if base_value > 0 and \
                        fresh_value > base_value / min_ratio:
                    failures.append(
                        f"{name}: {leaf} regressed "
                        f"{base_value:.3f} -> {fresh_value:.3f} "
                        f"(ceiling {base_value / min_ratio:.3f} at "
                        f"min-ratio {min_ratio})")
        elif base_value != fresh_value:
            failures.append(
                f"{name}: deterministic field {leaf} drifted: "
                f"baseline {base_value!r} != fresh {fresh_value!r}; "
                "if intentional, regenerate with --update")

    walk("", baseline, fresh)


def run_benchmark(name: str, out_dir: Path) -> Path | None:
    """Run one benchmark module; returns the fresh JSON path."""
    env = dict(os.environ)
    env["REPRO_BENCH_OUT"] = str(out_dir)
    env.setdefault("REPRO_BENCH_TESTS", BASELINE_BENCH_TESTS)
    module = REPO_ROOT / "benchmarks" / f"test_{name}.py"
    if not module.is_file():
        # A benchmark module may carry a longer name than the JSON it
        # writes (test_serve_scheduler.py -> BENCH_serve.json).
        candidates = sorted(
            (REPO_ROOT / "benchmarks").glob(f"test_{name}_*.py"))
        if candidates:
            module = candidates[0]
    result = subprocess.run(
        [sys.executable, "-m", "pytest", str(module), "-q",
         "--benchmark-disable-gc"],
        cwd=REPO_ROOT, env=env, capture_output=True, text=True,
    )
    if result.returncode != 0:
        print(result.stdout)
        print(result.stderr, file=sys.stderr)
        return None
    fresh = out_dir / f"BENCH_{name}.json"
    return fresh if fresh.is_file() else None


def baseline_names() -> list[str]:
    return sorted(
        path.stem[len("BENCH_"):]
        for path in BASELINE_DIR.glob("BENCH_*.json")
    )


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="compare benchmark JSON against baselines")
    parser.add_argument("names", nargs="*",
                        help="benchmark names (default: every "
                             "checked-in baseline)")
    parser.add_argument("--update", action="store_true",
                        help="regenerate the baselines in place")
    parser.add_argument("--min-ratio", type=float, default=0.1,
                        help="perf tolerance: throughput may not "
                             "fall below baseline*R, costs may not "
                             "exceed baseline/R (default 0.1)")
    args = parser.parse_args(argv)

    names = args.names or baseline_names()
    if not names:
        print("bench check: no baselines found under "
              f"{BASELINE_DIR}; run with --update <name> to record "
              "the first one")
        return 1

    failures: list[str] = []
    with tempfile.TemporaryDirectory() as scratch:
        for name in names:
            fresh_path = run_benchmark(name, Path(scratch))
            if fresh_path is None:
                failures.append(
                    f"{name}: benchmark run failed or wrote no "
                    f"BENCH_{name}.json")
                continue
            baseline_path = BASELINE_DIR / f"BENCH_{name}.json"
            if args.update:
                BASELINE_DIR.mkdir(parents=True, exist_ok=True)
                shutil.copyfile(fresh_path, baseline_path)
                print(f"bench check: baseline updated: "
                      f"{baseline_path}")
                continue
            if not baseline_path.is_file():
                failures.append(
                    f"{name}: no baseline {baseline_path}; record "
                    "one with --update")
                continue
            baseline = json.loads(
                baseline_path.read_text(encoding="utf-8"))
            fresh = json.loads(
                fresh_path.read_text(encoding="utf-8"))
            compare_payloads(name, baseline, fresh,
                             args.min_ratio, failures)

    if args.update:
        return 0
    if failures:
        print(f"bench check FAILED ({len(names)} baseline(s)):")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print(f"bench check passed: {len(names)} baseline(s) match "
          f"({', '.join(names)})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
