"""Calibration report: measured anomaly signatures vs. the paper's.

Run during development to eyeball a service's fit:

    python tools/calibrate.py [num_tests] [seed] [service ...]

Thin shim over :mod:`repro.calibrate`: the paper's numbers live in
``repro.calibrate.targets`` (the single source of truth, also used by
the search and the CI fidelity gate), the scoring in
``repro.calibrate.objective``, and the rendering in
``repro.calibrate.report``.  Each service prints the measured-vs-paper
term table for the *default* profile and, when a calibrated winner is
checked in, a default-vs-calibrated comparison.

For the actual parameter search, use::

    repro-consistency calibrate --service googleplus

which persists trials and reports the winning profile.
"""

import sys

from repro.calibrate import (
    CALIBRATED_ASSIGNMENTS,
    calibrated_params,
    comparison_table,
    default_objective,
    fidelity_table,
    target_services,
)
from repro.methodology import CampaignConfig, run_campaign

__all__ = ["main"]


def main():
    args = sys.argv[1:]
    num_tests = int(args[0]) if args else 40
    seed = int(args[1]) if len(args) > 1 else 7
    services = args[2:] or list(target_services())
    for service in services:
        objective = default_objective(service)
        default_score = objective.evaluate(run_campaign(
            service, CampaignConfig(num_tests=num_tests, seed=seed)
        ))
        print(f"\n=== {service} ({num_tests} tests/type, "
              f"seed {seed}) ===")
        if not CALIBRATED_ASSIGNMENTS[service]:
            print(fidelity_table(default_score))
            continue
        calibrated_score = objective.evaluate(run_campaign(
            service, CampaignConfig(
                num_tests=num_tests, seed=seed,
                service_params=calibrated_params(service),
            )
        ))
        print(comparison_table(default_score, calibrated_score))


if __name__ == "__main__":
    main()
