"""Calibration report: measured anomaly signatures vs. the paper's.

Run during development to tune service parameters:

    python tools/calibrate.py [num_tests] [seed] [service ...]

Prints, per service, the per-test-type prevalence of each anomaly next
to the paper's Figure 3 values, per-pair divergence rates (Figure 8),
window medians (Figures 9/10), and Table I/II read counts.
"""

import sys
import time

from repro.core.anomalies import (
    ALL_ANOMALIES,
    CONTENT_DIVERGENCE,
    ORDER_DIVERGENCE,
)
from repro.methodology import CampaignConfig, run_campaign

PAPER = {
    "googleplus": {
        "read_your_writes": 0.22, "monotonic_writes": 0.06,
        "monotonic_reads": 0.25, "writes_follow_reads": 0.10,
        "content_divergence": 0.85, "order_divergence": 0.14,
        "reads_test1": 48,
    },
    "blogger": {a: 0.0 for a in ALL_ANOMALIES} | {"reads_test1": 11},
    "facebook_feed": {
        "read_your_writes": 0.99, "monotonic_writes": 0.89,
        "monotonic_reads": 0.46, "writes_follow_reads": 0.50,
        "content_divergence": 0.60, "order_divergence": 1.00,
        "reads_test1": 14,
    },
    "facebook_group": {
        "read_your_writes": 0.00, "monotonic_writes": 0.93,
        "monotonic_reads": 0.001, "writes_follow_reads": 0.002,
        "content_divergence": 0.013, "order_divergence": 0.0,
        "reads_test1": 11,
    },
}

SESSION_TYPE = "test1"
DIVERGENCE_TYPE = "test2"


def main():
    args = sys.argv[1:]
    num_tests = int(args[0]) if args else 40
    seed = int(args[1]) if len(args) > 1 else 7
    services = args[2:] or list(PAPER)
    for service in services:
        t0 = time.time()
        result = run_campaign(service, CampaignConfig(
            num_tests=num_tests, seed=seed,
        ))
        elapsed = time.time() - t0
        print(f"\n=== {service} ({num_tests} tests/type, "
              f"{elapsed:.1f}s wall) ===")
        paper = PAPER[service]
        for anomaly in ALL_ANOMALIES:
            test_type = (DIVERGENCE_TYPE if "divergence" in anomaly
                         else SESSION_TYPE)
            measured = result.prevalence(anomaly, test_type)
            print(f"  {anomaly:22s} measured={measured:6.2%}  "
                  f"paper={paper[anomaly]:6.2%}   [{test_type}]")
        t1 = result.of_type("test1")
        reads = (sum(sum(r.reads_per_agent.values()) for r in t1)
                 / (len(t1) * 3))
        print(f"  reads/agent/test1      measured={reads:6.1f}  "
              f"paper={paper['reads_test1']:6d}")
        pair_rates = {}
        t2 = result.of_type("test2")
        for record in t2:
            for pair in record.report.diverged_pairs(CONTENT_DIVERGENCE):
                pair_rates[pair] = pair_rates.get(pair, 0) + 1
        print("  content divergence by pair:",
              {f"{a[:2]}-{b[:2]}": f"{n / len(t2):.0%}"
               for (a, b), n in sorted(pair_rates.items())})
        order_rates = {}
        for record in t2:
            for pair in record.report.diverged_pairs(ORDER_DIVERGENCE):
                order_rates[pair] = order_rates.get(pair, 0) + 1
        print("  order divergence by pair:  ",
              {f"{a[:2]}-{b[:2]}": f"{n / len(t2):.0%}"
               for (a, b), n in sorted(order_rates.items())})
        # Window medians per pair (largest window per test).
        for label, attr in (("content", "content_windows"),
                            ("order", "order_windows")):
            medians = {}
            for record in t2:
                for pair, window in getattr(record, attr).items():
                    if window.largest is not None and window.converged:
                        medians.setdefault(pair, []).append(
                            window.largest)
            shown = {
                f"{a[:2]}-{b[:2]}":
                f"{sorted(vals)[len(vals) // 2]:.2f}s(n={len(vals)})"
                for (a, b), vals in sorted(medians.items())
            }
            print(f"  {label} window medians:", shown)


if __name__ == "__main__":
    main()
