"""CI gate: checked-in calibrated profiles must stay within budget.

For every service with paper targets this runs one fixed-seed
evaluation campaign per profile and asserts two things:

1. **Budget** — the weighted fidelity loss of the checked-in
   calibrated profile (``repro.calibrate.winners``) stays within its
   ``FIDELITY_BUDGETS`` ceiling.  A model or analysis change that
   drifts a service away from the paper's numbers fails CI instead of
   silently degrading the reproduction.
2. **Improvement** — for every service whose calibrated assignment is
   non-empty, the calibrated profile scores strictly better than the
   default profile under the same evaluation.  A winner that stops
   winning (because the model underneath it changed) must be
   re-calibrated, not kept on faith.

    python tools/fidelity_check.py [num_tests] [seed] [fidelity.json]

The budgets in ``winners.py`` are tied to the *default* arguments;
override them only for local experiments.  Exit code 0 when every
service passes, 1 with a diagnostic otherwise.
"""

import sys

from repro.calibrate import (
    CALIBRATED_ASSIGNMENTS,
    FIDELITY_BUDGETS,
    calibrated_params,
    default_objective,
    fidelity_table,
    target_services,
    write_fidelity_json,
)
from repro.methodology import CampaignConfig, run_campaign

__all__ = ["evaluate", "main"]

DEFAULT_TESTS = 40
DEFAULT_SEED = 7


def evaluate(service, params, num_tests, seed):
    config = CampaignConfig(num_tests=num_tests, seed=seed,
                            service_params=params)
    return default_objective(service).evaluate(
        run_campaign(service, config)
    )


def main():
    args = sys.argv[1:]
    num_tests = int(args[0]) if args else DEFAULT_TESTS
    seed = int(args[1]) if len(args) > 1 else DEFAULT_SEED
    json_out = args[2] if len(args) > 2 else None

    failures = []
    scores = {}
    for service in target_services():
        budget = FIDELITY_BUDGETS[service]
        calibrated = evaluate(service, calibrated_params(service),
                              num_tests, seed)
        scores[service] = calibrated
        line = (f"{service}: calibrated loss {calibrated.total:.4f} "
                f"(budget {budget:.2f})")
        if calibrated.total > budget:
            failures.append(
                f"{service}: calibrated loss {calibrated.total:.4f} "
                f"exceeds budget {budget:.2f}"
            )
            print(fidelity_table(calibrated))
        if CALIBRATED_ASSIGNMENTS[service]:
            default = evaluate(service, None, num_tests, seed)
            scores[f"{service}.default"] = default
            line += f", default loss {default.total:.4f}"
            if calibrated.total >= default.total:
                failures.append(
                    f"{service}: calibrated loss "
                    f"{calibrated.total:.4f} is not better than the "
                    f"default profile's {default.total:.4f}; "
                    "re-calibrate the winner"
                )
        print(line)

    if json_out:
        write_fidelity_json(json_out, scores,
                            extra={"num_tests": num_tests,
                                   "seed": seed})
        print(f"fidelity report written to {json_out}")

    if failures:
        print("fidelity check FAILED:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print(f"fidelity check passed: {len(target_services())} services "
          f"within budget at {num_tests} tests/type, seed {seed}; "
          "every non-empty winner beats its default profile")
    return 0


if __name__ == "__main__":
    sys.exit(main())
