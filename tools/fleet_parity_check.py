"""CI gate: a 2-worker fleet must be bit-identical to a serial run.

Runs a small replicate fleet three ways — serial in-process, on two
worker processes, and resumed from the parallel run's artifact store —
and asserts the golden-signature digests and per-anomaly prevalence
statistics all agree, and that the resume executed zero shards.

    python tools/fleet_parity_check.py [num_tests] [seed]

Exit code 0 on parity, 1 with a diagnostic on any mismatch.
"""

import sys
import tempfile

from repro.fleet import FleetSpec, run_fleet
from repro.methodology import CampaignConfig, prevalence_statistics

__all__ = ["prevalences", "main"]

SERVICES = ("blogger", "googleplus")


def prevalences(outcome):
    table = {}
    for service, results in outcome.by_service().items():
        stats = prevalence_statistics(results)
        table[service] = {anomaly: entry.mean
                          for anomaly, entry in stats.items()}
    return table


def main():
    args = sys.argv[1:]
    num_tests = int(args[0]) if args else 4
    seed = int(args[1]) if len(args) > 1 else 11
    spec = FleetSpec(
        services=SERVICES,
        base_config=CampaignConfig(num_tests=num_tests, seed=seed,
                                   test_types=("test1",)),
        seeds=(seed, seed + 1),
    )

    serial = run_fleet(spec)
    with tempfile.TemporaryDirectory() as store:
        parallel = run_fleet(spec, jobs=2, out_dir=store)
        resumed = run_fleet(spec, jobs=2, out_dir=store)

    failures = []
    if parallel.signature() != serial.signature():
        failures.append(
            f"signature mismatch: serial {serial.signature()} "
            f"!= parallel {parallel.signature()}"
        )
    if resumed.signature() != serial.signature():
        failures.append(
            f"signature mismatch: serial {serial.signature()} "
            f"!= resumed {resumed.signature()}"
        )
    if resumed.executed or len(resumed.skipped) != spec.total_shards:
        failures.append(
            f"resume re-ran shards: executed={resumed.executed!r} "
            f"skipped={len(resumed.skipped)}/{spec.total_shards}"
        )
    if prevalences(parallel) != prevalences(serial):
        failures.append(
            f"prevalence mismatch:\n  serial   {prevalences(serial)}"
            f"\n  parallel {prevalences(parallel)}"
        )

    shards = spec.total_shards
    if failures:
        print(f"fleet parity check FAILED ({shards} shards):")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print(f"fleet parity check passed: {shards} shards, "
          f"serial == 2-worker == resumed "
          f"(signature {serial.signature()[:16]}), "
          f"resume skipped all {len(resumed.skipped)} shards")
    return 0


if __name__ == "__main__":
    sys.exit(main())
