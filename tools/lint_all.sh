#!/usr/bin/env bash
# Run the full static-analysis battery locally, the same way CI does:
#
#   tools/lint_all.sh             # lint src/ with repro.lint (+ ruff)
#   tools/lint_all.sh --format=json src tests
#
# Extra arguments are forwarded to `python -m repro.lint`.  The ruff
# layer (style / import order, configured under [tool.ruff] in
# pyproject.toml) runs only when ruff is installed — it is optional:
#
#   pip install -e ".[lint]"
set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== repro.lint (determinism & trace-safety) =="
python -m repro.lint "$@"

if command -v ruff >/dev/null 2>&1; then
    echo "== ruff (style + import order) =="
    ruff check src tests
else
    echo "== ruff not installed; skipping (pip install -e '.[lint]') =="
fi
