#!/usr/bin/env bash
# Run the full static-analysis battery locally, the same way CI does:
#
#   tools/lint_all.sh                       # whole-program lint over the
#                                           # same trees CI checks (+ ruff)
#   tools/lint_all.sh --format=json src     # custom repro.lint invocation
#
# Extra arguments replace the default `python -m repro.lint` invocation
# (`--project src tests tools benchmarks examples`).  The ruff layer
# (style / import order, configured under [tool.ruff] in pyproject.toml)
# runs only when ruff is installed — it is optional:
#
#   pip install -e ".[lint]"
#
# Exit status is non-zero if *any* layer that ran failed — including
# ruff when it is installed.
set -uo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

status=0

echo "== repro.lint (determinism & trace-safety, whole-program) =="
if [ "$#" -gt 0 ]; then
    python -m repro.lint "$@" || status=$?
else
    python -m repro.lint --project src tests tools benchmarks examples \
        || status=$?
fi

if command -v ruff >/dev/null 2>&1; then
    echo "== ruff (style + import order) =="
    ruff check src tests || status=$?
else
    echo "== ruff not installed; skipping (pip install -e '.[lint]') =="
fi

exit "$status"
