"""CI gate: obs exports must be deterministic and merge-stable.

Three escalating checks:

1. **Export determinism** — running the same (service, config, seed)
   campaign twice yields byte-identical metrics/span exports.
2. **Merge stability** — the same fleet spec run serially, on two
   workers, and in streaming mode produces one merged obs snapshot
   (worker scheduling and the detection path must never leak into
   telemetry).
3. **Serial/fleet byte parity** — a single-shard fleet's merged obs
   export equals the bare ``run_campaign`` export byte for byte, and
   a resumed fleet restores the identical snapshot from the store.

    python tools/obs_parity_check.py [num_tests] [seed]

Exit code 0 on parity, 1 with a diagnostic on any mismatch.
"""

import sys
import tempfile
from pathlib import Path

from repro.fleet import FleetSpec, run_fleet
from repro.methodology import CampaignConfig, run_campaign
from repro.obs.export import export_snapshot

__all__ = [
    "check_export_determinism",
    "check_merge_stability",
    "check_serial_fleet_byte_parity",
    "main",
]

SERVICES = ("blogger", "googleplus")


def _export_bytes(snapshot, directory, name):
    path = Path(directory) / name
    export_snapshot(snapshot, path)
    return path.read_bytes()


def check_export_determinism(num_tests, seed, failures):
    campaigns = 0
    with tempfile.TemporaryDirectory() as tmp:
        for service in SERVICES:
            config = CampaignConfig(num_tests=num_tests, seed=seed)
            first = run_campaign(service, config)
            second = run_campaign(service, config)
            campaigns += 2
            if _export_bytes(first.obs, tmp, f"{service}-a.jsonl") \
                    != _export_bytes(second.obs, tmp,
                                     f"{service}-b.jsonl"):
                failures.append(
                    f"{service}: same-seed obs exports differ"
                )
    return campaigns


def check_merge_stability(num_tests, seed, failures):
    spec = FleetSpec(
        services=SERVICES,
        base_config=CampaignConfig(num_tests=num_tests, seed=seed,
                                   test_types=("test1",)),
        seeds=(seed, seed + 1),
    )
    serial = run_fleet(spec).merged_obs()
    if serial is None:
        failures.append("serial fleet produced no merged obs")
        return spec.total_shards
    parallel = run_fleet(spec, jobs=2).merged_obs()
    if parallel != serial:
        failures.append("2-worker merged obs differs from serial")
    streaming = run_fleet(spec, stream=True).merged_obs()
    if streaming != serial:
        failures.append("streaming-mode merged obs differs from "
                        "batch-mode")
    return spec.total_shards


def check_serial_fleet_byte_parity(num_tests, seed, failures):
    config = CampaignConfig(num_tests=num_tests, seed=seed)
    spec = FleetSpec(services=("blogger",), base_config=config,
                     seeds=(seed,))
    with tempfile.TemporaryDirectory() as tmp:
        serial_bytes = _export_bytes(
            run_campaign("blogger", config).obs, tmp, "serial.jsonl"
        )
        store_dir = Path(tmp) / "store"
        fleet = run_fleet(spec, jobs=2, out_dir=store_dir)
        fleet_bytes = _export_bytes(fleet.merged_obs(), tmp,
                                    "fleet.jsonl")
        if fleet_bytes != serial_bytes:
            failures.append(
                "single-shard fleet merged obs export != serial "
                "campaign export"
            )
        resumed = run_fleet(spec, out_dir=store_dir)
        if not resumed.skipped:
            failures.append("resume re-executed a complete shard")
        resumed_obs = resumed.merged_obs()
        if resumed_obs is None:
            failures.append("resume did not restore obs snapshots "
                            "from the store")
        elif _export_bytes(resumed_obs, tmp,
                           "resumed.jsonl") != serial_bytes:
            failures.append("resumed fleet obs export != serial "
                            "campaign export")


def main():
    args = sys.argv[1:]
    num_tests = int(args[0]) if args else 4
    seed = int(args[1]) if len(args) > 1 else 11

    failures = []
    campaigns = check_export_determinism(num_tests, seed, failures)
    shards = check_merge_stability(num_tests, seed, failures)
    check_serial_fleet_byte_parity(num_tests, seed, failures)

    if failures:
        print(f"obs parity check FAILED ({campaigns} campaigns, "
              f"{shards} shards):")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print(f"obs parity check passed: {campaigns} campaigns export "
          f"byte-identically, serial == 2-worker == streaming merge "
          f"over {shards} shards, single-shard fleet export == "
          "serial export, resume restores snapshots")
    return 0


if __name__ == "__main__":
    sys.exit(main())
