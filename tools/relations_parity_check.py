"""CI gate: spec-defined metrics are one value, however computed.

Three escalating checks over the relation layer
(:mod:`repro.relations`):

1. **Streaming parity** — for every kept trace of a multi-service
   campaign sweep, the bounded-memory streaming evaluator's metric
   results equal the batch evaluator's element for element (values,
   samples, details), and the evaluator drains to zero retained
   state.
2. **Legacy equivalence** — the paper predicates re-expressed as
   metric specs (``read_your_writes``, ``monotonic_reads``) flag
   exactly the reads the original §IV checkers flag, on every trace.
3. **Fleet byte-identity** — a fleet with metrics enabled merges to
   the same golden-signature digest serial and on four workers, so
   metric results never perturb the deterministic record bytes.

    python tools/relations_parity_check.py [num_tests] [seed]

Exit code 0 on parity, 1 with a diagnostic on any mismatch.
"""

import sys

from repro.fleet import FleetSpec, run_fleet
from repro.methodology import CampaignConfig, run_campaign
from repro.relations import (
    legacy_verdict_mismatches,
    metric_mismatches,
    resolve_metrics,
)
from repro.relations.registry import metric_names

__all__ = ["check_streaming_parity", "check_legacy_equivalence",
           "check_fleet_identity", "main"]

SERVICES = ("blogger", "googleplus", "facebook_feed", "quorum_kv")


def _campaign_traces(num_tests, seed):
    for service in SERVICES:
        result = run_campaign(service, CampaignConfig(
            num_tests=num_tests, seed=seed, keep_traces=True,
        ))
        for record in result.records:
            yield record.test_id, record.trace


def check_streaming_parity(num_tests, seed, failures):
    specs = resolve_metrics(metric_names())
    checked = 0
    for test_id, trace in _campaign_traces(num_tests, seed):
        checked += 1
        for mismatch in metric_mismatches(trace, specs):
            failures.append(f"{test_id}: {mismatch}")
    return checked


def check_legacy_equivalence(num_tests, seed, failures):
    checked = 0
    for test_id, trace in _campaign_traces(num_tests, seed + 1):
        checked += 1
        for mismatch in legacy_verdict_mismatches(trace):
            failures.append(f"{test_id}: {mismatch}")
    return checked


def check_fleet_identity(num_tests, seed, failures):
    spec = FleetSpec(
        services=("facebook_feed", "quorum_kv"),
        base_config=CampaignConfig(num_tests=num_tests, seed=seed,
                                   metrics=metric_names()),
        seeds=(seed, seed + 1),
    )
    serial = run_fleet(spec, jobs=1)
    parallel = run_fleet(spec, jobs=4)
    if serial.signature() != parallel.signature():
        failures.append(
            f"signature mismatch: serial {serial.signature()} "
            f"!= 4-worker {parallel.signature()}"
        )
    carried = sum(
        1 for result in parallel.results
        for record in result.records if record.metrics
    )
    if carried == 0:
        failures.append(
            "no fleet record carried metric results despite "
            "metrics being configured"
        )
    return spec.total_shards, serial.signature()


def main():
    args = sys.argv[1:]
    num_tests = int(args[0]) if args else 3
    seed = int(args[1]) if len(args) > 1 else 11

    failures = []
    streamed = check_streaming_parity(num_tests, seed, failures)
    legacy = check_legacy_equivalence(num_tests, seed, failures)
    shards, signature = check_fleet_identity(num_tests, seed,
                                             failures)

    if failures:
        print(f"relations parity check FAILED ({streamed} traces):")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print(f"relations parity check passed: streaming == batch on "
          f"{streamed} traces, specs == legacy checkers on {legacy} "
          f"traces, serial == 4-worker over {shards} shards "
          f"(signature {signature[:16]})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
