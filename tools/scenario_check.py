"""CI gate: every shipped scenario file validates and replays true.

Three properties, one per layer of the scenario DSL:

1. **parser parity** — every ``examples/scenarios/*.toml`` produces
   the identical ``ScenarioSpec`` (same content digest) under
   :mod:`tomllib` and under the built-in fallback parser, so the 3.10
   CI leg (which has no tomllib) loads the same scenarios
   byte-for-byte;
2. **builtin equivalence** — a builtin-archetype scenario file is the
   service it names: a short campaign through the scenario path must
   produce the same ``campaign_signature`` as a plain
   ``run_campaign``;
3. **engine golden** — a short gossip-archetype campaign must replay
   to its checked-in golden signature.

    python tools/scenario_check.py

Exit code 0 when all hold, 1 with a diagnostic otherwise.
"""

import sys
from pathlib import Path

from repro.fleet.digest import campaign_signature
from repro.methodology import CampaignConfig, run_campaign
from repro.scenario import (
    load_scenario,
    parse_scenario_toml,
    scenario_campaign,
    scenario_from_mapping,
)

try:
    import tomllib
except ModuleNotFoundError:  # 3.10 leg: the fallback is the parser
    tomllib = None

__all__ = ["main"]

SCENARIO_DIR = Path(__file__).parent.parent / "examples" / "scenarios"

#: Golden signature for the gossip engine replay below
#: (gossip_mesh.toml, num_tests=2, seed=5) — must match
#: tests/test_scenario_campaigns.py.
GOSSIP_MESH_SIGNATURE = (
    "b557c0aae4958a0b43de50dfbcb864e6441cfb85b29515ff25b90314c144b2d0"
)

#: The builtin-archetype file replayed for equivalence.
BUILTIN_EXAMPLE = "blogger"


def check_parser_parity(paths, failures):
    for path in paths:
        text = path.read_text(encoding="utf-8")
        fallback = scenario_from_mapping(
            parse_scenario_toml(text, str(path)), str(path))
        if fallback.name != path.stem:
            failures.append(
                f"{path.name}: scenario name {fallback.name!r} does "
                "not match the file stem"
            )
        if tomllib is None:
            continue
        via_tomllib = scenario_from_mapping(
            tomllib.loads(text), str(path))
        if via_tomllib != fallback or \
                via_tomllib.digest() != fallback.digest():
            failures.append(
                f"{path.name}: tomllib and the fallback parser "
                "disagree on the parsed spec"
            )


def check_builtin_equivalence(failures):
    spec = load_scenario(SCENARIO_DIR / f"{BUILTIN_EXAMPLE}.toml")
    config = CampaignConfig(num_tests=2, seed=3)
    via_scenario = campaign_signature(
        run_campaign(*scenario_campaign(spec, config)))
    plain = campaign_signature(
        run_campaign(spec.service.base, config))
    if via_scenario != plain:
        failures.append(
            f"builtin equivalence broken for {BUILTIN_EXAMPLE}: "
            f"scenario {via_scenario} != plain {plain}"
        )


def check_engine_golden(failures):
    spec = load_scenario(SCENARIO_DIR / "gossip_mesh.toml")
    config = CampaignConfig(num_tests=2, seed=5)
    signature = campaign_signature(
        run_campaign(*scenario_campaign(spec, config)))
    if signature != GOSSIP_MESH_SIGNATURE:
        failures.append(
            f"gossip golden signature drifted: got {signature}, "
            f"expected {GOSSIP_MESH_SIGNATURE}"
        )


def main():
    paths = sorted(SCENARIO_DIR.glob("*.toml"))
    if not paths:
        print(f"scenario check FAILED: no scenario files under "
              f"{SCENARIO_DIR}")
        return 1
    failures = []
    check_parser_parity(paths, failures)
    check_builtin_equivalence(failures)
    check_engine_golden(failures)
    if failures:
        print(f"scenario check FAILED ({len(paths)} files):")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    parser = "tomllib+fallback" if tomllib else "fallback only"
    print(f"scenario check passed: {len(paths)} files validated "
          f"({parser}), builtin equivalence holds, gossip golden "
          f"signature {GOSSIP_MESH_SIGNATURE[:16]} replayed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
