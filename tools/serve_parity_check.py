"""CI gate: a hunt through the campaign service == a direct fleet run.

Drives the full serving stack in-process — submit a hunt over the
``/v1`` API, drain its JSONL event feed in follow-mode (the poll hook
runs the scheduling passes on a 2-worker pool), then compare the
result against a direct ``run_fleet`` of the same spec:

* merged ``fleet_signature`` identical;
* artifact stores byte-identical, file for file;
* the event feed is complete and ordered (strictly monotonic ``seq``,
  one ``shard.completed`` per shard, terminal ``hunt.state``);
* a second scheduling pass over the finished hunt executes nothing.

    python tools/serve_parity_check.py [num_tests] [seed]

Exit code 0 on parity, 1 with a diagnostic on any mismatch.
"""

import sys
import tempfile
from pathlib import Path

from repro.api import SubmitHuntRequest, submit_hunt
from repro.fleet import run_fleet
from repro.serve import HuntServer, HuntSpec, follow_events

__all__ = ["artifact_files", "main"]

SERVICES = ("blogger", "googleplus")


def artifact_files(root: Path) -> dict[str, bytes]:
    return {
        str(path.relative_to(root)): path.read_bytes()
        for path in sorted(root.rglob("*")) if path.is_file()
    }


def main():
    args = sys.argv[1:]
    num_tests = int(args[0]) if args else 4
    seed = int(args[1]) if len(args) > 1 else 11
    spec = HuntSpec(services=SERVICES, seeds=(seed, seed + 1),
                    num_tests=num_tests, test_types=("test1",))
    failures = []

    with tempfile.TemporaryDirectory() as scratch:
        root = Path(scratch)
        server = HuntServer(root / "serve", workers=2)
        token = server.issue_token()
        submitted = submit_hunt(server.handle, SubmitHuntRequest(
            services=spec.services, seeds=spec.seeds,
            num_tests=spec.num_tests, test_types=spec.test_types,
        ), token=token)

        events = list(follow_events(server, submitted.hunt_id, token,
                                    poll=server.run_pending))

        direct = run_fleet(spec.fleet_spec(), jobs=1,
                           out_dir=root / "direct")
        state = server.service.hunt(submitted.hunt_id)

        if state.status != "done":
            failures.append(
                f"hunt ended {state.status!r}: {state.error}"
            )
        if state.fleet_signature != direct.signature():
            failures.append(
                f"signature mismatch: direct {direct.signature()} "
                f"!= hunt {state.fleet_signature}"
            )

        served = artifact_files(
            server.service.store.artifact_root(submitted.hunt_id)
        )
        expected = artifact_files(root / "direct")
        if set(served) != set(expected):
            failures.append(
                "artifact listing mismatch: "
                f"only-served={sorted(set(served) - set(expected))} "
                f"only-direct={sorted(set(expected) - set(served))}"
            )
        else:
            differing = [name for name in sorted(expected)
                         if served[name] != expected[name]]
            if differing:
                failures.append(
                    f"artifact bytes differ: {differing}"
                )

        seqs = [event["seq"] for event in events]
        if seqs != sorted(set(seqs)):
            failures.append(f"event seq not monotonic: {seqs}")
        completed = [event for event in events
                     if event["event"] == "shard.completed"]
        if len(completed) != spec.total_shards:
            failures.append(
                f"feed reported {len(completed)} shard completions, "
                f"expected {spec.total_shards}"
            )
        if not events or events[-1]["event"] != "hunt.state" or \
                events[-1]["status"] != "done":
            failures.append(
                f"feed did not end in a terminal hunt.state: "
                f"{events[-1] if events else 'empty feed'}"
            )

        rerun = server.run_pending()
        if rerun:
            failures.append(
                f"pass over a finished hunt ran again: {rerun}"
            )

    shards = spec.total_shards
    if failures:
        print(f"serve parity check FAILED ({shards} shards):")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print(f"serve parity check passed: {shards} shards via the hunt "
          f"API == direct fleet run "
          f"(signature {direct.signature()[:16]}), "
          f"{len(events)} feed events, artifacts byte-identical")
    return 0


if __name__ == "__main__":
    sys.exit(main())
