"""CI gate: the streaming engine must be bit-identical to batch.

Three escalating checks:

1. **Trace parity** — every trace of a kept-traces campaign passes
   :func:`repro.stream.verify_trace`: all six streaming checkers,
   both window trackers, and the distilled record agree with the
   batch pipeline element for element.
2. **Fleet parity** — the same replicate fleet run in batch mode,
   streaming serial, and streaming on two workers produces one
   golden-signature digest.
3. **Archive replay** — the per-shard ``*.ops.jsonl`` trace-event
   files the streaming fleet wrote, replayed standalone through
   :class:`~repro.stream.ingest.OpIngest`, reproduce the stored shard
   record files byte for byte.

    python tools/stream_parity_check.py [num_tests] [seed]

Exit code 0 on parity, 1 with a diagnostic on any mismatch.
"""

import sys
import tempfile

from repro.fleet import ArtifactStore, FleetSpec, run_fleet
from repro.fleet.digest import canonical_json
from repro.io import iter_trace_events, record_to_dict
from repro.methodology import CampaignConfig, run_campaign
from repro.stream import OpIngest, verify_trace
from repro.stream.ingest import feed_events

__all__ = ["check_trace_parity", "replay_shard", "check_fleet_parity", "main"]

SERVICES = ("blogger", "googleplus")


def check_trace_parity(num_tests, seed, failures):
    result = run_campaign("blogger", CampaignConfig(
        num_tests=num_tests, seed=seed, keep_traces=True,
    ))
    checked = 0
    for record in result.records:
        mismatches = verify_trace(record.trace)
        checked += 1
        for mismatch in mismatches:
            failures.append(f"{record.test_id}: {mismatch}")
    return checked


def replay_shard(store, shard_id):
    """Stored ops replayed through a fresh ingest, as record lines."""
    records = []
    ingest = OpIngest(on_record=lambda meta, rec: records.append(rec))
    with store.trace_path(shard_id).open(encoding="utf-8") as handle:
        for _ in feed_events(iter_trace_events(handle), ingest):
            pass
    return [canonical_json(record_to_dict(rec)) for rec in records]


def check_fleet_parity(num_tests, seed, failures):
    spec = FleetSpec(
        services=SERVICES,
        base_config=CampaignConfig(num_tests=num_tests, seed=seed,
                                   test_types=("test1",)),
        seeds=(seed, seed + 1),
    )
    batch = run_fleet(spec)
    serial = run_fleet(spec, stream=True)
    if serial.signature() != batch.signature():
        failures.append(
            f"signature mismatch: batch {batch.signature()} "
            f"!= streaming serial {serial.signature()}"
        )
    with tempfile.TemporaryDirectory() as out_dir:
        parallel = run_fleet(spec, jobs=2, out_dir=out_dir,
                             stream=True)
        if parallel.signature() != batch.signature():
            failures.append(
                f"signature mismatch: batch {batch.signature()} "
                f"!= streaming 2-worker {parallel.signature()}"
            )
        store = ArtifactStore(out_dir)
        shard_ids = store.completed_shards()
        if len(shard_ids) != spec.total_shards:
            failures.append(
                f"streaming fleet completed {len(shard_ids)}/"
                f"{spec.total_shards} shards"
            )
        for shard_id in shard_ids:
            stored = store.shard_path(shard_id).read_text(
                encoding="utf-8"
            ).splitlines()
            replayed = replay_shard(store, shard_id)
            if replayed != stored:
                failures.append(
                    f"shard {shard_id}: ops-archive replay diverges "
                    f"from stored records "
                    f"({len(replayed)} vs {len(stored)} lines)"
                )
    return spec.total_shards, batch.signature()


def main():
    args = sys.argv[1:]
    num_tests = int(args[0]) if args else 4
    seed = int(args[1]) if len(args) > 1 else 11

    failures = []
    traces = check_trace_parity(num_tests, seed, failures)
    shards, signature = check_fleet_parity(num_tests, seed, failures)

    if failures:
        print(f"stream parity check FAILED ({traces} traces, "
              f"{shards} shards):")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print(f"stream parity check passed: {traces} traces verified, "
          f"batch == streaming serial == streaming 2-worker over "
          f"{shards} shards (signature {signature[:16]}), "
          "ops archives replay byte-identically")
    return 0


if __name__ == "__main__":
    sys.exit(main())
