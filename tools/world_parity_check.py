"""CI gate: the partitioned world is byte-identical to its serial run.

The world engine's whole claim (``src/repro/world/``) is that
``topology.shards`` is physical placement only: every ordering
decision keys on logical replica identities and simulated times, so a
world cut into N shards replays the serial world's history bit for
bit.  This gate proves it four ways:

* **shard sweep** — one small world run at shards = 1, 2, 3, and
  replicas; every signature, anomaly tally, and test count identical;
* **lane sweep** — the sharded world re-run under different execution
  lane packings; placement again invisible;
* **partition nemesis** — a partition whose side spans the shard cut;
  deferral totals and signatures identical across cuts, and the
  nemesis demonstrably changed history vs. the calm world;
* **scenario scale** — the checked-in ``gossip_world.toml`` at its
  full 10^5 sessions through the sharded engine, asserting the
  bounded-memory contract: the stream engine never holds more than
  one open test and per-replica state was actually retired.

    python tools/world_parity_check.py [--full-sessions N]

Exit code 0 on parity, 1 with a diagnostic on any mismatch.
"""

import argparse
import sys
from dataclasses import replace

from repro.scenario import load_scenario
from repro.world import WorldPartition, WorldSpec, run_world, world_from_scenario

__all__ = ["main"]

SCENARIO = "examples/scenarios/gossip_world.toml"
SEED = 11

#: The small logical world every sweep reruns (milliseconds per run).
SMALL = WorldSpec(
    name="parity", sessions=48, replicas=6, cohort_size=4,
    writes_per_session=1, reads_per_session=2,
    arrival_window=30.0, think_median=20.0, hop_median=15.0,
    epoch=10.0,
)


def _sweep(label, base, failures, *, cuts):
    """Run ``base`` over ``cuts`` and compare all runs to the first."""
    results = [(cut, run_world(base.with_topology(*cut), seed=SEED))
               for cut in cuts]
    (_, reference), *rest = results
    for cut, result in rest:
        for field in ("signature", "anomalies", "tests", "ops",
                      "bus_messages", "bus_deferred"):
            expected = getattr(reference, field)
            actual = getattr(result, field)
            if actual != expected:
                failures.append(
                    f"{label}: {field} diverged at shards/lanes="
                    f"{cut}: {actual!r} != {expected!r}"
                )
    return reference


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="world parity: sharded == serial, byte for byte")
    parser.add_argument(
        "--full-sessions", type=int, default=None, metavar="N",
        help="session count for the scenario-scale run (default: the "
             "scenario's own 100,000)",
    )
    args = parser.parse_args(argv)
    failures = []

    # 1. Shard sweep: every cut of the replica set, serial included.
    calm = _sweep("shard sweep", SMALL, failures, cuts=[
        (1, None), (2, None), (3, None), (SMALL.replicas, None),
    ])

    # 2. Lane sweep: execution packing on top of a fixed cut.
    _sweep("lane sweep", SMALL, failures, cuts=[
        (3, 1), (3, 2), (3, 3),
    ])

    # 3. A partition nemesis spanning the shard cut.
    nemesis = replace(SMALL, partitions=(
        WorldPartition(start=10.0, end=60.0, side=(0, 3)),
    ))
    partitioned = _sweep("partition sweep", nemesis, failures, cuts=[
        (1, None), (2, None), (3, None),
    ])
    if partitioned.bus_deferred == 0:
        failures.append(
            "partition sweep: nemesis deferred no bus traffic — the "
            "regression scenario no longer exercises deferral")
    if partitioned.signature == calm.signature:
        failures.append(
            "partition sweep: partitioned history equals the calm "
            "one — the nemesis is not reaching the world")

    # 4. Scenario scale: 10^5 sessions, memory stays bounded.
    scenario = load_scenario(SCENARIO)
    spec = world_from_scenario(scenario, sessions=args.full_sessions)
    full = run_world(spec, seed=SEED)
    if full.tests != spec.cohort_count:
        failures.append(
            f"scale run: {full.tests} tests for {spec.cohort_count} "
            "cohorts — sessions were lost")
    if full.max_stream_state != 1:
        failures.append(
            f"scale run: stream engine held {full.max_stream_state} "
            "open tests; the bounded-memory contract (horizon 1, "
            "flush-per-cohort) is broken")
    if full.peak_open_state >= full.ops * 2:
        failures.append(
            f"scale run: peak open state {full.peak_open_state} "
            f"exceeds ~2 entries/op ({full.ops} ops) — cohort "
            "retirement is not releasing state")

    if failures:
        print("world parity check FAILED:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print(f"world parity check passed: shards 1..{SMALL.replicas} "
          f"and all lane packings byte-identical "
          f"(signature {calm.signature[:16]}), partition-spanning "
          f"nemesis identical ({partitioned.bus_deferred} deferrals), "
          f"{spec.sessions:,} sessions at shards={spec.shards} with "
          f"max stream state {full.max_stream_state} and peak open "
          f"state {full.peak_open_state:,}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
